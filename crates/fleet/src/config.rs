//! Fleet placement configuration.

use crate::FleetError;

/// Knobs for the fleet placement solver ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Share discretization: each machine's CPU and memory are divided
    /// into `units` equal steps (same convention as
    /// [`dbvirt_core::SearchConfig::units`]).
    pub units: u32,
    /// Minimum units of each resource per resident VM.
    pub min_units: u32,
    /// Fixed disk share granted to every VM on every machine. Disk is a
    /// fixed per-VM policy (the paper's testbed could not throttle disk
    /// independently), and keeping it independent of machine occupancy is
    /// what makes cached cell costs pure functions of
    /// `(class, vm, cpu units, mem units)`.
    pub disk_share: f64,
    /// Worker threads for the pre-warm what-if sweep: `1` serial, `0` one
    /// per core, `n` exactly `n`. Placements are bit-identical at every
    /// setting; only wall clock changes.
    pub parallelism: usize,
    /// Hard cap on VMs per machine (defaults to `units / min_units`, the
    /// most the share discretization can host).
    pub max_vms_per_machine: usize,
    /// Fixed per-migration base charge in seconds (state transfer,
    /// connection draining), on top of the destination pool refill.
    pub migration_base_seconds: f64,
    /// Amortization horizon: a migration's one-time cost is divided by
    /// this many workload executions when weighed against steady-state
    /// gain. Placement churn is never free; it must pay for itself within
    /// the horizon.
    pub migration_horizon_runs: f64,
    /// Subgradient iterations for the LP lower bound.
    pub lp_iterations: usize,
    /// Local-search round cap (each round applies at most one move/swap).
    pub max_rounds: usize,
    /// Swaps are enumerated exhaustively only while `N x M` does not
    /// exceed this budget; beyond it each round *samples* up to this many
    /// swap pairs from a seeded deterministic stream (reported in
    /// [`crate::LocalSearchStats::swaps_enumerated`] and
    /// [`crate::LocalSearchStats::swap_candidates_sampled`], never
    /// silently).
    pub swap_candidate_budget: usize,
}

impl FleetConfig {
    /// Defaults for a `units`-step discretization: 1-unit floors, disk
    /// split evenly across the maximum occupancy, serial pre-warm, a
    /// 1-second migration base amortized over 50 runs, 400 LP iterations.
    pub fn new(units: u32) -> FleetConfig {
        FleetConfig {
            units,
            min_units: 1,
            disk_share: 1.0 / units.max(1) as f64,
            parallelism: 1,
            max_vms_per_machine: units.max(1) as usize,
            migration_base_seconds: 1.0,
            migration_horizon_runs: 50.0,
            lp_iterations: 400,
            max_rounds: 64,
            swap_candidate_budget: 4096,
        }
    }

    /// Sets the pre-warm parallelism (`0` = one worker per core).
    pub fn with_parallelism(mut self, parallelism: usize) -> FleetConfig {
        self.parallelism = parallelism;
        self
    }

    /// Sets the fixed per-VM disk share.
    pub fn with_disk_share(mut self, disk_share: f64) -> FleetConfig {
        self.disk_share = disk_share;
        self
    }

    /// Sets the per-machine VM cap.
    pub fn with_max_vms_per_machine(mut self, cap: usize) -> FleetConfig {
        self.max_vms_per_machine = cap;
        self
    }

    /// Sets the migration pricing knobs.
    pub fn with_migration(mut self, base_seconds: f64, horizon_runs: f64) -> FleetConfig {
        self.migration_base_seconds = base_seconds;
        self.migration_horizon_runs = horizon_runs;
        self
    }

    /// Sets the LP iteration budget.
    pub fn with_lp_iterations(mut self, iterations: usize) -> FleetConfig {
        self.lp_iterations = iterations;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), FleetError> {
        let bad = |reason: String| Err(FleetError::BadFleet { reason });
        if self.units == 0 || self.min_units == 0 {
            return bad("units and min_units must be positive".to_string());
        }
        if self.min_units > self.units {
            return bad(format!(
                "min_units {} exceeds {} total units",
                self.min_units, self.units
            ));
        }
        if !(self.disk_share > 0.0 && self.disk_share <= 1.0) {
            return bad(format!("disk share {} out of range", self.disk_share));
        }
        if self.max_vms_per_machine == 0 {
            return bad("max_vms_per_machine must be positive".to_string());
        }
        let natural_cap = (self.units / self.min_units) as usize;
        if self.max_vms_per_machine > natural_cap {
            return bad(format!(
                "cap {} exceeds what {} units with {}-unit floors can host ({})",
                self.max_vms_per_machine, self.units, self.min_units, natural_cap
            ));
        }
        if !(self.migration_base_seconds.is_finite() && self.migration_base_seconds >= 0.0) {
            return bad(format!(
                "migration base {} must be finite and non-negative",
                self.migration_base_seconds
            ));
        }
        if !(self.migration_horizon_runs.is_finite() && self.migration_horizon_runs > 0.0) {
            return bad(format!(
                "migration horizon {} must be positive and finite",
                self.migration_horizon_runs
            ));
        }
        Ok(())
    }

    /// The pre-warm workers this config resolves to.
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            p => p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        FleetConfig::new(8).validate().unwrap();
    }

    #[test]
    fn hostile_configs_are_rejected() {
        assert!(FleetConfig::new(0).validate().is_err());
        assert!(FleetConfig::new(8).with_disk_share(0.0).validate().is_err());
        assert!(FleetConfig::new(8).with_disk_share(f64::NAN).validate().is_err());
        assert!(FleetConfig::new(8)
            .with_max_vms_per_machine(9)
            .validate()
            .is_err());
        assert!(FleetConfig::new(8).with_migration(f64::NAN, 50.0).validate().is_err());
        assert!(FleetConfig::new(8).with_migration(1.0, 0.0).validate().is_err());
        let mut c = FleetConfig::new(8);
        c.min_units = 9;
        assert!(c.validate().is_err());
    }
}
