//! Tier 3: LP lower bound via Lagrangian relaxation, solved in-tree.
//!
//! The placement LP (CoPhy-style): fractional variables `x[i][m][cell]`
//! pick a machine and share cell per VM, subject to per-machine CPU and
//! memory capacity rows. Dualizing the capacity rows with multipliers
//! `λ[m][cpu|mem] ≥ 0` makes the Lagrangian separable per VM:
//!
//! ```text
//! L(λ) = Σᵢ min over (m, cell) of [ wᵢ·cost(class(m), i, cell)
//!                                   + λ[m][cpu]·cell.cpu + λ[m][mem]·cell.mem ]
//!        − Σₘ (λ[m][cpu] + λ[m][mem]) · units
//! ```
//!
//! Every `L(λ)` is a valid lower bound on the LP — and hence on every
//! feasible integer placement — so the best value over a projected
//! subgradient ascent (Polyak steps against the incumbent as upper bound)
//! is reported as the optimality gap. No external LP solver, no
//! randomness, no wall-clock dependence: pure `f64` arithmetic in a fixed
//! iteration order, bit-identical on every run.
//!
//! The cell grid is the same warm rectangle the exact solves read
//! (`min_units ..= rect_hi`): every feasible integer placement keeps each
//! VM inside it (a machine hosting `k` VMs can give one at most
//! `units − (k−1)·min_units`, and forced minimum occupancy bounds `k`
//! from below), so restricting the LP to the rectangle keeps it a
//! relaxation.

use crate::solver::FleetSolver;
use crate::FleetError;

/// The LP lower bound and how the subgradient ascent behaved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpBound {
    /// Best Lagrangian value found: a certified lower bound on the
    /// steady-state objective of *every* feasible placement.
    pub bound: f64,
    /// Subgradient iterations run.
    pub iterations: usize,
    /// `true` when ascent stopped on a zero subgradient (the bound is the
    /// exact Lagrangian-dual optimum, not just the best iterate).
    pub converged: bool,
}

/// Computes the Lagrangian lower bound. `incumbent_steady` (the best known
/// feasible steady-state objective) drives the Polyak step size.
pub(crate) fn lower_bound(
    solver: &FleetSolver<'_, '_>,
    rect_hi: u32,
    incumbent_steady: f64,
) -> Result<LpBound, FleetError> {
    let n = solver.problem.num_vms();
    let m_count = solver.problem.num_machines();
    let classes = &solver.classes.class_of;
    let units = solver.cfg.units as f64;
    let lo = solver.cfg.min_units;
    let side = (rect_hi - lo + 1) as usize;

    // Dense weighted cost tables: table[class][i][(c-lo)*side + (m-lo)].
    let num_classes = solver.classes.num_classes();
    let mut table = vec![vec![0.0f64; side * side * n]; num_classes];
    for (class, t) in table.iter_mut().enumerate() {
        for i in 0..n {
            let w = solver.weight(i);
            for c in lo..=rect_hi {
                for mu in lo..=rect_hi {
                    let at = i * side * side
                        + (c - lo) as usize * side
                        + (mu - lo) as usize;
                    t[at] = w * solver.cell_cost(class, i, c, mu)?;
                }
            }
        }
    }

    let mut lambda = vec![[0.0f64; 2]; m_count];
    let mut best = f64::NEG_INFINITY;
    let mut theta = 1.0f64;
    let mut since_improved = 0usize;
    let mut iterations = 0usize;
    let mut converged = false;

    for _ in 0..solver.cfg.lp_iterations {
        iterations += 1;
        // Separable inner minimization: each VM picks its cheapest
        // (machine, cell) under the current prices. Strict `<` keeps the
        // first minimizer in (machine, cpu, mem) order — deterministic.
        let mut value = 0.0f64;
        let mut load = vec![[0.0f64; 2]; m_count];
        for i in 0..n {
            let mut min_val = f64::INFINITY;
            let mut min_at = (0usize, 0u32, 0u32);
            for m in 0..m_count {
                let t = &table[classes[m]];
                for c in lo..=rect_hi {
                    for mu in lo..=rect_hi {
                        let at = i * side * side
                            + (c - lo) as usize * side
                            + (mu - lo) as usize;
                        let v = t[at] + lambda[m][0] * c as f64 + lambda[m][1] * mu as f64;
                        if v < min_val {
                            min_val = v;
                            min_at = (m, c, mu);
                        }
                    }
                }
            }
            value += min_val;
            load[min_at.0][0] += min_at.1 as f64;
            load[min_at.0][1] += min_at.2 as f64;
        }
        for lam in &lambda {
            value -= (lam[0] + lam[1]) * units;
        }
        if value > best {
            best = value;
            since_improved = 0;
        } else {
            since_improved += 1;
            if since_improved >= 20 {
                theta *= 0.5;
                since_improved = 0;
            }
        }
        if theta < 1e-6 {
            break;
        }

        // Subgradient of L at λ: capacity violation per (machine, resource).
        let mut norm_sq = 0.0f64;
        for ld in &load {
            let g_cpu = ld[0] - units;
            let g_mem = ld[1] - units;
            norm_sq += g_cpu * g_cpu + g_mem * g_mem;
        }
        if norm_sq == 0.0 {
            // λ is dual-optimal for this inner solution: done.
            converged = true;
            break;
        }
        let gap = incumbent_steady - value;
        if gap <= 0.0 {
            // The bound met the incumbent (to fp precision); can't improve.
            break;
        }
        let step = theta * gap / norm_sq;
        for (m, lam) in lambda.iter_mut().enumerate() {
            lam[0] = (lam[0] + step * (load[m][0] - units)).max(0.0);
            lam[1] = (lam[1] + step * (load[m][1] - units)).max(0.0);
        }
    }

    Ok(LpBound {
        bound: best,
        iterations,
        converged,
    })
}
