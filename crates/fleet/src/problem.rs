//! The fleet placement problem: `N` VMs over `M` heterogeneous machines.

use crate::FleetError;
use dbvirt_engine::Database;
use dbvirt_optimizer::LogicalPlan;
use dbvirt_vmm::MachineSpec;

/// One virtual machine to place: a named workload (the single-machine
/// problem's `WorkloadSpec`, lifted to fleet scope). The name is the VM's
/// *identity* — per-machine solves pass it through to the generated
/// `WorkloadSpec`s, so cost models (and the shared cost cache) can price a
/// VM consistently no matter which machine subset it appears in.
#[derive(Debug)]
pub struct FleetVm<'a> {
    /// Display name and cache identity.
    pub name: String,
    /// The database the VM's workload queries.
    pub db: &'a Database,
    /// The workload's queries.
    pub queries: Vec<LogicalPlan>,
    /// Service-level weight in the placement objective.
    pub weight: f64,
}

impl<'a> FleetVm<'a> {
    /// Creates a VM spec with the default weight of 1.
    pub fn new(name: impl Into<String>, db: &'a Database, queries: Vec<LogicalPlan>) -> FleetVm<'a> {
        FleetVm {
            name: name.into(),
            db,
            queries,
            weight: 1.0,
        }
    }

    /// Sets the service-level weight (validated by [`FleetProblem::new`]).
    pub fn with_weight(mut self, weight: f64) -> FleetVm<'a> {
        self.weight = weight;
        self
    }
}

/// A deployed placement: which machine each VM currently runs on and the
/// integer share units it currently holds. When a [`FleetProblem`] carries
/// one, migration away from it is priced into the objective (amortized
/// over [`crate::FleetConfig::migration_horizon_runs`]), so re-placements
/// must pay for their churn.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentPlacement {
    /// `machine_of[i]` is the machine index VM `i` runs on.
    pub machine_of: Vec<usize>,
    /// `units_of[i]` is VM `i`'s current `(cpu units, mem units)`.
    pub units_of: Vec<(u32, u32)>,
}

/// The fleet design problem: place every VM on exactly one machine and
/// choose its per-machine resource shares.
#[derive(Debug)]
pub struct FleetProblem<'a> {
    /// The physical machines (heterogeneous specs allowed).
    pub machines: Vec<MachineSpec>,
    /// The VMs to place.
    pub vms: Vec<FleetVm<'a>>,
    /// The currently deployed placement, if any (see [`CurrentPlacement`]).
    pub current: Option<CurrentPlacement>,
}

impl<'a> FleetProblem<'a> {
    /// Creates and validates a fleet problem.
    pub fn new(
        machines: Vec<MachineSpec>,
        vms: Vec<FleetVm<'a>>,
    ) -> Result<FleetProblem<'a>, FleetError> {
        if machines.is_empty() {
            return Err(FleetError::BadFleet {
                reason: "a fleet needs at least one machine".to_string(),
            });
        }
        for (m, spec) in machines.iter().enumerate() {
            spec.validate().map_err(|e| FleetError::BadFleet {
                reason: format!("machine {m}: {e}"),
            })?;
        }
        if vms.is_empty() {
            return Err(FleetError::BadFleet {
                reason: "a fleet needs at least one VM".to_string(),
            });
        }
        for (i, vm) in vms.iter().enumerate() {
            if vm.queries.is_empty() {
                return Err(FleetError::BadFleet {
                    reason: format!("VM {} ({}) has no queries", i, vm.name),
                });
            }
            if !(vm.weight.is_finite() && vm.weight > 0.0) {
                return Err(FleetError::BadFleet {
                    reason: format!(
                        "VM {} ({}) weight {} must be positive and finite",
                        i, vm.name, vm.weight
                    ),
                });
            }
        }
        Ok(FleetProblem {
            machines,
            vms,
            current: None,
        })
    }

    /// Attaches the currently deployed placement (validated against this
    /// problem's shape; unit bounds are checked by the advisor against its
    /// own discretization).
    pub fn with_current(mut self, current: CurrentPlacement) -> Result<FleetProblem<'a>, FleetError> {
        if current.machine_of.len() != self.vms.len() || current.units_of.len() != self.vms.len() {
            return Err(FleetError::BadFleet {
                reason: format!(
                    "current placement covers {} machines / {} unit rows, fleet has {} VMs",
                    current.machine_of.len(),
                    current.units_of.len(),
                    self.vms.len()
                ),
            });
        }
        if let Some(&bad) = current
            .machine_of
            .iter()
            .find(|&&m| m >= self.machines.len())
        {
            return Err(FleetError::BadFleet {
                reason: format!(
                    "current placement references machine {bad}, fleet has {}",
                    self.machines.len()
                ),
            });
        }
        self.current = Some(current);
        Ok(self)
    }

    /// Number of VMs (`N`).
    pub fn num_vms(&self) -> usize {
        self.vms.len()
    }

    /// Number of machines (`M`).
    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }
}

/// Machine *classes*: machines with bitwise-equal specs share a cost model
/// and a warm-cache partition (cell costs depend only on the spec, never on
/// the machine's index).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineClasses {
    /// `class_of[m]` is the class index of machine `m`.
    pub class_of: Vec<usize>,
    /// One representative spec per class, in first-appearance order.
    pub specs: Vec<MachineSpec>,
}

impl MachineClasses {
    /// Groups `machines` into classes by exact spec equality.
    pub fn of(machines: &[MachineSpec]) -> MachineClasses {
        let mut class_of = Vec::with_capacity(machines.len());
        let mut specs: Vec<MachineSpec> = Vec::new();
        for m in machines {
            let class = match specs.iter().position(|s| s == m) {
                Some(c) => c,
                None => {
                    specs.push(*m);
                    specs.len() - 1
                }
            };
            class_of.push(class);
        }
        MachineClasses { class_of, specs }
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.specs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};

    pub(crate) fn tiny_db() -> Database {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
        db.insert_rows(t, (0..10).map(|i| Tuple::new(vec![Datum::Int(i)])))
            .unwrap();
        db.analyze_all().unwrap();
        db
    }

    #[test]
    fn rejects_malformed_fleets() {
        let db = tiny_db();
        let t = db.table_id("t").unwrap();
        let vm = |name: &str| FleetVm::new(name, &db, vec![LogicalPlan::scan(t)]);

        assert!(FleetProblem::new(vec![], vec![vm("a")]).is_err());
        assert!(FleetProblem::new(vec![MachineSpec::tiny()], vec![]).is_err());
        // Empty workload.
        assert!(
            FleetProblem::new(vec![MachineSpec::tiny()], vec![FleetVm::new("a", &db, vec![])])
                .is_err()
        );
        // Hostile weight.
        assert!(FleetProblem::new(
            vec![MachineSpec::tiny()],
            vec![vm("a").with_weight(f64::NAN)]
        )
        .is_err());
        // Hostile machine spec surfaces as a typed error, never a panic.
        let mut bad = MachineSpec::tiny();
        bad.cycles_per_sec = f64::INFINITY;
        let err = FleetProblem::new(vec![MachineSpec::tiny(), bad], vec![vm("a")]).unwrap_err();
        assert!(matches!(err, FleetError::BadFleet { .. }), "{err}");
        assert!(err.to_string().contains("machine 1"));
    }

    #[test]
    fn current_placement_is_shape_checked() {
        let db = tiny_db();
        let t = db.table_id("t").unwrap();
        let vms = vec![
            FleetVm::new("a", &db, vec![LogicalPlan::scan(t)]),
            FleetVm::new("b", &db, vec![LogicalPlan::scan(t)]),
        ];
        let machines = vec![MachineSpec::tiny(), MachineSpec::tiny()];
        let problem = FleetProblem::new(machines, vms).unwrap();
        let err = problem
            .with_current(CurrentPlacement {
                machine_of: vec![0, 7],
                units_of: vec![(4, 4), (4, 4)],
            })
            .unwrap_err();
        assert!(err.to_string().contains("machine 7"));
    }

    #[test]
    fn classes_group_equal_specs() {
        let a = MachineSpec::tiny();
        let b = MachineSpec::paper_testbed();
        let classes = MachineClasses::of(&[a, b, a, b, b]);
        assert_eq!(classes.class_of, vec![0, 1, 0, 1, 1]);
        assert_eq!(classes.num_classes(), 2);
        assert_eq!(classes.specs, vec![a, b]);
    }
}
