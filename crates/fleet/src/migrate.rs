//! Migration pricing: placement churn is never free.
//!
//! Moving a VM to a different machine — or resizing its memory in place —
//! lands it with a cold buffer pool, re-warmed at the destination disk's
//! sequential speed. The refill is priced by the *same* model the
//! controller uses for in-place reconfigurations
//! ([`dbvirt_controller::pool_refill_seconds`]), plus a fixed per-move
//! base charge for state transfer. The advisor amortizes the total over
//! [`crate::FleetConfig::migration_horizon_runs`] workload executions when
//! comparing placements.

use crate::{CurrentPlacement, FleetConfig, FleetError};
use dbvirt_controller::pool_refill_seconds;
use dbvirt_vmm::{MachineSpec, ResourceVector};

/// One-time cost (seconds) of bringing VM `vm` from its reference state to
/// `(machine, units)`. Zero when neither the machine nor the memory share
/// changes; a CPU-only retune is free, exactly as in the controller.
pub(crate) fn vm_migration_seconds(
    machines: &[MachineSpec],
    cfg: FleetConfig,
    reference: &CurrentPlacement,
    vm: usize,
    machine: usize,
    units: (u32, u32),
) -> Result<f64, FleetError> {
    let moved = reference.machine_of[vm] != machine;
    let resized = reference.units_of[vm].1 != units.1;
    if !moved && !resized {
        return Ok(0.0);
    }
    let total = cfg.units as f64;
    let shares = ResourceVector::from_fractions(
        units.0 as f64 / total,
        units.1 as f64 / total,
        cfg.disk_share,
    )?;
    let refill = pool_refill_seconds(machines[machine], shares)?;
    Ok(refill + if moved { cfg.migration_base_seconds } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_moves_and_resizes_pay() {
        let machines = [MachineSpec::tiny(), MachineSpec::tiny()];
        let cfg = FleetConfig::new(8);
        let reference = CurrentPlacement {
            machine_of: vec![0],
            units_of: vec![(4, 4)],
        };
        // Unchanged: free.
        let same = vm_migration_seconds(&machines, cfg, &reference, 0, 0, (4, 4)).unwrap();
        assert_eq!(same, 0.0);
        // CPU-only retune: free.
        let cpu = vm_migration_seconds(&machines, cfg, &reference, 0, 0, (6, 4)).unwrap();
        assert_eq!(cpu, 0.0);
        // Memory resize in place: refill only (no base charge).
        let resize = vm_migration_seconds(&machines, cfg, &reference, 0, 0, (4, 6)).unwrap();
        assert!(resize > 0.0);
        // Cross-machine move at identical units: refill + base.
        let shares = ResourceVector::from_fractions(0.5, 0.5, cfg.disk_share).unwrap();
        let refill = pool_refill_seconds(machines[1], shares).unwrap();
        let moved = vm_migration_seconds(&machines, cfg, &reference, 0, 1, (4, 4)).unwrap();
        assert_eq!(moved, refill + cfg.migration_base_seconds);
        assert!(moved > resize);
    }
}
