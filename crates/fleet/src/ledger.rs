//! Rebalance accounting: was the re-placement worth its churn?
//!
//! Mirrors the controller's regret ledger at fleet scope. When a request
//! carries a deployed [`crate::CurrentPlacement`], the advisor reports the
//! steady-state gain of its recommendation next to the one-time migration
//! bill, and a [`RebalanceLedger`] accumulates the decision history across
//! requests (e.g. successive re-placements as workloads drift).

/// The priced outcome of one proposed re-placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceDelta {
    /// Weighted steady-state objective of the deployed placement.
    pub steady_before: f64,
    /// Weighted steady-state objective of the recommendation.
    pub steady_after: f64,
    /// One-time migration bill (seconds) to get there.
    pub migration_seconds: f64,
    /// Executions the bill is amortized over
    /// ([`crate::FleetConfig::migration_horizon_runs`]).
    pub horizon_runs: f64,
}

impl RebalanceDelta {
    /// Per-execution steady-state gain (positive = recommendation is
    /// cheaper to run).
    pub fn steady_gain(&self) -> f64 {
        self.steady_before - self.steady_after
    }

    /// Gain net of the amortized migration bill.
    pub fn amortized_gain(&self) -> f64 {
        self.steady_gain() - self.migration_seconds / self.horizon_runs
    }

    /// Whether applying the recommendation pays for its churn within the
    /// horizon.
    pub fn worth_applying(&self) -> bool {
        self.amortized_gain() > 0.0
    }
}

/// Running account of rebalance decisions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RebalanceLedger {
    /// Recommendations applied (amortized gain positive).
    pub applied: usize,
    /// Recommendations skipped (churn would not pay for itself).
    pub skipped: usize,
    /// Cumulative per-execution steady gain of applied recommendations.
    pub steady_gain: f64,
    /// Cumulative migration seconds actually paid.
    pub migration_paid: f64,
    /// Cumulative amortized net gain of applied recommendations.
    pub net_gain: f64,
}

impl RebalanceLedger {
    /// A fresh ledger.
    pub fn new() -> RebalanceLedger {
        RebalanceLedger::default()
    }

    /// Records a decision: applies the delta when it is worth its churn,
    /// otherwise skips it. Returns whether it was applied.
    pub fn record(&mut self, delta: &RebalanceDelta) -> bool {
        if delta.worth_applying() {
            self.applied += 1;
            self.steady_gain += delta.steady_gain();
            self.migration_paid += delta.migration_seconds;
            self.net_gain += delta.amortized_gain();
            true
        } else {
            self.skipped += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_must_pay_for_itself() {
        let good = RebalanceDelta {
            steady_before: 10.0,
            steady_after: 8.0,
            migration_seconds: 50.0,
            horizon_runs: 50.0,
        };
        assert_eq!(good.steady_gain(), 2.0);
        assert_eq!(good.amortized_gain(), 1.0);
        assert!(good.worth_applying());

        let churny = RebalanceDelta {
            steady_before: 10.0,
            steady_after: 9.9,
            migration_seconds: 500.0,
            horizon_runs: 50.0,
        };
        assert!(!churny.worth_applying());

        let mut ledger = RebalanceLedger::new();
        assert!(ledger.record(&good));
        assert!(!ledger.record(&churny));
        assert_eq!(ledger.applied, 1);
        assert_eq!(ledger.skipped, 1);
        assert_eq!(ledger.net_gain, 1.0);
        assert_eq!(ledger.migration_paid, 50.0);
    }
}
