//! The fleet-level warm cost cache.
//!
//! One sharded [`CostCache`] per machine *class*, with cells keyed by the
//! VM's **global index** (`(vm, cpu units, mem units)`), since a cell's
//! cost depends only on the VM's workload, the machine class, and the
//! shares — never on which co-residents it has or which concrete machine
//! of the class hosts it (the disk share is a fixed per-VM policy, see
//! [`crate::FleetConfig::disk_share`]).
//!
//! Per-machine solves run through `run_search_cached`, whose cache keys
//! are *local* workload indices within that machine's `DesignProblem`.
//! Sharing the fleet cache directly would therefore collide (local
//! workload 0 is a different VM on every machine), so each solve gets a
//! fresh local [`CostCache`] *seeded* from a snapshot of the fleet cache,
//! re-keyed from global VM indices to local workload positions. Seeding is
//! sound because cached costs are pure functions of `(class, vm, cell)`.

use dbvirt_core::search::CostCache;
use std::collections::HashMap;
use std::sync::Arc;

/// Shared warm cost store for one fleet advisor: a [`CostCache`] per
/// machine class. Thread-safe; concurrent placement requests drain and
/// fill it together.
pub struct FleetCostCache {
    per_class: Vec<Arc<CostCache>>,
}

impl FleetCostCache {
    /// An empty cache covering `n_classes` machine classes.
    pub fn new(n_classes: usize) -> FleetCostCache {
        FleetCostCache {
            per_class: (0..n_classes).map(|_| Arc::new(CostCache::new())).collect(),
        }
    }

    /// Number of machine classes this cache partitions over.
    pub fn num_classes(&self) -> usize {
        self.per_class.len()
    }

    /// The cached unweighted cost of `(class, vm, cpu, mem)`, if present.
    pub fn get(&self, class: usize, vm: usize, cpu: u32, mem: u32) -> Option<f64> {
        self.per_class[class].get(&(vm, cpu, mem))
    }

    /// Inserts a freshly evaluated cell. Returns `true` if it was new.
    pub fn insert(&self, class: usize, vm: usize, cpu: u32, mem: u32, cost: f64) -> bool {
        self.per_class[class].insert((vm, cpu, mem), cost)
    }

    /// Total distinct cells evaluated into this cache so far.
    pub fn evaluations(&self) -> usize {
        self.per_class.iter().map(|c| c.evaluations()).sum()
    }

    /// A deterministic per-VM snapshot of one class's cells, used to seed
    /// local solve caches without re-walking the sharded store per solve.
    pub fn snapshot_class(&self, class: usize) -> ClassSnapshot {
        let mut by_vm: HashMap<usize, Vec<(u32, u32, f64)>> = HashMap::new();
        for ((vm, c, m), cost) in self.per_class[class].entries() {
            by_vm.entry(vm).or_default().push((c, m, cost));
        }
        ClassSnapshot { by_vm }
    }
}

/// An immutable snapshot of one class's cached cells, grouped by VM.
/// `CostCache::entries()` returns cells in sorted key order, so each VM's
/// cell list is deterministic.
pub struct ClassSnapshot {
    by_vm: HashMap<usize, Vec<(u32, u32, f64)>>,
}

impl ClassSnapshot {
    /// The cached cells of one VM (empty slice if none).
    pub fn cells(&self, vm: usize) -> &[(u32, u32, f64)] {
        self.by_vm.get(&vm).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Builds a fresh local [`CostCache`] for a per-machine solve over
    /// `vms` (ascending global indices): every known cell of `vms[w]` is
    /// inserted under local workload index `w`.
    pub fn seed_local(&self, vms: &[usize]) -> Arc<CostCache> {
        let local = CostCache::new();
        for (w, &vm) in vms.iter().enumerate() {
            for &(c, m, cost) in self.cells(vm) {
                local.insert((w, c, m), cost);
            }
        }
        Arc::new(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_rekeys_global_vms_to_local_workloads() {
        let cache = FleetCostCache::new(2);
        assert!(cache.insert(0, 5, 1, 2, 10.0));
        assert!(cache.insert(0, 5, 2, 2, 8.0));
        assert!(cache.insert(0, 9, 1, 2, 3.0));
        assert!(cache.insert(1, 5, 1, 2, 99.0)); // other class: must not leak
        assert!(!cache.insert(0, 5, 1, 2, 10.0)); // dedup
        assert_eq!(cache.evaluations(), 4);

        let snap = cache.snapshot_class(0);
        let local = snap.seed_local(&[5, 9]);
        assert_eq!(local.get(&(0, 1, 2)), Some(10.0));
        assert_eq!(local.get(&(0, 2, 2)), Some(8.0));
        assert_eq!(local.get(&(1, 1, 2)), Some(3.0));
        assert_eq!(local.get(&(0, 99, 99)), None);
        // Subset ordering defines the local index.
        let local = snap.seed_local(&[9]);
        assert_eq!(local.get(&(0, 1, 2)), Some(3.0));
    }
}
