//! The fleet-level warm cost cache.
//!
//! One store per machine *class*, each **sharded by VM index** across
//! [`VM_SHARDS`] independent [`CostCache`]s, with cells keyed by the
//! VM's **global index** (`(vm, cpu units, mem units)`), since a cell's
//! cost depends only on the VM's workload, the machine class, and the
//! shares — never on which co-residents it has or which concrete machine
//! of the class hosts it (the disk share is a fixed per-VM policy, see
//! [`crate::FleetConfig::disk_share`]).
//!
//! The VM sharding is what lets the pre-warm sweep scale past a handful
//! of worker threads: pre-warm tasks are `(class, vm)` pairs, so two
//! workers touch the same shard only when their VMs collide modulo
//! [`VM_SHARDS`] — multiplied by the [`CostCache`]'s own internal hash
//! shards, thousand-VM fleets warm with effectively no lock contention.
//! Sharding is invisible to correctness: cached values are pure in
//! `(class, vm, cell)` and each `(vm, cell)` key lives in exactly one
//! shard, so lookups are bitwise identical at any worker count.
//!
//! Per-machine solves run through `run_search_cached`, whose cache keys
//! are *local* workload indices within that machine's `DesignProblem`.
//! Sharing the fleet cache directly would therefore collide (local
//! workload 0 is a different VM on every machine), so each solve gets a
//! fresh local [`CostCache`] *seeded* from a snapshot of the fleet cache,
//! re-keyed from global VM indices to local workload positions. Seeding is
//! sound because cached costs are pure functions of `(class, vm, cell)`.

use dbvirt_core::search::CostCache;
use std::sync::Arc;

/// VM shards per class store. Each shard is a full [`CostCache`] (which
/// is itself internally hash-sharded), so the effective lock partition is
/// `VM_SHARDS ×` the cache's internal shard count.
const VM_SHARDS: usize = 16;

/// Shared warm cost store for one fleet advisor: a VM-sharded store per
/// machine class. Thread-safe; concurrent placement requests drain and
/// fill it together.
pub struct FleetCostCache {
    /// `per_class[class][vm % VM_SHARDS]` holds VM `vm`'s cells.
    per_class: Vec<Vec<Arc<CostCache>>>,
}

impl FleetCostCache {
    /// An empty cache covering `n_classes` machine classes.
    pub fn new(n_classes: usize) -> FleetCostCache {
        FleetCostCache {
            per_class: (0..n_classes)
                .map(|_| (0..VM_SHARDS).map(|_| Arc::new(CostCache::new())).collect())
                .collect(),
        }
    }

    /// Number of machine classes this cache partitions over.
    pub fn num_classes(&self) -> usize {
        self.per_class.len()
    }

    /// The shard holding VM `vm`'s cells for `class`.
    fn shard(&self, class: usize, vm: usize) -> &CostCache {
        &self.per_class[class][vm % VM_SHARDS]
    }

    /// The cached unweighted cost of `(class, vm, cpu, mem)`, if present.
    pub fn get(&self, class: usize, vm: usize, cpu: u32, mem: u32) -> Option<f64> {
        self.shard(class, vm).get(&(vm, cpu, mem))
    }

    /// Inserts a freshly evaluated cell. Returns `true` if it was new.
    pub fn insert(&self, class: usize, vm: usize, cpu: u32, mem: u32, cost: f64) -> bool {
        self.shard(class, vm).insert((vm, cpu, mem), cost)
    }

    /// Total distinct cells evaluated into this cache so far.
    pub fn evaluations(&self) -> usize {
        self.per_class
            .iter()
            .flatten()
            .map(|c| c.evaluations())
            .sum()
    }

    /// A deterministic per-VM snapshot of one class's cells, used to seed
    /// local solve caches without re-walking the sharded store per solve.
    /// The snapshot is dense — indexed by VM, O(1) per lookup — so
    /// thousand-VM solves never hash.
    pub fn snapshot_class(&self, class: usize) -> ClassSnapshot {
        let shards = &self.per_class[class];
        let num_vms = shards
            .iter()
            .flat_map(|s| s.entries())
            .map(|((vm, _, _), _)| vm + 1)
            .max()
            .unwrap_or(0);
        let mut by_vm: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); num_vms];
        // Each VM's cells live in exactly one shard, and `entries()` is
        // sorted by `(vm, cpu, mem)` — so every per-VM list comes out
        // sorted, which `cell_cost`'s binary search relies on.
        for shard in shards {
            for ((vm, c, m), cost) in shard.entries() {
                by_vm[vm].push((c, m, cost));
            }
        }
        ClassSnapshot { by_vm }
    }
}

/// An immutable snapshot of one class's cached cells, dense by VM index.
/// Each VM's cell list is sorted by `(cpu, mem)` (see
/// [`FleetCostCache::snapshot_class`]).
pub struct ClassSnapshot {
    by_vm: Vec<Vec<(u32, u32, f64)>>,
}

impl ClassSnapshot {
    /// The cached cells of one VM (empty slice if none).
    pub fn cells(&self, vm: usize) -> &[(u32, u32, f64)] {
        self.by_vm.get(vm).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Builds a fresh local [`CostCache`] for a per-machine solve over
    /// `vms` (ascending global indices): every known cell of `vms[w]` is
    /// inserted under local workload index `w`.
    pub fn seed_local(&self, vms: &[usize]) -> Arc<CostCache> {
        let local = CostCache::new();
        for (w, &vm) in vms.iter().enumerate() {
            for &(c, m, cost) in self.cells(vm) {
                local.insert((w, c, m), cost);
            }
        }
        Arc::new(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_rekeys_global_vms_to_local_workloads() {
        let cache = FleetCostCache::new(2);
        assert!(cache.insert(0, 5, 1, 2, 10.0));
        assert!(cache.insert(0, 5, 2, 2, 8.0));
        assert!(cache.insert(0, 9, 1, 2, 3.0));
        assert!(cache.insert(1, 5, 1, 2, 99.0)); // other class: must not leak
        assert!(!cache.insert(0, 5, 1, 2, 10.0)); // dedup
        assert_eq!(cache.evaluations(), 4);

        let snap = cache.snapshot_class(0);
        let local = snap.seed_local(&[5, 9]);
        assert_eq!(local.get(&(0, 1, 2)), Some(10.0));
        assert_eq!(local.get(&(0, 2, 2)), Some(8.0));
        assert_eq!(local.get(&(1, 1, 2)), Some(3.0));
        assert_eq!(local.get(&(0, 99, 99)), None);
        // Subset ordering defines the local index.
        let local = snap.seed_local(&[9]);
        assert_eq!(local.get(&(0, 1, 2)), Some(3.0));
    }

    #[test]
    fn vm_sharding_is_invisible_to_lookups_and_snapshots() {
        // VMs that collide modulo VM_SHARDS and VMs that don't: every key
        // resolves to its own value, and snapshots stay per-VM sorted.
        let cache = FleetCostCache::new(1);
        let vms = [0, 1, 15, 16, 17, 31, 32, 1000];
        for (i, &vm) in vms.iter().enumerate() {
            assert!(cache.insert(0, vm, 2, 1, i as f64));
            assert!(cache.insert(0, vm, 1, 1, 100.0 + i as f64));
        }
        assert_eq!(cache.evaluations(), 2 * vms.len());
        for (i, &vm) in vms.iter().enumerate() {
            assert_eq!(cache.get(0, vm, 2, 1), Some(i as f64));
            assert_eq!(cache.get(0, vm, 1, 1), Some(100.0 + i as f64));
        }
        let snap = cache.snapshot_class(0);
        for (i, &vm) in vms.iter().enumerate() {
            // Sorted by (cpu, mem): the (1,1) cell precedes (2,1).
            assert_eq!(
                snap.cells(vm),
                &[(1, 1, 100.0 + i as f64), (2, 1, i as f64)]
            );
        }
        assert_eq!(snap.cells(999), &[]); // never warmed, dense hole
        assert_eq!(snap.cells(5000), &[]); // beyond the snapshot
    }
}
