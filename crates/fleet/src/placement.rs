//! Placements: a full fleet assignment with its priced objective.

use crate::migrate::vm_migration_seconds;
use crate::solver::FleetSolver;
use crate::{CurrentPlacement, FleetError};

/// A complete placement: every VM's machine and share units, plus the
/// priced objective. Totals are always re-summed from the per-machine
/// contributions in ascending machine order, so two placements with the
/// same assignment are bitwise-identical no matter which search path
/// produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// `machine_of[i]` is the machine hosting VM `i`.
    pub machine_of: Vec<usize>,
    /// `units_of[i]` is VM `i`'s `(cpu units, mem units)` on its machine.
    pub units_of: Vec<(u32, u32)>,
    /// Weighted steady-state objective per machine (0 for empty machines).
    pub per_machine_objective: Vec<f64>,
    /// Weighted steady-state objective: `Σ_m per_machine_objective[m]`.
    pub steady_objective: f64,
    /// One-time migration cost (seconds) versus the reference placement
    /// (0 when the placement was priced against itself).
    pub migration_seconds: f64,
    /// What the search minimizes: `steady + migration / horizon_runs`.
    pub total_objective: f64,
}

impl Placement {
    /// The VMs hosted on machine `m`, in ascending index order.
    pub fn residents(&self, m: usize) -> Vec<usize> {
        (0..self.machine_of.len())
            .filter(|&i| self.machine_of[i] == m)
            .collect()
    }

    /// Number of machines this placement spans.
    pub fn num_machines(&self) -> usize {
        self.per_machine_objective.len()
    }

    /// The placement viewed as a [`CurrentPlacement`] (e.g. to use one
    /// request's answer as the next request's deployed state).
    pub fn as_current(&self) -> CurrentPlacement {
        CurrentPlacement {
            machine_of: self.machine_of.clone(),
            units_of: self.units_of.clone(),
        }
    }

    /// FNV-1a fingerprint of the full placement: assignment, integer
    /// units, and the bit-exact objectives. Serial and parallel runs of
    /// the advisor must produce identical fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for &m in &self.machine_of {
            eat(&(m as u64).to_le_bytes());
        }
        for &(c, m) in &self.units_of {
            eat(&c.to_le_bytes());
            eat(&m.to_le_bytes());
        }
        eat(&self.steady_objective.to_bits().to_le_bytes());
        eat(&self.migration_seconds.to_bits().to_le_bytes());
        eat(&self.total_objective.to_bits().to_le_bytes());
        h
    }
}

/// Groups an assignment vector into per-machine resident lists (ascending
/// VM index within each machine).
pub(crate) fn residents_of(machine_of: &[usize], num_machines: usize) -> Vec<Vec<usize>> {
    let mut residents = vec![Vec::new(); num_machines];
    for (i, &m) in machine_of.iter().enumerate() {
        residents[m].push(i);
    }
    residents
}

/// Prices an assignment into a full [`Placement`]: solves every occupied
/// machine (memoized), sums objectives in machine order, and prices
/// migration of every VM against `reference` in VM order. This is the
/// single source of truth for placement objectives — search loops compare
/// candidate deltas, but every *accepted* placement is rebuilt here so
/// float drift can never accumulate across rounds.
pub(crate) fn build(
    solver: &FleetSolver<'_, '_>,
    reference: Option<&CurrentPlacement>,
    machine_of: &[usize],
) -> Result<Placement, FleetError> {
    let num_machines = solver.problem.num_machines();
    let residents = residents_of(machine_of, num_machines);
    let mut per_machine_objective = vec![0.0; num_machines];
    let mut units_of = vec![(0u32, 0u32); machine_of.len()];
    for (m, vms) in residents.iter().enumerate() {
        let solve = solver.solve(m, vms)?;
        per_machine_objective[m] = solve.objective;
        for (w, &vm) in vms.iter().enumerate() {
            units_of[vm] = solve.units_of[w];
        }
    }
    let steady_objective: f64 = per_machine_objective.iter().sum();
    let mut migration_seconds = 0.0;
    if let Some(reference) = reference {
        for vm in 0..machine_of.len() {
            migration_seconds += vm_migration_seconds(
                &solver.problem.machines,
                solver.cfg,
                reference,
                vm,
                machine_of[vm],
                units_of[vm],
            )?;
        }
    }
    let total_objective = steady_objective + migration_seconds / solver.cfg.migration_horizon_runs;
    Ok(Placement {
        machine_of: machine_of.to_vec(),
        units_of,
        per_machine_objective,
        steady_objective,
        migration_seconds,
        total_objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residents_group_in_order() {
        let residents = residents_of(&[1, 0, 1, 1], 3);
        assert_eq!(residents, vec![vec![1], vec![0, 2, 3], vec![]]);
    }

    #[test]
    fn fingerprints_distinguish_placements() {
        let base = Placement {
            machine_of: vec![0, 1],
            units_of: vec![(8, 8), (8, 8)],
            per_machine_objective: vec![1.0, 2.0],
            steady_objective: 3.0,
            migration_seconds: 0.0,
            total_objective: 3.0,
        };
        let mut moved = base.clone();
        moved.machine_of = vec![1, 0];
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
        assert_ne!(base.fingerprint(), moved.fingerprint());
        assert_eq!(base.residents(1), vec![1]);
        assert_eq!(base.as_current().machine_of, vec![0, 1]);
    }
}
