//! Per-machine what-if solves over the shared warm cache.
//!
//! Every placement candidate is priced by *re-solving* the machines it
//! touches: the VM subset on a machine becomes a single-machine
//! [`DesignProblem`] and the exact dynamic program from `dbvirt-core`
//! chooses the residents' shares. Solves are memoized by
//! `(machine class, VM subset)` — two machines of the same class hosting
//! the same VMs have identical optimal share splits — and each solve runs
//! against a local cache seeded from the fleet-wide store (see
//! [`crate::FleetCostCache`] for why the keys must be re-mapped).

use crate::{ClassSnapshot, FleetConfig, FleetCostCache, FleetError, FleetProblem, MachineClasses};
use dbvirt_core::search::{run_search_cached, SearchAlgorithm, SearchConfig};
use dbvirt_core::{CostModel, DesignProblem, WorkloadSpec};
use dbvirt_vmm::ResourceVector;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// The outcome of solving one machine's share split for a VM subset.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MachineSolve {
    /// Weighted steady-state objective contributed by this machine.
    pub objective: f64,
    /// `(cpu units, mem units)` per resident, parallel to the subset.
    pub units_of: Vec<(u32, u32)>,
}

impl MachineSolve {
    fn empty() -> MachineSolve {
        MachineSolve {
            objective: 0.0,
            units_of: Vec::new(),
        }
    }
}

/// Prices machines and cells for one placement request. Single-threaded
/// by design: all parallelism lives in the pre-warm sweep, so every path
/// through here is a deterministic cache lookup plus pure arithmetic.
pub(crate) struct FleetSolver<'s, 'a> {
    pub problem: &'s FleetProblem<'a>,
    pub classes: &'s MachineClasses,
    models: &'s [&'s dyn CostModel],
    pub cfg: FleetConfig,
    rect_hi: u32,
    cache: &'s FleetCostCache,
    snapshots: Vec<ClassSnapshot>,
    memo: RefCell<HashMap<(usize, Vec<usize>), MachineSolve>>,
    solves: Cell<usize>,
    memo_hits: Cell<usize>,
}

impl<'s, 'a> FleetSolver<'s, 'a> {
    /// Builds a solver over a snapshot of the shared cache. The snapshot
    /// is taken once per request, *after* that request's pre-warm sweep,
    /// so it covers every cell the solves below will touch. `rect_hi` is
    /// the request's warm-rectangle ceiling: no solve may hand any VM more
    /// units of either resource.
    pub fn new(
        problem: &'s FleetProblem<'a>,
        classes: &'s MachineClasses,
        models: &'s [&'s dyn CostModel],
        cfg: FleetConfig,
        rect_hi: u32,
        cache: &'s FleetCostCache,
    ) -> FleetSolver<'s, 'a> {
        let snapshots = (0..classes.num_classes())
            .map(|k| cache.snapshot_class(k))
            .collect();
        FleetSolver {
            problem,
            classes,
            models,
            cfg,
            rect_hi,
            cache,
            snapshots,
            memo: RefCell::new(HashMap::new()),
            solves: Cell::new(0),
            memo_hits: Cell::new(0),
        }
    }

    /// The SLO weight of VM `vm`.
    pub fn weight(&self, vm: usize) -> f64 {
        self.problem.vms[vm].weight
    }

    /// The unweighted cost of VM `vm` at `(cpu, mem)` units on machine
    /// class `class`. Reads the snapshot first, then the live cache, and
    /// only as a last resort calls the cost model (inserting the result so
    /// the miss is paid once). The returned value is identical on every
    /// path — cached costs are pure in `(class, vm, cell)`.
    pub fn cell_cost(&self, class: usize, vm: usize, cpu: u32, mem: u32) -> Result<f64, FleetError> {
        let cells = self.snapshots[class].cells(vm);
        if let Ok(at) = cells.binary_search_by(|&(c, m, _)| (c, m).cmp(&(cpu, mem))) {
            return Ok(cells[at].2);
        }
        if let Some(cost) = self.cache.get(class, vm, cpu, mem) {
            return Ok(cost);
        }
        let cost = evaluate_cell(
            self.classes,
            self.models,
            self.problem,
            self.cfg,
            class,
            vm,
            cpu,
            mem,
        )?;
        self.cache.insert(class, vm, cpu, mem, cost);
        Ok(cost)
    }

    /// The optimal share split for `vms` (ascending global indices) on
    /// machine `machine`, memoized by `(class, subset)`.
    pub fn solve(&self, machine: usize, vms: &[usize]) -> Result<MachineSolve, FleetError> {
        if vms.is_empty() {
            return Ok(MachineSolve::empty());
        }
        debug_assert!(vms.windows(2).all(|w| w[0] < w[1]), "subset must be sorted");
        let class = self.classes.class_of[machine];
        let key = (class, vms.to_vec());
        if let Some(hit) = self.memo.borrow().get(&key) {
            self.memo_hits.set(self.memo_hits.get() + 1);
            return Ok(hit.clone());
        }

        let workloads = vms
            .iter()
            .map(|&i| {
                let vm = &self.problem.vms[i];
                WorkloadSpec::new(vm.name.clone(), vm.db, vm.queries.clone())
                    .with_weight(vm.weight)
            })
            .collect();
        let dp = DesignProblem::new(self.classes.specs[class], workloads)?;
        // Budget cap: a machine below the forced minimum occupancy (a
        // transient greedy state — more VMs are still coming) may not hand
        // any resident more than `rect_hi` units, or its solve would read
        // cells outside the warm rectangle (and, for narrow calibration
        // grids, outside the grid). At or above the forced occupancy the
        // cap resolves to the full machine, so final placements — whose
        // occupied machines always satisfy it — are solved unchanged.
        let occ = vms.len() as u32;
        let budget = self
            .cfg
            .units
            .min(self.rect_hi + (occ - 1) * self.cfg.min_units);
        let scfg = SearchConfig {
            units: self.cfg.units,
            disk_share: self.cfg.disk_share,
            min_units: self.cfg.min_units,
            parallelism: 1,
            cpu_budget: budget,
            mem_budget: budget,
        };
        let local = self.snapshots[class].seed_local(vms);
        let rec = run_search_cached(
            SearchAlgorithm::DynamicProgramming,
            &dp,
            self.models[class],
            scfg,
            &local,
        )?;
        // Flow any cells the local solve had to evaluate (snapshot gaps)
        // back into the shared store, re-keyed to global VM indices.
        if rec.evaluations > 0 {
            for ((w, c, m), cost) in local.entries() {
                self.cache.insert(class, vms[w], c, m, cost);
            }
        }

        let units = self.cfg.units;
        let units_of = rec
            .allocation
            .rows()
            .map(|row| {
                let c = (row.cpu().fraction() * units as f64).round() as u32;
                let m = (row.memory().fraction() * units as f64).round() as u32;
                (c, m)
            })
            .collect();
        let solve = MachineSolve {
            objective: rec.objective,
            units_of,
        };
        self.solves.set(self.solves.get() + 1);
        self.memo.borrow_mut().insert(key, solve.clone());
        Ok(solve)
    }

    /// Distinct DP solves performed (memo misses).
    pub fn solves(&self) -> usize {
        self.solves.get()
    }

    /// Solves answered from the memo.
    pub fn memo_hits(&self) -> usize {
        self.memo_hits.get()
    }
}

/// Evaluates one `(class, vm, cell)` what-if cost directly against the
/// class's cost model, via a single-workload [`DesignProblem`]. Used by
/// the pre-warm sweep and by [`FleetSolver::cell_cost`] misses; both paths
/// produce bitwise-identical values because the model is a pure function
/// of `(machine spec, workload, shares)`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_cell(
    classes: &MachineClasses,
    models: &[&dyn CostModel],
    problem: &FleetProblem<'_>,
    cfg: FleetConfig,
    class: usize,
    vm: usize,
    cpu: u32,
    mem: u32,
) -> Result<f64, FleetError> {
    let spec = &problem.vms[vm];
    let dp = DesignProblem::new(
        classes.specs[class],
        vec![WorkloadSpec::new(spec.name.clone(), spec.db, spec.queries.clone())],
    )?;
    let units = cfg.units as f64;
    let shares = ResourceVector::from_fractions(
        cpu as f64 / units,
        mem as f64 / units,
        cfg.disk_share,
    )?;
    Ok(models[class].cost(&dp, 0, shares)?)
}
