//! Fleet simulation: run a placement through the co-scheduler.
//!
//! The advisor's objective is a *model* — weighted per-VM cost estimates
//! summed over machines. This module closes the loop by **executing** a
//! [`Placement`]: every machine becomes one `co_schedule` run over its
//! residents (shares taken from the placement's integer units, exactly
//! the mapping the solver's cost model priced), machines are simulated
//! in parallel by `dbvirt_vmm::sched::co_schedule_fleet`, and the
//! per-VM makespans are folded back into a fleet total that can be set
//! against the placement's predicted objective.
//!
//! Determinism: machines are independent single-machine simulations, so
//! the report — including its fingerprint — is bit-identical at every
//! `parallelism` setting (the driver's slot-reduction contract), and
//! identical across processes because every input is.

use crate::placement::residents_of;
use crate::{FleetConfig, FleetError, FleetProblem, Placement};
use dbvirt_vmm::sched::{co_schedule_fleet, MachineSim, SchedMode, SchedStats, VmJob, VmOutcome};
use dbvirt_vmm::{AllocationMatrix, ResourceVector};

use dbvirt_telemetry as telemetry;

/// Placements simulated end to end.
static TM_SIMS: telemetry::Counter = telemetry::Counter::new("fleet.simulations");

/// The result of simulating a [`Placement`]: per-VM outcomes in global
/// VM order, the weighted simulated total, and the placement's predicted
/// objective for comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSimReport {
    /// Per-VM completion reports, indexed by global VM.
    pub outcomes: Vec<VmOutcome>,
    /// Per-VM simulated makespan seconds, indexed by global VM.
    pub vm_seconds: Vec<f64>,
    /// `Σ_i weight_i × vm_seconds[i]`, summed in ascending VM order —
    /// the simulated counterpart of the placement objective.
    pub simulated_total: f64,
    /// The placement's modeled steady-state objective
    /// ([`Placement::steady_objective`]).
    pub predicted_total: f64,
    /// Machines that hosted at least one VM.
    pub machines_occupied: usize,
    /// Scheduler work counters absorbed across all machines (sums, with
    /// `heap_peak` the per-machine max).
    pub stats: SchedStats,
}

impl FleetSimReport {
    /// FNV-1a fingerprint of every simulated completion instant, VM by
    /// VM in global index order, query by query. Serial and parallel
    /// simulations of the same placement must produce identical
    /// fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for o in &self.outcomes {
            eat(o.completion.as_micros());
            for t in &o.query_completions {
                eat(t.as_micros());
            }
        }
        eat(self.simulated_total.to_bits());
        eat(self.predicted_total.to_bits());
        h
    }
}

/// Simulates a deployed placement: machine by machine, each machine's
/// residents co-scheduled under the shares the placement assigned them.
///
/// `jobs[i]` is global VM `i`'s demand stream (one [`ResourceDemand`]
/// per query — typically produced by `dbvirt_core`'s `workload_demands`
/// under the same shares, but any stream works). Allocation rows are
/// derived from the placement's integer units with the solver's exact
/// mapping: `cpu_units / units`, `mem_units / units`, and the fixed
/// per-VM `disk_share` — so the simulation runs under precisely the
/// split the cost model priced.
///
/// `parallelism` follows the workspace convention (`1` serial, `0` one
/// worker per core, `n` exactly `n` workers); the report is
/// bit-identical at every setting.
///
/// [`ResourceDemand`]: dbvirt_vmm::ResourceDemand
pub fn simulate_placement(
    problem: &FleetProblem<'_>,
    placement: &Placement,
    jobs: &[VmJob],
    cfg: &FleetConfig,
    mode: SchedMode,
    parallelism: usize,
) -> Result<FleetSimReport, FleetError> {
    cfg.validate()?;
    let n = problem.num_vms();
    let m = problem.num_machines();
    if placement.machine_of.len() != n || placement.units_of.len() != n || jobs.len() != n {
        return Err(FleetError::BadFleet {
            reason: format!(
                "simulation inputs misaligned: {} VMs, placement covers {} ({} unit rows), {} jobs",
                n,
                placement.machine_of.len(),
                placement.units_of.len(),
                jobs.len()
            ),
        });
    }
    if let Some(&bad) = placement.machine_of.iter().find(|&&mm| mm >= m) {
        return Err(FleetError::BadFleet {
            reason: format!("placement references machine {bad}, fleet has {m}"),
        });
    }

    let mut span = telemetry::span("fleet.simulate");
    span.set_attr("vms", n);
    span.set_attr("machines", m);
    TM_SIMS.add(1);

    // One MachineSim per occupied machine, in ascending machine order;
    // residents ascend within each machine, so (machine, slot) → global
    // VM is a deterministic bijection.
    let residents = residents_of(&placement.machine_of, m);
    let units = cfg.units as f64;
    let mut sims = Vec::new();
    let mut sim_vms: Vec<&[usize]> = Vec::new();
    for (mm, vms) in residents.iter().enumerate() {
        if vms.is_empty() {
            continue;
        }
        let rows = vms
            .iter()
            .map(|&i| {
                let (cu, mu) = placement.units_of[i];
                ResourceVector::from_fractions(cu as f64 / units, mu as f64 / units, cfg.disk_share)
                    .map_err(FleetError::from)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let allocation = AllocationMatrix::new(rows)?;
        sims.push(MachineSim {
            spec: problem.machines[mm],
            allocation,
            jobs: vms.iter().map(|&i| jobs[i].clone()).collect(),
        });
        sim_vms.push(vms);
    }

    let runs = co_schedule_fleet(&sims, mode, parallelism)?;

    // Fold per-machine outcomes back to global VM indices, then total in
    // ascending VM order (never accumulation order — the sum must be
    // bitwise stable no matter how machines were grouped).
    let empty = VmOutcome {
        query_completions: Vec::new(),
        completion: Default::default(),
    };
    let mut outcomes = vec![empty; n];
    let mut stats = SchedStats::default();
    for (vms, run) in sim_vms.iter().zip(&runs) {
        stats.absorb(&run.stats);
        for (slot, &vm) in vms.iter().enumerate() {
            outcomes[vm] = run.outcomes[slot].clone();
        }
    }
    let vm_seconds: Vec<f64> = outcomes.iter().map(|o| o.makespan().as_secs_f64()).collect();
    let simulated_total: f64 = (0..n)
        .map(|i| problem.vms[i].weight * vm_seconds[i])
        .sum();

    span.set_attr("machines_occupied", sims.len());
    Ok(FleetSimReport {
        outcomes,
        vm_seconds,
        simulated_total,
        predicted_total: placement.steady_objective,
        machines_occupied: sims.len(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_engine::Database;
    use dbvirt_optimizer::LogicalPlan;
    use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
    use dbvirt_vmm::sched::co_schedule;
    use dbvirt_vmm::{MachineSpec, ResourceDemand};

    fn tiny_db() -> Database {
        let mut db = Database::new();
        let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
        db.insert_rows(t, (0..10).map(|i| Tuple::new(vec![Datum::Int(i)])))
            .unwrap();
        db.analyze_all().unwrap();
        db
    }

    fn demand(cpu: f64, seq: u64) -> ResourceDemand {
        ResourceDemand {
            cpu_cycles: cpu,
            seq_page_reads: seq,
            random_page_reads: 0,
            page_writes: 0,
        }
    }

    /// A hand-built problem + placement: `n` VMs spread over `m`
    /// machines round-robin, every VM at an equal `units/occupancy`
    /// split, plus synthetic demand streams.
    fn setup(
        db: &Database,
        n: usize,
        m: usize,
        units: u32,
    ) -> (FleetProblem<'_>, Placement, Vec<VmJob>, FleetConfig) {
        let t = db.table_id("t").unwrap();
        let vms = (0..n)
            .map(|i| {
                crate::FleetVm::new(format!("vm{i}"), db, vec![LogicalPlan::scan(t)])
                    .with_weight(1.0 + i as f64 * 0.25)
            })
            .collect();
        let problem = FleetProblem::new(vec![MachineSpec::paper_testbed(); m], vms).unwrap();
        let machine_of: Vec<usize> = (0..n).map(|i| i % m).collect();
        let occupancy = n.div_ceil(m) as u32;
        let per_vm = units / occupancy.max(1);
        let placement = Placement {
            machine_of: machine_of.clone(),
            units_of: vec![(per_vm, per_vm); n],
            per_machine_objective: vec![1.0; m],
            steady_objective: m as f64,
            migration_seconds: 0.0,
            total_objective: m as f64,
        };
        let jobs = (0..n)
            .map(|i| {
                VmJob::new(vec![
                    demand(5e8 + i as f64 * 1e7, 0),
                    demand(0.0, 100 + i as u64 * 13),
                    demand(2e8, 40),
                ])
            })
            .collect();
        let cfg = FleetConfig::new(units).with_max_vms_per_machine(occupancy.max(1) as usize);
        (problem, placement, jobs, cfg)
    }

    #[test]
    fn serial_and_parallel_simulations_are_bit_identical() {
        let db = tiny_db();
        let (problem, placement, jobs, cfg) = setup(&db, 9, 3, 8);
        for mode in [SchedMode::Capped, SchedMode::WorkConserving] {
            let serial = simulate_placement(&problem, &placement, &jobs, &cfg, mode, 1).unwrap();
            for workers in [0, 2, 7] {
                let par =
                    simulate_placement(&problem, &placement, &jobs, &cfg, mode, workers).unwrap();
                assert_eq!(par, serial, "workers={workers} diverged");
                assert_eq!(par.fingerprint(), serial.fingerprint());
            }
            assert!(serial.simulated_total > 0.0);
            assert_eq!(serial.machines_occupied, 3);
            assert_eq!(serial.vm_seconds.len(), 9);
        }
    }

    #[test]
    fn single_machine_fleet_matches_direct_co_schedule() {
        let db = tiny_db();
        let (problem, placement, jobs, cfg) = setup(&db, 4, 1, 8);
        let report =
            simulate_placement(&problem, &placement, &jobs, &cfg, SchedMode::Capped, 1).unwrap();
        let rows = (0..4)
            .map(|_| ResourceVector::from_fractions(0.25, 0.25, cfg.disk_share).unwrap())
            .collect();
        let alloc = AllocationMatrix::new(rows).unwrap();
        let direct =
            co_schedule(MachineSpec::paper_testbed(), &alloc, &jobs, SchedMode::Capped).unwrap();
        assert_eq!(report.outcomes, direct);
        // Weighted total is summed in ascending VM order.
        let expect: f64 = direct
            .iter()
            .enumerate()
            .map(|(i, o)| (1.0 + i as f64 * 0.25) * o.makespan().as_secs_f64())
            .sum();
        assert_eq!(report.simulated_total.to_bits(), expect.to_bits());
    }

    #[test]
    fn empty_machines_are_skipped_not_simulated() {
        let db = tiny_db();
        let (problem, mut placement, jobs, cfg) = setup(&db, 4, 4, 8);
        // Pile everything onto machine 2; machines 0/1/3 go empty.
        placement.machine_of = vec![2; 4];
        placement.units_of = vec![(2, 2); 4];
        let report =
            simulate_placement(&problem, &placement, &jobs, &cfg, SchedMode::Capped, 1).unwrap();
        assert_eq!(report.machines_occupied, 1);
        assert!(report.vm_seconds.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn misaligned_inputs_are_typed_errors() {
        let db = tiny_db();
        let (problem, placement, jobs, cfg) = setup(&db, 4, 2, 8);
        // Wrong job count.
        let err = simulate_placement(&problem, &placement, &jobs[..3], &cfg, SchedMode::Capped, 1)
            .unwrap_err();
        assert!(matches!(err, FleetError::BadFleet { .. }), "{err}");
        // Placement pointing at a machine the fleet does not have.
        let mut bad = placement.clone();
        bad.machine_of[1] = 9;
        let err =
            simulate_placement(&problem, &bad, &jobs, &cfg, SchedMode::Capped, 1).unwrap_err();
        assert!(err.to_string().contains("machine 9"), "{err}");
        // Hostile demands surface the scheduler's typed error, not a panic.
        let mut hostile = jobs.clone();
        hostile[2].queries[0].cpu_cycles = f64::NAN;
        let err = simulate_placement(&problem, &placement, &hostile, &cfg, SchedMode::Capped, 1)
            .unwrap_err();
        assert!(matches!(err, FleetError::Core(_)), "{err}");
    }
}
