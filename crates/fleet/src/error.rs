//! Error type for the fleet placement layer.

use dbvirt_controller::ControllerError;
use dbvirt_core::CoreError;
use dbvirt_vmm::VmmError;
use std::error::Error;
use std::fmt;

/// Errors raised while validating fleets, pricing cells, or placing VMs.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// A per-machine solve or what-if evaluation failed.
    Core(CoreError),
    /// Migration pricing failed (the refill model rejected a VM).
    Pricing(ControllerError),
    /// The fleet definition was malformed.
    BadFleet {
        /// Description of the problem.
        reason: String,
    },
    /// No placement satisfies the machine capacities.
    Infeasible {
        /// Description of the capacity shortfall.
        reason: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Core(e) => write!(f, "core: {e}"),
            FleetError::Pricing(e) => write!(f, "pricing: {e}"),
            FleetError::BadFleet { reason } => write!(f, "bad fleet: {reason}"),
            FleetError::Infeasible { reason } => write!(f, "infeasible fleet: {reason}"),
        }
    }
}

impl Error for FleetError {}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> FleetError {
        FleetError::Core(e)
    }
}

impl From<VmmError> for FleetError {
    fn from(e: VmmError) -> FleetError {
        FleetError::Core(CoreError::Vmm(e))
    }
}

impl From<ControllerError> for FleetError {
    fn from(e: ControllerError) -> FleetError {
        FleetError::Pricing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FleetError = CoreError::BadProblem {
            reason: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("core"));
        let e: FleetError = VmmError::InvalidShare { value: -1.0 }.into();
        assert!(matches!(e, FleetError::Core(CoreError::Vmm(_))));
        let e = FleetError::Infeasible {
            reason: "9 VMs, 8 slots".into(),
        };
        assert!(e.to_string().contains("9 VMs"));
    }
}
