//! Tier 2: best-improvement local search over moves and swaps.
//!
//! Each round scans every single-VM relocation (and, within the
//! [`crate::FleetConfig::swap_candidate_budget`], every cross-machine VM
//! swap), re-solving the touched machines through the memoized solver, and
//! applies the candidate with the lowest priced total. Share *rebalancing*
//! needs no explicit neighborhood: every candidate re-solves its touched
//! machines with the exact per-machine dynamic program, so shares are
//! always jointly optimal for the assignment being scored.
//!
//! Above the budget the swap neighborhood is **sampled**, not skipped: a
//! seeded splitmix64 stream draws up to `swap_candidate_budget` swap
//! pairs per round, in a fixed deterministic order. This matters at
//! capacity-forced shapes (every machine full) where moves are
//! structurally impossible — without sampled swaps, large fleets would do
//! no local search at all.
//!
//! Determinism: candidates are enumerated (or sampled — the seed depends
//! only on the fleet shape and the round index) in a fixed order and
//! accepted only on strict improvement, so ties resolve to the earliest
//! candidate; accepted placements are rebuilt from scratch through
//! [`crate::placement::build`], so candidate-delta float drift never
//! accumulates into the incumbent.

use crate::migrate::vm_migration_seconds;
use crate::placement::{build, residents_of, Placement};
use crate::solver::FleetSolver;
use crate::{CurrentPlacement, FleetError};

/// What the local search did, including any neighborhood it *didn't*
/// scan — large fleets gate swap enumeration, and that must be visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearchStats {
    /// Improvement rounds run (each applies at most one candidate).
    pub rounds: usize,
    /// Single-VM relocations applied.
    pub moves_applied: usize,
    /// Cross-machine swaps applied.
    pub swaps_applied: usize,
    /// Candidate placements priced across all rounds.
    pub candidates_evaluated: usize,
    /// Whether the swap neighborhood was enumerated *exhaustively*.
    /// `false` means `N x M` exceeded
    /// [`crate::FleetConfig::swap_candidate_budget`] and swaps were
    /// sampled instead (see `swap_candidates_sampled`).
    pub swaps_enumerated: bool,
    /// Swap candidates drawn by the seeded sampler, summed over rounds
    /// (0 when the neighborhood was enumerated exhaustively).
    pub swap_candidates_sampled: usize,
}

/// One candidate step.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Relocate VM `vm` to machine `to`.
    Move { vm: usize, to: usize },
    /// Exchange machines between VMs `a` and `b`.
    Swap { a: usize, b: usize },
}

/// The one-time migration cost a machine's residents would pay under a
/// fresh solve of that machine.
fn machine_migration(
    solver: &FleetSolver<'_, '_>,
    reference: Option<&CurrentPlacement>,
    machine: usize,
    vms: &[usize],
    units_of: &[(u32, u32)],
) -> Result<f64, FleetError> {
    let Some(reference) = reference else {
        return Ok(0.0);
    };
    let mut total = 0.0;
    for (w, &vm) in vms.iter().enumerate() {
        total += vm_migration_seconds(
            &solver.problem.machines,
            solver.cfg,
            reference,
            vm,
            machine,
            units_of[w],
        )?;
    }
    Ok(total)
}

/// Removes `i` from sorted `v`, returning the new vector.
fn remove_sorted(v: &[usize], i: usize) -> Vec<usize> {
    v.iter().copied().filter(|&x| x != i).collect()
}

/// Deterministic splitmix64 stream for swap sampling. The seed is a pure
/// function of the fleet shape and the round index, so the sampled
/// neighborhood is identical across runs, machines, and parallelism
/// settings.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Improves `start` until no candidate strictly lowers the priced total
/// (or the round cap is hit). Never returns a worse placement than
/// `start`.
pub(crate) fn improve(
    solver: &FleetSolver<'_, '_>,
    reference: Option<&CurrentPlacement>,
    start: Placement,
) -> Result<(Placement, LocalSearchStats), FleetError> {
    let n = solver.problem.num_vms();
    let m_count = solver.problem.num_machines();
    let cap = solver.cfg.max_vms_per_machine;
    let horizon = solver.cfg.migration_horizon_runs;
    let swaps_enumerated = n * m_count <= solver.cfg.swap_candidate_budget;
    let mut stats = LocalSearchStats {
        rounds: 0,
        moves_applied: 0,
        swaps_applied: 0,
        candidates_evaluated: 0,
        swaps_enumerated,
        swap_candidates_sampled: 0,
    };
    let mut incumbent = start;

    while stats.rounds < solver.cfg.max_rounds {
        let residents = residents_of(&incumbent.machine_of, m_count);
        // Per-machine migration contributions of the incumbent, so a
        // candidate touching machines (a, b) can be priced from deltas.
        let mut migration = vec![0.0f64; m_count];
        let mut total_migration = 0.0;
        for m in 0..m_count {
            let solve = solver.solve(m, &residents[m])?;
            migration[m] = machine_migration(solver, reference, m, &residents[m], &solve.units_of)?;
            total_migration += migration[m];
        }

        let mut best: Option<(f64, Step)> = None;
        let consider = |step: Step,
                            stats: &mut LocalSearchStats,
                            best: &mut Option<(f64, Step)>|
         -> Result<(), FleetError> {
            let (ma, mb, vms_a, vms_b) = match step {
                Step::Move { vm, to } => {
                    let from = incumbent.machine_of[vm];
                    (
                        from,
                        to,
                        remove_sorted(&residents[from], vm),
                        crate::greedy::insert_sorted(&residents[to], vm),
                    )
                }
                Step::Swap { a, b } => {
                    let (ma, mb) = (incumbent.machine_of[a], incumbent.machine_of[b]);
                    (
                        ma,
                        mb,
                        crate::greedy::insert_sorted(&remove_sorted(&residents[ma], a), b),
                        crate::greedy::insert_sorted(&remove_sorted(&residents[mb], b), a),
                    )
                }
            };
            let solve_a = solver.solve(ma, &vms_a)?;
            let solve_b = solver.solve(mb, &vms_b)?;
            let steady = incumbent.steady_objective
                - incumbent.per_machine_objective[ma]
                - incumbent.per_machine_objective[mb]
                + solve_a.objective
                + solve_b.objective;
            let mig = total_migration - migration[ma] - migration[mb]
                + machine_migration(solver, reference, ma, &vms_a, &solve_a.units_of)?
                + machine_migration(solver, reference, mb, &vms_b, &solve_b.units_of)?;
            let total = steady + mig / horizon;
            stats.candidates_evaluated += 1;
            if best.as_ref().map_or(incumbent.total_objective > total, |b| total < b.0) {
                *best = Some((total, step));
            }
            Ok(())
        };

        for vm in 0..n {
            for to in 0..m_count {
                if to == incumbent.machine_of[vm] || residents[to].len() >= cap {
                    continue;
                }
                consider(Step::Move { vm, to }, &mut stats, &mut best)?;
            }
        }
        if swaps_enumerated {
            for a in 0..n {
                for b in (a + 1)..n {
                    if incumbent.machine_of[a] == incumbent.machine_of[b] {
                        continue;
                    }
                    consider(Step::Swap { a, b }, &mut stats, &mut best)?;
                }
            }
        } else if n >= 2 {
            // Budgeted seeded sampling of the swap neighborhood. At
            // capacity-forced shapes every machine is full, so moves are
            // all skipped above and swaps are the *only* candidates —
            // skipping them entirely (the old behavior) meant the xl
            // shape did no local search at all. The seed depends only on
            // `(n, m_count, round)`, never on wall clock or thread
            // scheduling, so sampled rounds are bit-reproducible.
            let budget = solver.cfg.swap_candidate_budget;
            let mut rng = Mix(
                0x5157_4c45_4554_00d5 ^ ((n as u64) << 40) ^ ((m_count as u64) << 20)
                    ^ stats.rounds as u64,
            );
            let mut sampled = 0;
            let mut attempts = 0;
            // Attempt cap: degenerate fleets (everything on one machine)
            // must not spin forever looking for a cross-machine pair.
            while sampled < budget && attempts < 4 * budget {
                attempts += 1;
                let a = (rng.next() % n as u64) as usize;
                let b = (rng.next() % n as u64) as usize;
                let (a, b) = (a.min(b), a.max(b));
                if a == b || incumbent.machine_of[a] == incumbent.machine_of[b] {
                    continue;
                }
                sampled += 1;
                consider(Step::Swap { a, b }, &mut stats, &mut best)?;
            }
            stats.swap_candidates_sampled += sampled;
        }

        let Some((_, step)) = best else { break };
        let mut machine_of = incumbent.machine_of.clone();
        match step {
            Step::Move { vm, to } => machine_of[vm] = to,
            Step::Swap { a, b } => machine_of.swap(a, b),
        }
        let rebuilt = build(solver, reference, &machine_of)?;
        // The candidate won by delta arithmetic; the rebuild is the exact
        // price. Accept only a genuine strict improvement.
        if rebuilt.total_objective >= incumbent.total_objective {
            break;
        }
        match step {
            Step::Move { .. } => stats.moves_applied += 1,
            Step::Swap { .. } => stats.swaps_applied += 1,
        }
        incumbent = rebuilt;
        stats.rounds += 1;
    }
    Ok((incumbent, stats))
}
