//! Tier 2: best-improvement local search over moves and swaps.
//!
//! Each round scans every single-VM relocation (and, within the
//! [`crate::FleetConfig::swap_candidate_budget`], every cross-machine VM
//! swap), re-solving the touched machines through the memoized solver, and
//! applies the candidate with the lowest priced total. Share *rebalancing*
//! needs no explicit neighborhood: every candidate re-solves its touched
//! machines with the exact per-machine dynamic program, so shares are
//! always jointly optimal for the assignment being scored.
//!
//! Determinism: candidates are enumerated in a fixed order and accepted
//! only on strict improvement, so ties resolve to the earliest candidate;
//! accepted placements are rebuilt from scratch through
//! [`crate::placement::build`], so candidate-delta float drift never
//! accumulates into the incumbent.

use crate::migrate::vm_migration_seconds;
use crate::placement::{build, residents_of, Placement};
use crate::solver::FleetSolver;
use crate::{CurrentPlacement, FleetError};

/// What the local search did, including any neighborhood it *didn't*
/// scan — large fleets gate swap enumeration, and that must be visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSearchStats {
    /// Improvement rounds run (each applies at most one candidate).
    pub rounds: usize,
    /// Single-VM relocations applied.
    pub moves_applied: usize,
    /// Cross-machine swaps applied.
    pub swaps_applied: usize,
    /// Candidate placements priced across all rounds.
    pub candidates_evaluated: usize,
    /// Whether the swap neighborhood was enumerated at all. `false` means
    /// `N x M` exceeded [`crate::FleetConfig::swap_candidate_budget`] and
    /// the search was moves-only.
    pub swaps_enumerated: bool,
}

/// One candidate step.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Relocate VM `vm` to machine `to`.
    Move { vm: usize, to: usize },
    /// Exchange machines between VMs `a` and `b`.
    Swap { a: usize, b: usize },
}

/// The one-time migration cost a machine's residents would pay under a
/// fresh solve of that machine.
fn machine_migration(
    solver: &FleetSolver<'_, '_>,
    reference: Option<&CurrentPlacement>,
    machine: usize,
    vms: &[usize],
    units_of: &[(u32, u32)],
) -> Result<f64, FleetError> {
    let Some(reference) = reference else {
        return Ok(0.0);
    };
    let mut total = 0.0;
    for (w, &vm) in vms.iter().enumerate() {
        total += vm_migration_seconds(
            &solver.problem.machines,
            solver.cfg,
            reference,
            vm,
            machine,
            units_of[w],
        )?;
    }
    Ok(total)
}

/// Removes `i` from sorted `v`, returning the new vector.
fn remove_sorted(v: &[usize], i: usize) -> Vec<usize> {
    v.iter().copied().filter(|&x| x != i).collect()
}

/// Improves `start` until no candidate strictly lowers the priced total
/// (or the round cap is hit). Never returns a worse placement than
/// `start`.
pub(crate) fn improve(
    solver: &FleetSolver<'_, '_>,
    reference: Option<&CurrentPlacement>,
    start: Placement,
) -> Result<(Placement, LocalSearchStats), FleetError> {
    let n = solver.problem.num_vms();
    let m_count = solver.problem.num_machines();
    let cap = solver.cfg.max_vms_per_machine;
    let horizon = solver.cfg.migration_horizon_runs;
    let swaps_enumerated = n * m_count <= solver.cfg.swap_candidate_budget;
    let mut stats = LocalSearchStats {
        rounds: 0,
        moves_applied: 0,
        swaps_applied: 0,
        candidates_evaluated: 0,
        swaps_enumerated,
    };
    let mut incumbent = start;

    while stats.rounds < solver.cfg.max_rounds {
        let residents = residents_of(&incumbent.machine_of, m_count);
        // Per-machine migration contributions of the incumbent, so a
        // candidate touching machines (a, b) can be priced from deltas.
        let mut migration = vec![0.0f64; m_count];
        let mut total_migration = 0.0;
        for m in 0..m_count {
            let solve = solver.solve(m, &residents[m])?;
            migration[m] = machine_migration(solver, reference, m, &residents[m], &solve.units_of)?;
            total_migration += migration[m];
        }

        let mut best: Option<(f64, Step)> = None;
        let consider = |step: Step,
                            stats: &mut LocalSearchStats,
                            best: &mut Option<(f64, Step)>|
         -> Result<(), FleetError> {
            let (ma, mb, vms_a, vms_b) = match step {
                Step::Move { vm, to } => {
                    let from = incumbent.machine_of[vm];
                    (
                        from,
                        to,
                        remove_sorted(&residents[from], vm),
                        crate::greedy::insert_sorted(&residents[to], vm),
                    )
                }
                Step::Swap { a, b } => {
                    let (ma, mb) = (incumbent.machine_of[a], incumbent.machine_of[b]);
                    (
                        ma,
                        mb,
                        crate::greedy::insert_sorted(&remove_sorted(&residents[ma], a), b),
                        crate::greedy::insert_sorted(&remove_sorted(&residents[mb], b), a),
                    )
                }
            };
            let solve_a = solver.solve(ma, &vms_a)?;
            let solve_b = solver.solve(mb, &vms_b)?;
            let steady = incumbent.steady_objective
                - incumbent.per_machine_objective[ma]
                - incumbent.per_machine_objective[mb]
                + solve_a.objective
                + solve_b.objective;
            let mig = total_migration - migration[ma] - migration[mb]
                + machine_migration(solver, reference, ma, &vms_a, &solve_a.units_of)?
                + machine_migration(solver, reference, mb, &vms_b, &solve_b.units_of)?;
            let total = steady + mig / horizon;
            stats.candidates_evaluated += 1;
            if best.as_ref().map_or(incumbent.total_objective > total, |b| total < b.0) {
                *best = Some((total, step));
            }
            Ok(())
        };

        for vm in 0..n {
            for to in 0..m_count {
                if to == incumbent.machine_of[vm] || residents[to].len() >= cap {
                    continue;
                }
                consider(Step::Move { vm, to }, &mut stats, &mut best)?;
            }
        }
        if swaps_enumerated {
            for a in 0..n {
                for b in (a + 1)..n {
                    if incumbent.machine_of[a] == incumbent.machine_of[b] {
                        continue;
                    }
                    consider(Step::Swap { a, b }, &mut stats, &mut best)?;
                }
            }
        }

        let Some((_, step)) = best else { break };
        let mut machine_of = incumbent.machine_of.clone();
        match step {
            Step::Move { vm, to } => machine_of[vm] = to,
            Step::Swap { a, b } => machine_of.swap(a, b),
        }
        let rebuilt = build(solver, reference, &machine_of)?;
        // The candidate won by delta arithmetic; the rebuild is the exact
        // price. Accept only a genuine strict improvement.
        if rebuilt.total_objective >= incumbent.total_objective {
            break;
        }
        match step {
            Step::Move { .. } => stats.moves_applied += 1,
            Step::Swap { .. } => stats.swaps_applied += 1,
        }
        incumbent = rebuilt;
        stats.rounds += 1;
    }
    Ok((incumbent, stats))
}
