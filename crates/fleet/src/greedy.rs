//! Tier 1: deterministic greedy bin-packing seed.
//!
//! VMs are placed in descending order of *demand* (their weighted solo
//! cost at the most generous warm cell), each onto the machine where the
//! marginal modeled cost — the machine's re-solved objective minus its
//! current objective, plus the amortized migration charge when a deployed
//! placement exists — is smallest. First-fit-decreasing with exact
//! marginal pricing: every candidate host is re-solved through the warm
//! cache, so adding a VM re-balances its co-residents' shares.

use crate::migrate::vm_migration_seconds;
use crate::solver::FleetSolver;
use crate::{CurrentPlacement, FleetError};

/// Inserts `i` into sorted `v`, returning the new vector.
pub(crate) fn insert_sorted(v: &[usize], i: usize) -> Vec<usize> {
    let at = v.partition_point(|&x| x < i);
    let mut out = Vec::with_capacity(v.len() + 1);
    out.extend_from_slice(&v[..at]);
    out.push(i);
    out.extend_from_slice(&v[at..]);
    out
}

/// Produces the greedy seed assignment (`machine_of`).
pub(crate) fn seed(
    solver: &FleetSolver<'_, '_>,
    rect_hi: u32,
    reference: Option<&CurrentPlacement>,
) -> Result<Vec<usize>, FleetError> {
    let n = solver.problem.num_vms();
    let m_count = solver.problem.num_machines();
    let cap = solver.cfg.max_vms_per_machine;

    // Demand: weighted solo cost at the top warm cell, summed over the
    // machine classes so heterogeneous fleets rank by fleet-wide appetite.
    let mut demand = vec![0.0f64; n];
    for (i, d) in demand.iter_mut().enumerate() {
        for class in 0..solver.classes.num_classes() {
            *d += solver.weight(i) * solver.cell_cost(class, i, rect_hi, rect_hi)?;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| demand[b].total_cmp(&demand[a]).then(a.cmp(&b)));

    let mut residents: Vec<Vec<usize>> = vec![Vec::new(); m_count];
    let mut objective = vec![0.0f64; m_count];
    let mut machine_of = vec![usize::MAX; n];
    for &i in &order {
        let mut best: Option<(f64, usize, Vec<usize>, f64)> = None;
        for m in 0..m_count {
            if residents[m].len() >= cap {
                continue;
            }
            let cand = insert_sorted(&residents[m], i);
            let solve = solver.solve(m, &cand)?;
            let mut delta = solve.objective - objective[m];
            if let Some(reference) = reference {
                let w = cand.iter().position(|&x| x == i).unwrap();
                delta += vm_migration_seconds(
                    &solver.problem.machines,
                    solver.cfg,
                    reference,
                    i,
                    m,
                    solve.units_of[w],
                )? / solver.cfg.migration_horizon_runs;
            }
            // Strict `<` keeps the first (lowest-index) machine on ties.
            if best.as_ref().map_or(true, |b| delta < b.0) {
                best = Some((delta, m, cand, solve.objective));
            }
        }
        let (_, m, cand, obj) = best.ok_or_else(|| FleetError::Infeasible {
            reason: format!(
                "no machine below the {cap}-VM cap left for VM {i} ({} VMs, {m_count} machines)",
                n
            ),
        })?;
        residents[m] = cand;
        objective[m] = obj;
        machine_of[i] = m;
    }
    Ok(machine_of)
}
