//! The fleet advisor: a shared-warm-cache placement service.
//!
//! One [`FleetAdvisor`] is bound to a machine fleet (and one cost model
//! per machine class) and serves placement requests over it. Each request
//! runs the solver ladder:
//!
//! 1. **Pre-warm** — every `(class, VM, cell)` what-if cost the exact
//!    solves can touch is evaluated into the shared [`FleetCostCache`],
//!    sharded across [`FleetConfig::parallelism`] worker threads. This is
//!    the *only* parallel stage; everything after it is pure cache
//!    lookups, which is why placements are bit-identical at every
//!    parallelism setting.
//! 2. **Greedy seed** ([`crate::greedy`]) — demand-sorted best-fit
//!    bin-packing by marginal modeled cost.
//! 3. **Local search** ([`crate::local_search`]) — move/swap descent,
//!    re-solving touched machines exactly.
//! 4. **LP bound** ([`crate::lp`]) — Lagrangian lower bound, reported as
//!    an optimality gap on the answer.
//!
//! The cache persists across requests: a second placement over the same
//! VM universe (different weights, drift, a deployed placement to price
//! against) answers almost entirely from warm cells. Concurrent requests
//! may share the advisor — the cache is thread-safe, cached values are
//! pure, and each request reads only exact keys it pre-warmed itself, so
//! concurrent requests return exactly what they would have returned alone.
//! Sharing is sound only while VM *indices* keep meaning the same
//! `(database, queries)` across requests (weights may vary), mirroring the
//! single-machine cache contract.

use crate::placement::build;
use crate::solver::{evaluate_cell, FleetSolver};
use crate::{
    greedy, local_search, lp, CurrentPlacement, FleetConfig, FleetCostCache, FleetError,
    FleetProblem, LocalSearchStats, LpBound, MachineClasses, Placement, RebalanceDelta,
};
use dbvirt_core::CostModel;
use dbvirt_telemetry as telemetry;
use dbvirt_vmm::MachineSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Placement requests served.
static TM_REQUESTS: telemetry::Counter = telemetry::Counter::new("fleet.requests");
/// What-if cells evaluated by pre-warm sweeps.
static TM_PREWARM_CELLS: telemetry::Counter = telemetry::Counter::new("fleet.prewarm_cells");
/// Distinct per-machine DP solves run.
static TM_SOLVES: telemetry::Counter = telemetry::Counter::new("fleet.solves");
/// Per-machine solves answered from the subset memo.
static TM_MEMO_HITS: telemetry::Counter = telemetry::Counter::new("fleet.solve_memo_hits");
/// Local-search moves applied.
static TM_MOVES: telemetry::Counter = telemetry::Counter::new("fleet.moves_applied");
/// Local-search swaps applied.
static TM_SWAPS: telemetry::Counter = telemetry::Counter::new("fleet.swaps_applied");
/// Optimality gap of the most recent placement.
static TM_GAP: telemetry::Gauge = telemetry::Gauge::new("fleet.optimality_gap");

/// Everything one placement request produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The recommended placement (after local search).
    pub placement: Placement,
    /// The greedy seed it improved on.
    pub greedy_placement: Placement,
    /// What local search did.
    pub local_search: LocalSearchStats,
    /// The LP lower bound.
    pub lp: LpBound,
    /// `(steady − bound) / steady`: how far the answer can be from the
    /// true optimum, certified by the LP bound.
    pub optimality_gap: f64,
    /// Priced against the deployed placement, when the request carried
    /// one.
    pub rebalance: Option<RebalanceDelta>,
    /// Cells this request's pre-warm sweep had to evaluate (0 when the
    /// cache was already warm).
    pub prewarm_cells: usize,
    /// Distinct per-machine DP solves this request ran.
    pub solves: usize,
    /// Solves answered from the subset memo.
    pub memo_hits: usize,
}

impl FleetReport {
    /// FNV-1a fingerprint over the full report: final and greedy
    /// placements (assignments, units, bit-exact objectives), the LP
    /// bound, and the gap. Cache warmth and solve counts are deliberately
    /// excluded — they vary with request order, the answer must not.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&self.placement.fingerprint().to_le_bytes());
        eat(&self.greedy_placement.fingerprint().to_le_bytes());
        eat(&self.lp.bound.to_bits().to_le_bytes());
        eat(&self.optimality_gap.to_bits().to_le_bytes());
        h
    }
}

/// A placement service over one fixed machine fleet. See the module docs
/// for the request pipeline and the cache-sharing contract.
pub struct FleetAdvisor<'m> {
    machines: Vec<MachineSpec>,
    classes: MachineClasses,
    models: Vec<&'m dyn CostModel>,
    cache: FleetCostCache,
    config: FleetConfig,
}

impl<'m> FleetAdvisor<'m> {
    /// Binds an advisor to `machines`, with one cost model per machine
    /// *class* (machines grouped by exact spec equality, in
    /// first-appearance order — see [`MachineClasses::of`]).
    pub fn new(
        machines: Vec<MachineSpec>,
        class_models: Vec<&'m dyn CostModel>,
        config: FleetConfig,
    ) -> Result<FleetAdvisor<'m>, FleetError> {
        if machines.is_empty() {
            return Err(FleetError::BadFleet {
                reason: "an advisor needs at least one machine".to_string(),
            });
        }
        for (m, spec) in machines.iter().enumerate() {
            spec.validate().map_err(|e| FleetError::BadFleet {
                reason: format!("machine {m}: {e}"),
            })?;
        }
        config.validate()?;
        let classes = MachineClasses::of(&machines);
        if class_models.len() != classes.num_classes() {
            return Err(FleetError::BadFleet {
                reason: format!(
                    "{} cost models for {} machine classes",
                    class_models.len(),
                    classes.num_classes()
                ),
            });
        }
        let cache = FleetCostCache::new(classes.num_classes());
        Ok(FleetAdvisor {
            machines,
            classes,
            models: class_models,
            cache,
            config,
        })
    }

    /// The machine classes this advisor grouped its fleet into.
    pub fn classes(&self) -> &MachineClasses {
        &self.classes
    }

    /// The advisor's configuration.
    pub fn config(&self) -> FleetConfig {
        self.config
    }

    /// Distinct what-if cells in the shared cache.
    pub fn cache_evaluations(&self) -> usize {
        self.cache.evaluations()
    }

    /// The warm-rectangle ceiling for a request of `n` VMs: with forced
    /// minimum occupancy `k` on every machine, no VM can ever hold more
    /// than `units − (k−1)·min_units` of either resource.
    fn rect_hi(&self, n: usize) -> u32 {
        let m = self.machines.len();
        let cap = self.config.max_vms_per_machine;
        let min_occ = (n as i64 - (m as i64 - 1) * cap as i64).max(1) as u32;
        self.config.units - (min_occ - 1) * self.config.min_units
    }

    /// Serves one placement request. See the module docs for the
    /// pipeline; see [`FleetReport`] for what comes back.
    pub fn place(&self, problem: &FleetProblem<'_>) -> Result<FleetReport, FleetError> {
        let mut span = telemetry::span("fleet.place");
        TM_REQUESTS.add(1);
        if problem.machines != self.machines {
            return Err(FleetError::BadFleet {
                reason: "request's machine fleet differs from the advisor's".to_string(),
            });
        }
        let n = problem.num_vms();
        let m_count = problem.num_machines();
        let cap = self.config.max_vms_per_machine;
        if n > m_count * cap {
            return Err(FleetError::Infeasible {
                reason: format!("{n} VMs exceed {m_count} machines x {cap} VM cap"),
            });
        }
        if let Some(current) = &problem.current {
            for (i, &(c, mu)) in current.units_of.iter().enumerate() {
                let ok = |u: u32| u >= self.config.min_units && u <= self.config.units;
                if !ok(c) || !ok(mu) {
                    return Err(FleetError::BadFleet {
                        reason: format!(
                            "current units ({c}, {mu}) of VM {i} outside [{}, {}]",
                            self.config.min_units, self.config.units
                        ),
                    });
                }
            }
        }
        span.set_attr("vms", n);
        span.set_attr("machines", m_count);

        let rect_hi = self.rect_hi(n);
        let prewarm_cells = self.prewarm(problem, rect_hi, span.id())?;
        TM_PREWARM_CELLS.add(prewarm_cells as u64);

        let solver = FleetSolver::new(
            problem,
            &self.classes,
            &self.models,
            self.config,
            rect_hi,
            &self.cache,
        );

        // Churn is priced against the deployed placement when the request
        // carries one. A fresh placement migrates nothing — nothing is
        // deployed yet — so no reference means migration is free, and the
        // ladder optimizes pure steady-state cost.
        let reference = problem.current.as_ref();
        let greedy_placement = {
            let mut greedy_span = telemetry::span_with_parent("fleet.greedy", span.id());
            let seed = greedy::seed(&solver, rect_hi, reference)?;
            let greedy_placement = build(&solver, reference, &seed)?;
            greedy_span.set_attr("objective", greedy_placement.total_objective);
            greedy_placement
        };

        let (placement, stats) = {
            let mut ls_span = telemetry::span_with_parent("fleet.local_search", span.id());
            let (placement, stats) =
                local_search::improve(&solver, reference, greedy_placement.clone())?;
            ls_span.set_attr("rounds", stats.rounds);
            ls_span.set_attr("candidates", stats.candidates_evaluated);
            (placement, stats)
        };
        TM_MOVES.add(stats.moves_applied as u64);
        TM_SWAPS.add(stats.swaps_applied as u64);

        let lp = {
            let mut lp_span = telemetry::span_with_parent("fleet.lp", span.id());
            let lp = lp::lower_bound(&solver, rect_hi, placement.steady_objective)?;
            lp_span.set_attr("bound", lp.bound);
            lp_span.set_attr("iterations", lp.iterations);
            lp
        };
        let optimality_gap = if placement.steady_objective > 0.0 {
            ((placement.steady_objective - lp.bound) / placement.steady_objective).max(0.0)
        } else {
            0.0
        };
        TM_GAP.set(optimality_gap);

        let rebalance = match &problem.current {
            Some(current) => Some(self.price_rebalance(&solver, current, &placement)?),
            None => None,
        };

        TM_SOLVES.add(solver.solves() as u64);
        TM_MEMO_HITS.add(solver.memo_hits() as u64);
        span.set_attr("objective", placement.total_objective);
        span.set_attr("gap", optimality_gap);
        Ok(FleetReport {
            placement,
            greedy_placement,
            local_search: stats,
            lp,
            optimality_gap,
            rebalance,
            prewarm_cells,
            solves: solver.solves(),
            memo_hits: solver.memo_hits(),
        })
    }

    /// Evaluates every cell of the warm rectangle
    /// (`min_units ..= rect_hi` squared, per class and VM) that the cache
    /// does not hold yet, across the configured worker threads. Values are
    /// pure in `(class, vm, cell)`, so insert order — and hence worker
    /// count — cannot change any later lookup.
    fn prewarm(
        &self,
        problem: &FleetProblem<'_>,
        rect_hi: u32,
        parent: Option<u64>,
    ) -> Result<usize, FleetError> {
        let mut span = telemetry::span_with_parent("fleet.prewarm", parent);
        let before = self.cache.evaluations();
        let lo = self.config.min_units;
        let tasks: Vec<(usize, usize)> = (0..self.classes.num_classes())
            .flat_map(|class| (0..problem.num_vms()).map(move |vm| (class, vm)))
            .collect();
        let workers = self.config.effective_parallelism().min(tasks.len().max(1));
        span.set_attr("workers", workers);

        let warm_task = |&(class, vm): &(usize, usize)| -> Result<(), FleetError> {
            for c in lo..=rect_hi {
                for mu in lo..=rect_hi {
                    if self.cache.get(class, vm, c, mu).is_none() {
                        let cost = evaluate_cell(
                            &self.classes,
                            &self.models,
                            problem,
                            self.config,
                            class,
                            vm,
                            c,
                            mu,
                        )?;
                        self.cache.insert(class, vm, c, mu, cost);
                    }
                }
            }
            Ok(())
        };

        if workers <= 1 {
            for task in &tasks {
                warm_task(task)?;
            }
        } else {
            let next = AtomicUsize::new(0);
            let failures: Mutex<Vec<(usize, FleetError)>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let at = next.fetch_add(1, Ordering::Relaxed);
                        let Some(task) = tasks.get(at) else { break };
                        if let Err(e) = warm_task(task) {
                            failures.lock().unwrap().push((at, e));
                        }
                    });
                }
            });
            let mut failures = failures.into_inner().unwrap();
            // Workers race, so surface the failure of the *earliest* task
            // for a deterministic error.
            failures.sort_by_key(|(at, _)| *at);
            if let Some((_, e)) = failures.into_iter().next() {
                return Err(e);
            }
        }
        let cells = self.cache.evaluations() - before;
        span.set_attr("cells", cells);
        Ok(cells)
    }

    /// Prices the recommendation against the deployed placement.
    fn price_rebalance(
        &self,
        solver: &FleetSolver<'_, '_>,
        current: &CurrentPlacement,
        placement: &Placement,
    ) -> Result<RebalanceDelta, FleetError> {
        let mut steady_before = 0.0;
        for (i, &m) in current.machine_of.iter().enumerate() {
            let class = self.classes.class_of[m];
            let (c, mu) = current.units_of[i];
            steady_before += solver.weight(i) * solver.cell_cost(class, i, c, mu)?;
        }
        Ok(RebalanceDelta {
            steady_before,
            steady_after: placement.steady_objective,
            migration_seconds: placement.migration_seconds,
            horizon_runs: self.config.migration_horizon_runs,
        })
    }
}
