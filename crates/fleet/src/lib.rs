//! # dbvirt-fleet — datacenter-scale virtualization design
//!
//! The paper solves the virtualization design problem for *one* machine:
//! split its resources among `N` workloads to minimize the weighted cost
//! sum. At datacenter scale the problem gains a combinatorial outer
//! layer — *which* machine should each VM live on — while the inner
//! problem (share splits per machine) stays exactly the paper's. This
//! crate solves the joint problem with a three-tier ladder:
//!
//! 1. **Greedy bin-pack**: demand-sorted best-fit by
//!    marginal modeled cost, every candidate host re-solved exactly.
//! 2. **Local search**: move/swap descent; share
//!    rebalancing is implicit because every touched machine is re-solved
//!    with the exact per-machine dynamic program.
//! 3. **LP lower bound**: an in-tree Lagrangian relaxation
//!    certifies how far the answer can be from optimal (the reported
//!    *optimality gap*) — no external solver.
//!
//! All three tiers price what-if cells through a shared, thread-safe
//! [`FleetCostCache`] keyed by `(machine class, VM, cell)`; the
//! [`FleetAdvisor`] pre-warms the reachable rectangle in parallel and
//! then runs the ladder over pure cache lookups, so placements are
//! bit-identical at every parallelism setting. Re-placements over a
//! deployed fleet price their churn with the controller's
//! pool-refill model and account for it in a [`RebalanceLedger`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor;
mod cache;
mod config;
mod error;
mod greedy;
mod ledger;
mod local_search;
mod lp;
mod migrate;
mod placement;
mod problem;
mod sim;
mod solver;

pub use advisor::{FleetAdvisor, FleetReport};
pub use cache::{ClassSnapshot, FleetCostCache};
pub use config::FleetConfig;
pub use error::FleetError;
pub use ledger::{RebalanceDelta, RebalanceLedger};
pub use local_search::LocalSearchStats;
pub use lp::LpBound;
pub use placement::Placement;
pub use problem::{CurrentPlacement, FleetProblem, FleetVm, MachineClasses};
pub use sim::{simulate_placement, FleetSimReport};
