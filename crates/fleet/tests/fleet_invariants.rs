//! Fleet placement invariants: solver-ladder ordering, LP bound
//! soundness, capacity feasibility, determinism, and cache sharing —
//! over randomized fleets and pinned edge cases.

use dbvirt_core::search::{run_search_cached, CostCache, SearchAlgorithm, SearchConfig};
use dbvirt_core::{CoreError, CostModel, DesignProblem};
use dbvirt_engine::Database;
use dbvirt_fleet::{
    CurrentPlacement, FleetAdvisor, FleetConfig, FleetError, FleetProblem, FleetVm,
    MachineClasses,
};
use dbvirt_optimizer::LogicalPlan;
use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
use dbvirt_vmm::{MachineSpec, ResourceVector};
use proptest::prelude::*;
use std::sync::Arc;

/// A cheap, strictly share-hungry synthetic model. Prices workloads by
/// *name* (names are the VM identity that per-machine solves pass
/// through), so the same VM costs the same no matter which machine subset
/// it appears in — the contract the shared cache relies on.
struct SyntheticModel {
    speed: f64,
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl CostModel for SyntheticModel {
    fn cost(
        &self,
        problem: &DesignProblem<'_>,
        w_idx: usize,
        shares: ResourceVector,
    ) -> Result<f64, CoreError> {
        let scale = 1.0 + (fnv(&problem.workloads[w_idx].name) % 13) as f64 * 0.35;
        let cpu = shares.cpu().fraction();
        let mem = shares.memory().fraction();
        Ok(self.speed * scale * (1.0 / cpu + 0.6 / mem))
    }
}

fn tiny_db() -> Database {
    let mut db = Database::new();
    let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
    db.insert_rows(t, (0..10).map(|i| Tuple::new(vec![Datum::Int(i)])))
        .unwrap();
    db.analyze_all().unwrap();
    db
}

fn vms<'a>(db: &'a Database, n: usize, weights: &[f64]) -> Vec<FleetVm<'a>> {
    let t = db.table_id("t").unwrap();
    (0..n)
        .map(|i| {
            FleetVm::new(format!("vm-{i}"), db, vec![LogicalPlan::scan(t)])
                .with_weight(weights.get(i).copied().unwrap_or(1.0))
        })
        .collect()
}

/// Machines, class-indexed models (owned), and the advisor's config for a
/// generated fleet shape.
fn fleet_setup(m: usize, hetero: bool) -> (Vec<MachineSpec>, Vec<SyntheticModel>) {
    let machines: Vec<MachineSpec> = (0..m)
        .map(|i| {
            if hetero && i % 2 == 1 {
                MachineSpec::paper_testbed()
            } else {
                MachineSpec::tiny()
            }
        })
        .collect();
    let classes = MachineClasses::of(&machines);
    let models = (0..classes.num_classes())
        .map(|k| SyntheticModel {
            speed: 1.0 + k as f64 * 0.7,
        })
        .collect();
    (machines, models)
}

fn check_invariants(
    cfg: FleetConfig,
    machines: &[MachineSpec],
    models: &[SyntheticModel],
    problem: &FleetProblem<'_>,
) {
    let model_refs: Vec<&dyn CostModel> = models.iter().map(|m| m as &dyn CostModel).collect();
    let advisor = FleetAdvisor::new(machines.to_vec(), model_refs, cfg).unwrap();
    let report = advisor.place(problem).unwrap();

    // (a) Local search never worsens the greedy incumbent.
    assert!(
        report.placement.total_objective <= report.greedy_placement.total_objective,
        "local search worsened greedy: {} > {}",
        report.placement.total_objective,
        report.greedy_placement.total_objective
    );

    // (b) The LP bound never exceeds any feasible incumbent's steady cost.
    for (label, steady) in [
        ("greedy", report.greedy_placement.steady_objective),
        ("final", report.placement.steady_objective),
    ] {
        assert!(
            report.lp.bound <= steady + 1e-9 * steady.abs().max(1.0),
            "LP bound {} exceeds {label} incumbent {}",
            report.lp.bound,
            steady
        );
    }
    assert!(report.optimality_gap >= 0.0);

    // (c) Every placement respects machine capacities and share floors.
    for p in [&report.greedy_placement, &report.placement] {
        let mut used = vec![(0u64, 0u64); machines.len()];
        for i in 0..problem.num_vms() {
            let m = p.machine_of[i];
            assert!(m < machines.len());
            let (c, mu) = p.units_of[i];
            assert!(
                c >= cfg.min_units && mu >= cfg.min_units,
                "VM {i} got ({c}, {mu}), below the {}-unit floor",
                cfg.min_units
            );
            used[m].0 += c as u64;
            used[m].1 += mu as u64;
        }
        for (m, &(c, mu)) in used.iter().enumerate() {
            assert!(
                c <= cfg.units as u64 && mu <= cfg.units as u64,
                "machine {m} oversubscribed: ({c}, {mu}) of {} units",
                cfg.units
            );
        }
        for (m, residents) in (0..machines.len())
            .map(|m| (m, p.residents(m)))
        {
            assert!(
                residents.len() <= cfg.max_vms_per_machine,
                "machine {m} hosts {} VMs over the {} cap",
                residents.len(),
                cfg.max_vms_per_machine
            );
        }
    }

    // Same request again: the answer must be bit-identical, and the cache
    // must already be warm.
    let again = advisor.place(problem).unwrap();
    assert_eq!(report.fingerprint(), again.fingerprint());
    assert_eq!(again.prewarm_cells, 0, "second request re-warmed cells");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The three required fleet invariants over random fleet shapes,
    /// weights, and (sometimes) a deployed placement to price against.
    #[test]
    fn prop_fleet_invariants(
        n in 1usize..7,
        m in 1usize..4,
        hetero in prop::bool::ANY,
        with_current in prop::bool::ANY,
        w_seed in 0u64..1000,
    ) {
        let units = 6u32;
        let cfg = FleetConfig::new(units)
            .with_parallelism(1)
            .with_lp_iterations(120);
        // Skip infeasible shapes (cap = units VMs per machine).
        prop_assume!(n <= m * cfg.max_vms_per_machine);
        let weights: Vec<f64> = (0..n)
            .map(|i| 0.5 + ((w_seed + i as u64) % 7) as f64 * 0.4)
            .collect();
        let (machines, models) = fleet_setup(m, hetero);
        let db = tiny_db();
        let mut problem = FleetProblem::new(machines.clone(), vms(&db, n, &weights)).unwrap();
        if with_current {
            let current = CurrentPlacement {
                machine_of: (0..n).map(|i| i % m).collect(),
                units_of: (0..n).map(|i| (1 + (i as u32 % 3), 2)).collect(),
            };
            problem = problem.with_current(current).unwrap();
        }
        check_invariants(cfg, &machines, &models, &problem);
    }
}

/// With one machine the fleet problem *is* the paper's single-machine
/// problem: the advisor must return exactly what the core DP returns.
#[test]
fn single_machine_placement_matches_core_dp() {
    let db = tiny_db();
    let n = 4;
    let units = 8u32;
    let weights = [1.0, 2.0, 0.5, 1.5];
    let machines = vec![MachineSpec::tiny()];
    let model = SyntheticModel { speed: 1.0 };
    let cfg = FleetConfig::new(units)
        .with_disk_share(0.25)
        .with_parallelism(1);
    let advisor = FleetAdvisor::new(machines.clone(), vec![&model], cfg).unwrap();
    let problem = FleetProblem::new(machines, vms(&db, n, &weights)).unwrap();
    let report = advisor.place(&problem).unwrap();

    let workloads = problem
        .vms
        .iter()
        .map(|vm| {
            dbvirt_core::WorkloadSpec::new(vm.name.clone(), vm.db, vm.queries.clone())
                .with_weight(vm.weight)
        })
        .collect();
    let dp = DesignProblem::new(MachineSpec::tiny(), workloads).unwrap();
    let scfg = SearchConfig {
        units,
        disk_share: 0.25,
        min_units: 1,
        parallelism: 1,
        cpu_budget: units,
        mem_budget: units,
    };
    let rec = run_search_cached(
        SearchAlgorithm::DynamicProgramming,
        &dp,
        &model,
        scfg,
        &Arc::new(CostCache::new()),
    )
    .unwrap();

    assert!(report.placement.machine_of.iter().all(|&m| m == 0));
    assert_eq!(report.placement.steady_objective, rec.objective);
    for (i, row) in rec.allocation.rows().enumerate() {
        let c = (row.cpu().fraction() * units as f64).round() as u32;
        let mu = (row.memory().fraction() * units as f64).round() as u32;
        assert_eq!(report.placement.units_of[i], (c, mu), "VM {i} units differ");
    }
    // Migration against the greedy seed is zero for a fresh placement only
    // if local search kept the seed; either way the LP gap is certified.
    assert!(report.optimality_gap < 1.0);
}

/// One advisor, two *different* requests (same VM universe, different
/// weights), served concurrently from two threads sharing the warm cache:
/// both answers must be bit-identical to serving them sequentially from a
/// fresh advisor.
#[test]
fn concurrent_requests_share_the_cache_deterministically() {
    let db = tiny_db();
    let n = 5;
    let machines_proto = fleet_setup(2, true);
    let cfg = FleetConfig::new(6).with_parallelism(1).with_lp_iterations(80);
    let weights_a: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.3).collect();
    let weights_b: Vec<f64> = (0..n).map(|i| 2.5 - i as f64 * 0.2).collect();

    let serve_sequential = || {
        let (machines, models) = &machines_proto;
        let model_refs: Vec<&dyn CostModel> = models.iter().map(|m| m as &dyn CostModel).collect();
        let advisor = FleetAdvisor::new(machines.clone(), model_refs, cfg).unwrap();
        let pa = FleetProblem::new(machines.clone(), vms(&db, n, &weights_a)).unwrap();
        let pb = FleetProblem::new(machines.clone(), vms(&db, n, &weights_b)).unwrap();
        let ra = advisor.place(&pa).unwrap();
        let rb = advisor.place(&pb).unwrap();
        (ra.fingerprint(), rb.fingerprint(), advisor.cache_evaluations())
    };
    let (fp_a, fp_b, evals) = serve_sequential();
    // Sanity: the two requests genuinely differ.
    assert_ne!(fp_a, fp_b);

    for _ in 0..4 {
        let (machines, models) = &machines_proto;
        let model_refs: Vec<&dyn CostModel> = models.iter().map(|m| m as &dyn CostModel).collect();
        let advisor = FleetAdvisor::new(machines.clone(), model_refs, cfg).unwrap();
        let pa = FleetProblem::new(machines.clone(), vms(&db, n, &weights_a)).unwrap();
        let pb = FleetProblem::new(machines.clone(), vms(&db, n, &weights_b)).unwrap();
        let (got_a, got_b) = std::thread::scope(|scope| {
            let ta = scope.spawn(|| advisor.place(&pa).unwrap().fingerprint());
            let tb = scope.spawn(|| advisor.place(&pb).unwrap().fingerprint());
            (ta.join().unwrap(), tb.join().unwrap())
        });
        assert_eq!(got_a, fp_a, "request A diverged under concurrency");
        assert_eq!(got_b, fp_b, "request B diverged under concurrency");
        // Both requests pre-warm the same rectangle: the shared cache ends
        // with exactly the cells a sequential advisor evaluates.
        assert_eq!(advisor.cache_evaluations(), evals);
    }
}

/// Pre-warm parallelism must not change a single bit of the answer.
#[test]
fn prewarm_parallelism_is_invisible() {
    let db = tiny_db();
    let n = 6;
    let weights: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.25).collect();
    let (machines, models) = fleet_setup(3, true);
    let mut fingerprints = Vec::new();
    for parallelism in [1usize, 4, 0] {
        let cfg = FleetConfig::new(6)
            .with_parallelism(parallelism)
            .with_lp_iterations(80);
        let model_refs: Vec<&dyn CostModel> = models.iter().map(|m| m as &dyn CostModel).collect();
        let advisor = FleetAdvisor::new(machines.clone(), model_refs, cfg).unwrap();
        let problem = FleetProblem::new(machines.clone(), vms(&db, n, &weights)).unwrap();
        fingerprints.push(advisor.place(&problem).unwrap().fingerprint());
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
    assert_eq!(fingerprints[0], fingerprints[2]);
}

/// Re-placing a deployed fleet prices its churn and reports the delta.
#[test]
fn rebalance_is_priced_against_the_deployed_placement() {
    let db = tiny_db();
    let n = 4;
    let weights = [1.0, 1.0, 3.0, 1.0];
    let (machines, models) = fleet_setup(2, false);
    let model_refs: Vec<&dyn CostModel> = models.iter().map(|m| m as &dyn CostModel).collect();
    let cfg = FleetConfig::new(8).with_parallelism(1).with_lp_iterations(80);
    let advisor = FleetAdvisor::new(machines.clone(), model_refs, cfg).unwrap();

    // Everything crammed onto machine 0 with minimal shares.
    let current = CurrentPlacement {
        machine_of: vec![0; n],
        units_of: vec![(2, 2); n],
    };
    let problem = FleetProblem::new(machines.clone(), vms(&db, n, &weights))
        .unwrap()
        .with_current(current.clone())
        .unwrap();
    let report = advisor.place(&problem).unwrap();
    let delta = report.rebalance.expect("current placement must be priced");
    assert!(delta.steady_before > 0.0);
    assert_eq!(delta.steady_after, report.placement.steady_objective);
    assert_eq!(delta.migration_seconds, report.placement.migration_seconds);
    // The cramped deployment is strictly worse than the recommendation.
    assert!(delta.steady_gain() > 0.0, "gain {}", delta.steady_gain());

    // If the recommendation differs from the deployment, it paid churn.
    let moved = report.placement.machine_of != current.machine_of
        || report
            .placement
            .units_of
            .iter()
            .zip(&current.units_of)
            .any(|(a, b)| a.1 != b.1);
    assert_eq!(moved, report.placement.migration_seconds > 0.0);
}

/// Hostile and mismatched requests fail with typed errors, never panics.
#[test]
fn hostile_requests_return_typed_errors() {
    let db = tiny_db();
    let (machines, models) = fleet_setup(2, false);
    let model_refs: Vec<&dyn CostModel> = models.iter().map(|m| m as &dyn CostModel).collect();
    let cfg = FleetConfig::new(4).with_parallelism(1);

    // Wrong model count for the class structure.
    let Err(err) = FleetAdvisor::new(machines.clone(), vec![], cfg) else {
        panic!("model/class count mismatch must be rejected");
    };
    assert!(matches!(err, FleetError::BadFleet { .. }), "{err}");

    let advisor = FleetAdvisor::new(machines.clone(), model_refs, cfg).unwrap();

    // Request over a different fleet than the advisor is bound to.
    let other = vec![MachineSpec::paper_testbed(), MachineSpec::paper_testbed()];
    let weights = [1.0];
    let problem = FleetProblem::new(other, vms(&db, 1, &weights)).unwrap();
    let err = advisor.place(&problem).unwrap_err();
    assert!(matches!(err, FleetError::BadFleet { .. }), "{err}");

    // More VMs than the fleet can host (cap = 4 per machine at 4 units).
    let many: Vec<f64> = vec![1.0; 9];
    let problem = FleetProblem::new(machines.clone(), vms(&db, 9, &many)).unwrap();
    let err = advisor.place(&problem).unwrap_err();
    assert!(matches!(err, FleetError::Infeasible { .. }), "{err}");

    // Deployed units outside the advisor's discretization.
    let problem = FleetProblem::new(machines.clone(), vms(&db, 2, &[1.0, 1.0]))
        .unwrap()
        .with_current(CurrentPlacement {
            machine_of: vec![0, 1],
            units_of: vec![(99, 2), (2, 2)],
        })
        .unwrap();
    let err = advisor.place(&problem).unwrap_err();
    assert!(matches!(err, FleetError::BadFleet { .. }), "{err}");
}
