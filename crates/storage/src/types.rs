//! The value model: datums, data types, schemas.

use std::cmp::Ordering;
use std::fmt;

/// The SQL-ish data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Date as days since 1970-01-01.
    Date,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Date => "DATE",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A single value. `Null` is typeless, as in SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float (never NaN by construction in this engine).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Date as days since the Unix epoch.
    Date(i32),
    /// Boolean.
    Bool(bool),
}

impl Datum {
    /// Creates a string datum.
    pub fn str(s: impl Into<String>) -> Datum {
        Datum::Str(s.into())
    }

    /// The datum's type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Int(_) => Some(DataType::Int),
            Datum::Float(_) => Some(DataType::Float),
            Datum::Str(_) => Some(DataType::Str),
            Datum::Date(_) => Some(DataType::Date),
            Datum::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if the datum is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float value; integers widen to float (SQL numeric coercion).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(v) => Some(*v),
            Datum::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The date value (days since epoch), if this is a `Date`.
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Datum::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison. NULL compares as unknown (`None`); numeric types
    /// compare cross-type by value; other cross-type comparisons are
    /// `None`.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Date(a), Datum::Date(b)) => Some(a.cmp(b)),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            (Datum::Str(a), Datum::Str(b)) => Some(a.as_str().cmp(b.as_str())),
            (a, b) => {
                let (x, y) = (a.as_float()?, b.as_float()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// Total order used for sorting and B+tree keys: NULLs sort first, then
    /// within-type value order; across incomparable types, a stable
    /// type-rank order. Never returns "unknown", unlike [`Datum::sql_cmp`].
    pub fn total_cmp(&self, other: &Datum) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Null => 0,
                Datum::Bool(_) => 1,
                Datum::Int(_) | Datum::Float(_) => 2,
                Datum::Date(_) => 3,
                Datum::Str(_) => 4,
            }
        }
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Float(a), Datum::Float(b)) => a.total_cmp(b),
            (Datum::Int(a), Datum::Float(b)) => (*a as f64).total_cmp(b),
            (Datum::Float(a), Datum::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => match rank(self).cmp(&rank(other)) {
                Ordering::Equal => self.sql_cmp(other).unwrap_or(Ordering::Equal),
                o => o,
            },
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "'{s}'"),
            Datum::Date(d) => write!(f, "date({d})"),
            Datum::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Field {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered list of fields describing a tuple layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    ///
    /// # Panics
    /// Panics if two fields share a name.
    pub fn new(fields: Vec<Field>) -> Schema {
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate column name {:?}",
                f.name
            );
        }
        Schema { fields }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Concatenation of two schemas (for join outputs). Duplicate names are
    /// disambiguated by suffixing the right side's clashes with `_r`.
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            let name = if fields.iter().any(|g| g.name == f.name) {
                format!("{}_r", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datum_accessors() {
        assert_eq!(Datum::Int(7).as_int(), Some(7));
        assert_eq!(Datum::Int(7).as_float(), Some(7.0));
        assert_eq!(Datum::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Datum::str("x").as_str(), Some("x"));
        assert_eq!(Datum::Date(10).as_date(), Some(10));
        assert_eq!(Datum::Bool(true).as_bool(), Some(true));
        assert!(Datum::Null.is_null());
        assert_eq!(Datum::Null.data_type(), None);
        assert_eq!(Datum::Int(1).data_type(), Some(DataType::Int));
    }

    #[test]
    fn sql_cmp_handles_nulls_and_cross_type_numerics() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Null), None);
        assert_eq!(
            Datum::Int(2).sql_cmp(&Datum::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Datum::Int(1).sql_cmp(&Datum::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Datum::str("abc").sql_cmp(&Datum::str("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(Datum::str("a").sql_cmp(&Datum::Int(1)), None);
    }

    #[test]
    fn total_cmp_is_total_and_sorts_nulls_first() {
        let mut v = [Datum::str("b"),
            Datum::Null,
            Datum::Int(3),
            Datum::Float(1.5),
            Datum::Bool(false),
            Datum::Date(100)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Datum::Null);
        assert_eq!(v[1], Datum::Bool(false));
        assert_eq!(v[2], Datum::Float(1.5));
        assert_eq!(v[3], Datum::Int(3));
        assert_eq!(v[4], Datum::Date(100));
        assert_eq!(v[5], Datum::str("b"));
    }

    #[test]
    fn schema_lookup_and_join() {
        let a = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
        ]);
        assert_eq!(a.index_of("name"), Some(1));
        assert_eq!(a.index_of("missing"), None);
        let b = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("qty", DataType::Int),
        ]);
        let j = a.join(&b);
        assert_eq!(j.len(), 4);
        assert_eq!(j.field(2).name, "id_r");
        assert_eq!(j.field(3).name, "qty");
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn schema_rejects_duplicates() {
        let _ = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("x", DataType::Str),
        ]);
    }
}
