//! Paged B+tree secondary indexes.
//!
//! Keys are [`Datum`]s (ties broken by [`TupleId`] so duplicates are fully
//! ordered); values are heap [`TupleId`]s. The node *structure* lives in
//! memory, but every node is assigned a page in a dedicated index file, and
//! metered traversals record node visits through the buffer pool
//! ([`BufferPool::touch`]) so that index I/O participates in cache-hit and
//! physical-read accounting exactly like heap I/O.

use crate::{AccessPattern, BufferPool, Datum, DiskManager, FileId, PageId, StorageError, TupleId};
use std::cmp::Ordering;
use std::ops::Bound;

/// Maximum entries per leaf / keys per internal node before splitting.
/// Roughly what 8 KiB pages hold for short keys.
const MAX_PER_NODE: usize = 128;
/// Bulk-load fill per node, leaving slack for later inserts.
const BULK_FILL: usize = 100;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// `keys[i]` is the minimum key of the subtree `children[i + 1]`.
        keys: Vec<(Datum, TupleId)>,
        children: Vec<usize>,
    },
    Leaf {
        entries: Vec<(Datum, TupleId)>,
        next: Option<usize>,
    },
}

/// One `(node index, subtree-minimum entry)` pair used while building
/// internal levels.
type LevelEntry = (usize, (Datum, TupleId));

/// Result of a recursive insert: `Some((separator entry, new right node))`
/// when the child split.
type InsertSplit = Option<((Datum, TupleId), usize)>;

/// A B+tree index over one column of a heap table.
#[derive(Debug)]
pub struct BPlusTree {
    file: FileId,
    nodes: Vec<Node>,
    root: usize,
    height: u32,
    len: usize,
}

fn cmp_entry(a: &(Datum, TupleId), b: &(Datum, TupleId)) -> Ordering {
    a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1))
}

impl BPlusTree {
    /// Builds an index by bulk-loading `entries` (sorted internally).
    pub fn bulk_load(
        disk: &mut DiskManager,
        mut entries: Vec<(Datum, TupleId)>,
    ) -> Result<BPlusTree, StorageError> {
        entries.sort_by(cmp_entry);
        let file = disk.create_file();
        let mut tree = BPlusTree {
            file,
            nodes: Vec::new(),
            root: 0,
            height: 1,
            len: entries.len(),
        };

        if entries.is_empty() {
            tree.root = tree.alloc(
                disk,
                Node::Leaf {
                    entries: Vec::new(),
                    next: None,
                },
            )?;
            return Ok(tree);
        }

        // Build the leaf level.
        let mut level: Vec<LevelEntry> = Vec::new();
        let mut chunks = entries.chunks(BULK_FILL).peekable();
        let mut prev_leaf: Option<usize> = None;
        while let Some(chunk) = chunks.next() {
            let min = chunk[0].clone();
            let idx = tree.alloc(
                disk,
                Node::Leaf {
                    entries: chunk.to_vec(),
                    next: None,
                },
            )?;
            if let Some(p) = prev_leaf {
                if let Node::Leaf { next, .. } = &mut tree.nodes[p] {
                    *next = Some(idx);
                }
            }
            prev_leaf = Some(idx);
            level.push((idx, min));
            let _ = chunks.peek();
        }

        // Build internal levels until one root remains.
        while level.len() > 1 {
            tree.height += 1;
            let mut next_level = Vec::new();
            for group in level.chunks(BULK_FILL) {
                let min = group[0].1.clone();
                let children: Vec<usize> = group.iter().map(|(idx, _)| *idx).collect();
                let keys: Vec<(Datum, TupleId)> =
                    group[1..].iter().map(|(_, k)| k.clone()).collect();
                let idx = tree.alloc(disk, Node::Internal { keys, children })?;
                next_level.push((idx, min));
            }
            level = next_level;
        }
        tree.root = level[0].0;
        Ok(tree)
    }

    fn alloc(&mut self, disk: &mut DiskManager, node: Node) -> Result<usize, StorageError> {
        let pid = disk.append_page(self.file)?;
        debug_assert_eq!(pid.page_no as usize, self.nodes.len());
        self.nodes.push(node);
        Ok(pid.page_no as usize)
    }

    /// The index file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of node pages.
    pub fn num_pages(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// The exact `(height, total node pages)` that [`BPlusTree::bulk_load`]
    /// produces for `len` entries, computed without building the tree.
    ///
    /// Mirrors `bulk_load`'s chunking arithmetic (`BULK_FILL` entries per
    /// leaf, `BULK_FILL` children per internal node, levels collapsed until
    /// a single root remains), so what-if pricing of a *hypothetical* index
    /// sees the same geometry a real build would.
    pub fn bulk_geometry(len: usize) -> (u32, u32) {
        if len == 0 {
            return (1, 1);
        }
        let mut level = (len + BULK_FILL - 1) / BULK_FILL;
        let mut pages = level;
        let mut height = 1u32;
        while level > 1 {
            level = (level + BULK_FILL - 1) / BULK_FILL;
            pages += level;
            height += 1;
        }
        (height, pages as u32)
    }

    fn page_id(&self, node: usize) -> PageId {
        PageId {
            file: self.file,
            page_no: node as u32,
        }
    }

    /// Inserts one entry.
    pub fn insert(
        &mut self,
        disk: &mut DiskManager,
        key: Datum,
        tid: TupleId,
    ) -> Result<(), StorageError> {
        let entry = (key, tid);
        if let Some((sep, right)) = self.insert_rec(disk, self.root, entry)? {
            let new_root = self.alloc(
                disk,
                Node::Internal {
                    keys: vec![sep],
                    children: vec![self.root, right],
                },
            )?;
            self.root = new_root;
            self.height += 1;
        }
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        &mut self,
        disk: &mut DiskManager,
        node: usize,
        entry: (Datum, TupleId),
    ) -> Result<InsertSplit, StorageError> {
        match &mut self.nodes[node] {
            Node::Leaf { entries, .. } => {
                let pos = entries.partition_point(|e| cmp_entry(e, &entry) == Ordering::Less);
                entries.insert(pos, entry);
                if entries.len() <= MAX_PER_NODE {
                    return Ok(None);
                }
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].clone();
                let (old_next, _) = match &self.nodes[node] {
                    Node::Leaf { next, entries } => (*next, entries.len()),
                    _ => unreachable!(),
                };
                let right = self.alloc(
                    disk,
                    Node::Leaf {
                        entries: right_entries,
                        next: old_next,
                    },
                )?;
                if let Node::Leaf { next, .. } = &mut self.nodes[node] {
                    *next = Some(right);
                }
                Ok(Some((sep, right)))
            }
            Node::Internal { keys, children } => {
                let child_pos = keys.partition_point(|k| cmp_entry(k, &entry) != Ordering::Greater);
                let child = children[child_pos];
                let split = self.insert_rec(disk, child, entry)?;
                let Some((sep, right)) = split else {
                    return Ok(None);
                };
                let Node::Internal { keys, children } = &mut self.nodes[node] else {
                    unreachable!()
                };
                keys.insert(child_pos, sep);
                children.insert(child_pos + 1, right);
                if keys.len() <= MAX_PER_NODE {
                    return Ok(None);
                }
                let mid = keys.len() / 2;
                let up = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // `up` moves to the parent.
                let right_children = children.split_off(mid + 1);
                let right = self.alloc(
                    disk,
                    Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                )?;
                Ok(Some((up, right)))
            }
        }
    }

    /// Descends to the leftmost leaf that may contain `lo`, recording the
    /// visited nodes in `visits`.
    fn descend(&self, lo: Bound<&Datum>, visits: &mut Vec<usize>) -> usize {
        let mut node = self.root;
        loop {
            visits.push(node);
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Internal { keys, children } => {
                    let pos = match lo {
                        Bound::Unbounded => 0,
                        Bound::Included(k) | Bound::Excluded(k) => {
                            // Descend left of any separator >= k so that
                            // duplicates spanning leaves are not skipped.
                            keys.partition_point(|(sk, _)| sk.total_cmp(k) == Ordering::Less)
                        }
                    };
                    node = children[pos];
                }
            }
        }
    }

    fn in_lo(&self, key: &Datum, lo: Bound<&Datum>) -> bool {
        match lo {
            Bound::Unbounded => true,
            Bound::Included(k) => key.total_cmp(k) != Ordering::Less,
            Bound::Excluded(k) => key.total_cmp(k) == Ordering::Greater,
        }
    }

    fn past_hi(&self, key: &Datum, hi: Bound<&Datum>) -> bool {
        match hi {
            Bound::Unbounded => false,
            Bound::Included(k) => key.total_cmp(k) == Ordering::Greater,
            Bound::Excluded(k) => key.total_cmp(k) != Ordering::Less,
        }
    }

    /// Range scan without I/O accounting (tests, statistics building).
    pub fn range(&self, lo: Bound<&Datum>, hi: Bound<&Datum>) -> Vec<(Datum, TupleId)> {
        let mut visits = Vec::new();
        self.scan(lo, hi, &mut visits)
    }

    /// Range scan that charges every visited node page to the buffer pool
    /// (descent and leaf-chain walk are random accesses, as in PostgreSQL's
    /// cost model for index pages).
    pub fn range_metered(
        &self,
        disk: &mut DiskManager,
        pool: &mut BufferPool,
        lo: Bound<&Datum>,
        hi: Bound<&Datum>,
    ) -> Result<Vec<(Datum, TupleId)>, StorageError> {
        let mut visits = Vec::new();
        let out = self.scan(lo, hi, &mut visits);
        for node in visits {
            pool.touch(disk, self.page_id(node), AccessPattern::Random)?;
        }
        Ok(out)
    }

    fn scan(
        &self,
        lo: Bound<&Datum>,
        hi: Bound<&Datum>,
        visits: &mut Vec<usize>,
    ) -> Vec<(Datum, TupleId)> {
        let mut out = Vec::new();
        let mut leaf = self.descend(lo, visits);
        loop {
            let Node::Leaf { entries, next } = &self.nodes[leaf] else {
                unreachable!("descend always reaches a leaf");
            };
            for (key, tid) in entries {
                if self.past_hi(key, hi) {
                    return out;
                }
                if self.in_lo(key, lo) {
                    out.push((key.clone(), *tid));
                }
            }
            match next {
                Some(n) => {
                    leaf = *n;
                    visits.push(leaf);
                }
                None => return out,
            }
        }
    }

    /// Equality lookup: all tuple ids whose key equals `key`.
    pub fn lookup_metered(
        &self,
        disk: &mut DiskManager,
        pool: &mut BufferPool,
        key: &Datum,
    ) -> Result<Vec<TupleId>, StorageError> {
        Ok(self
            .range_metered(disk, pool, Bound::Included(key), Bound::Included(key))?
            .into_iter()
            .map(|(_, tid)| tid)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(i: u32) -> TupleId {
        TupleId {
            page_no: i / 100,
            slot: (i % 100) as u16,
        }
    }

    fn build(n: u32) -> (DiskManager, BPlusTree) {
        let mut disk = DiskManager::new();
        let entries: Vec<(Datum, TupleId)> =
            (0..n).map(|i| (Datum::Int(i as i64), tid(i))).collect();
        let tree = BPlusTree::bulk_load(&mut disk, entries).unwrap();
        (disk, tree)
    }

    #[test]
    fn bulk_geometry_matches_bulk_load() {
        for n in [0usize, 1, 99, 100, 101, 250, 10_000, 10_001, 1_000_000] {
            let mut disk = DiskManager::new();
            let entries: Vec<(Datum, TupleId)> = (0..n.min(20_000))
                .map(|i| (Datum::Int(i as i64), tid(i as u32)))
                .collect();
            if n > 20_000 {
                // Too slow to build; only check the arithmetic is sane.
                let (h, p) = BPlusTree::bulk_geometry(n);
                assert!(h >= 3 && p as usize >= n / BULK_FILL);
                continue;
            }
            let tree = BPlusTree::bulk_load(&mut disk, entries).unwrap();
            let (h, p) = BPlusTree::bulk_geometry(n);
            assert_eq!((h, p), (tree.height(), tree.num_pages()), "n={n}");
        }
    }

    #[test]
    fn bulk_load_and_full_scan() {
        let (_, tree) = build(10_000);
        assert_eq!(tree.len(), 10_000);
        assert!(tree.height() >= 2);
        let all = tree.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 10_000);
        for (i, (k, _)) in all.iter().enumerate() {
            assert_eq!(k, &Datum::Int(i as i64));
        }
    }

    #[test]
    fn range_bounds() {
        let (_, tree) = build(1000);
        let r = tree.range(
            Bound::Included(&Datum::Int(100)),
            Bound::Excluded(&Datum::Int(110)),
        );
        let keys: Vec<i64> = r.iter().map(|(k, _)| k.as_int().unwrap()).collect();
        assert_eq!(keys, (100..110).collect::<Vec<_>>());
        let r = tree.range(Bound::Excluded(&Datum::Int(997)), Bound::Unbounded);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_tree() {
        let mut disk = DiskManager::new();
        let tree = BPlusTree::bulk_load(&mut disk, vec![]).unwrap();
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 1);
        assert!(tree.range(Bound::Unbounded, Bound::Unbounded).is_empty());
    }

    #[test]
    fn duplicates_are_all_returned() {
        let mut disk = DiskManager::new();
        let mut entries = Vec::new();
        for i in 0..500u32 {
            entries.push((Datum::Int((i % 10) as i64), tid(i)));
        }
        let tree = BPlusTree::bulk_load(&mut disk, entries).unwrap();
        let r = tree.range(
            Bound::Included(&Datum::Int(3)),
            Bound::Included(&Datum::Int(3)),
        );
        assert_eq!(r.len(), 50);
        assert!(r.iter().all(|(k, _)| k == &Datum::Int(3)));
    }

    #[test]
    fn incremental_inserts_match_bulk_load() {
        let mut disk = DiskManager::new();
        let mut tree = BPlusTree::bulk_load(&mut disk, vec![]).unwrap();
        // Insert in a scrambled order.
        let mut order: Vec<u32> = (0..2000).collect();
        let mut state = 12345u64;
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &i in &order {
            tree.insert(&mut disk, Datum::Int(i as i64), tid(i))
                .unwrap();
        }
        assert_eq!(tree.len(), 2000);
        let all = tree.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 2000);
        for (i, (k, t)) in all.iter().enumerate() {
            assert_eq!(k, &Datum::Int(i as i64));
            assert_eq!(t, &tid(i as u32));
        }
        assert!(tree.height() >= 2, "splits should have occurred");
    }

    #[test]
    fn metered_scan_charges_node_visits() {
        let (mut disk, tree) = build(10_000);
        let mut pool = BufferPool::new(256);
        let r = tree
            .range_metered(
                &mut disk,
                &mut pool,
                Bound::Included(&Datum::Int(0)),
                Bound::Included(&Datum::Int(999)),
            )
            .unwrap();
        assert_eq!(r.len(), 1000);
        let m = pool.metrics();
        // Descent (height) plus ~10 leaves.
        assert!(m.misses as u32 >= tree.height() + 9);
        assert!(pool.demand().random_page_reads > 0);
        // A repeat scan hits the cache.
        pool.reset_metrics();
        tree.range_metered(
            &mut disk,
            &mut pool,
            Bound::Included(&Datum::Int(0)),
            Bound::Included(&Datum::Int(999)),
        )
        .unwrap();
        assert_eq!(pool.metrics().misses, 0);
    }

    #[test]
    fn lookup_metered_finds_exact_matches() {
        let (mut disk, tree) = build(1000);
        let mut pool = BufferPool::new(64);
        let tids = tree
            .lookup_metered(&mut disk, &mut pool, &Datum::Int(42))
            .unwrap();
        assert_eq!(tids, vec![tid(42)]);
        let none = tree
            .lookup_metered(&mut disk, &mut pool, &Datum::Int(5000))
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn string_keys_sort_lexicographically() {
        let mut disk = DiskManager::new();
        let entries = vec![
            (Datum::str("banana"), tid(1)),
            (Datum::str("apple"), tid(0)),
            (Datum::str("cherry"), tid(2)),
        ];
        let tree = BPlusTree::bulk_load(&mut disk, entries).unwrap();
        let all = tree.range(Bound::Unbounded, Bound::Unbounded);
        let keys: Vec<&str> = all.iter().map(|(k, _)| k.as_str().unwrap()).collect();
        assert_eq!(keys, vec!["apple", "banana", "cherry"]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]
        #[test]
        fn prop_matches_sorted_model(keys in proptest::collection::vec(0i64..500, 0..400),
                                     lo in 0i64..500, span in 0i64..100) {
            let mut disk = DiskManager::new();
            let entries: Vec<(Datum, TupleId)> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| (Datum::Int(k), tid(i as u32)))
                .collect();
            let tree = BPlusTree::bulk_load(&mut disk, entries).unwrap();
            let hi = lo + span;
            let got: Vec<i64> = tree
                .range(Bound::Included(&Datum::Int(lo)), Bound::Excluded(&Datum::Int(hi)))
                .into_iter()
                .map(|(k, _)| k.as_int().unwrap())
                .collect();
            let mut expect: Vec<i64> = keys.iter().copied().filter(|k| (lo..hi).contains(k)).collect();
            expect.sort_unstable();
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
