//! Order-preserving (memcomparable) encoding of composite index keys.
//!
//! Multi-column B+tree indexes store their keys as a single
//! [`Datum::Str`] whose *byte-wise* order equals the column-wise
//! `(total_cmp, total_cmp, ...)` order of the original tuples. Encoding a
//! key prefix therefore yields a contiguous key range: every composite
//! key starting with that prefix sorts inside
//! `[encode(prefix), encode(prefix) ++ 0xFF)`, which is what lets the
//! planner turn `a = x AND b BETWEEN lo AND hi` into one index range.
//!
//! Each raw byte `b` of the encoding is mapped to the Unicode code point
//! `U+00b` before storage. UTF-8 preserves code-point order, and Rust's
//! `String` ordering is byte-wise over UTF-8, so the stored strings
//! compare exactly like the raw byte sequences while remaining valid
//! UTF-8 (a [`Datum::Str`] requirement).
//!
//! Per-column layout (a tag byte keeps NULLs first and types apart):
//!
//! | value        | bytes                                         |
//! |--------------|-----------------------------------------------|
//! | NULL         | `0x00`                                        |
//! | Bool(b)      | `0x01`, `b`                                   |
//! | Int(i)       | `0x02`, 8 bytes BE of `i ^ i64::MIN`          |
//! | Float(f)     | `0x03`, 8 bytes BE of order-normalized bits   |
//! | Date(d)      | `0x04`, 4 bytes BE of `d ^ i32::MIN`          |
//! | Str(s)       | `0x05`, bytes with `00 → 00 FF`, then `00 00` |
//!
//! Fixed-width payloads need no terminator; the string escape/terminator
//! guarantees no full column encoding is a strict byte-prefix of
//! another, so the sentinel byte `0xFF` appended at a *column boundary*
//! sorts above every continuation (all tags are `< 0xFF`).

use crate::Datum;

/// The byte appended at a column boundary to form an exclusive upper
/// bound covering every continuation of a key prefix.
pub const KEY_SENTINEL: u8 = 0xFF;

fn push_bytes(out: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::Null => out.push(0x00),
        Datum::Bool(b) => {
            out.push(0x01);
            out.push(*b as u8);
        }
        Datum::Int(i) => {
            out.push(0x02);
            out.extend_from_slice(&((*i ^ i64::MIN) as u64).to_be_bytes());
        }
        Datum::Float(f) => {
            out.push(0x03);
            // Standard order-preserving float bits: flip everything for
            // negatives, flip only the sign bit for non-negatives.
            let bits = f.to_bits();
            let norm = if bits & (1 << 63) != 0 {
                !bits
            } else {
                bits ^ (1 << 63)
            };
            out.extend_from_slice(&norm.to_be_bytes());
        }
        Datum::Date(d) => {
            out.push(0x04);
            out.extend_from_slice(&((*d ^ i32::MIN) as u32).to_be_bytes());
        }
        Datum::Str(s) => {
            out.push(0x05);
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
    }
}

/// Maps raw bytes to the order-preserving UTF-8 carrier string.
fn carrier(bytes: &[u8]) -> String {
    bytes.iter().map(|&b| b as char).collect()
}

/// Encodes a full composite key (or key prefix) into its carrier datum.
pub fn encode_key(values: &[Datum]) -> Datum {
    let mut bytes = Vec::with_capacity(values.len() * 10);
    for v in values {
        push_bytes(&mut bytes, v);
    }
    Datum::Str(carrier(&bytes))
}

/// Encodes a key prefix and appends the column-boundary sentinel: the
/// result is an *exclusive* upper bound for every key extending the
/// prefix (and an *inclusive* lower bound for everything strictly above
/// the prefix's key range).
pub fn encode_prefix_upper(values: &[Datum]) -> Datum {
    let mut bytes = Vec::with_capacity(values.len() * 10 + 1);
    for v in values {
        push_bytes(&mut bytes, v);
    }
    bytes.push(KEY_SENTINEL);
    Datum::Str(carrier(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn enc_str(values: &[Datum]) -> String {
        match encode_key(values) {
            Datum::Str(s) => s,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_column_order_matches_total_cmp() {
        let values = vec![
            Datum::Null,
            Datum::Bool(false),
            Datum::Bool(true),
            Datum::Int(i64::MIN),
            Datum::Int(-5),
            Datum::Int(0),
            Datum::Int(7),
            Datum::Int(i64::MAX),
            Datum::Date(i32::MIN),
            Datum::Date(-1),
            Datum::Date(20000),
            Datum::str(""),
            Datum::str("a"),
            Datum::str("a\u{0}b"),
            Datum::str("ab"),
            Datum::str("b"),
        ];
        for a in &values {
            for b in &values {
                let raw = a.total_cmp(b);
                // Cross-type ranks differ between the tag bytes and
                // total_cmp only for Int-vs-Float mixes, which this
                // fixture avoids; within each comparable group the
                // encoded order must match exactly.
                if a.data_type() == b.data_type() || a.is_null() || b.is_null() {
                    let enc = enc_str(std::slice::from_ref(a))
                        .cmp(&enc_str(std::slice::from_ref(b)));
                    assert_eq!(enc, raw, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn float_order_covers_signs() {
        let floats = [-1e300, -2.5, -0.0, 0.0, 1e-9, 2.5, 1e300];
        for w in floats.windows(2) {
            let a = enc_str(&[Datum::Float(w[0])]);
            let b = enc_str(&[Datum::Float(w[1])]);
            assert_ne!(w[0].total_cmp(&w[1]), Ordering::Greater);
            assert!(a <= b, "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn composite_order_is_lexicographic() {
        let a = enc_str(&[Datum::Int(1), Datum::str("z")]);
        let b = enc_str(&[Datum::Int(2), Datum::str("a")]);
        assert!(a < b, "first column dominates");
        let c = enc_str(&[Datum::Int(2), Datum::str("b")]);
        assert!(b < c, "second column breaks ties");
    }

    #[test]
    fn prefix_upper_bound_covers_all_continuations() {
        let prefix = [Datum::Int(42)];
        let lo = enc_str(&prefix);
        let hi = match encode_prefix_upper(&prefix) {
            Datum::Str(s) => s,
            _ => unreachable!(),
        };
        for second in [
            Datum::Null,
            Datum::Int(i64::MIN),
            Datum::Int(i64::MAX),
            Datum::str(""),
            Datum::str("zzzz"),
            Datum::Float(1e308),
        ] {
            let key = enc_str(&[Datum::Int(42), second.clone()]);
            assert!(lo <= key && key < hi, "{second:?} escaped the prefix range");
        }
        // Neighboring first-column values fall outside.
        assert!(enc_str(&[Datum::Int(41), Datum::str("zz")]) < lo);
        assert!(enc_str(&[Datum::Int(43), Datum::Null]) >= hi);
    }

    #[test]
    fn string_prefixes_do_not_alias() {
        // "ab" < "ab\0" < "abc" and none is a byte-prefix of another
        // once encoded (the terminator sees to it).
        let a = enc_str(&[Datum::str("ab")]);
        let b = enc_str(&[Datum::str("ab\u{0}")]);
        let c = enc_str(&[Datum::str("abc")]);
        assert!(a < b && b < c);
        assert!(!b.starts_with(&a) || a == b);
    }
}
