//! Storage-layer error type.

use std::error::Error;
use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// A tuple was too large to fit in one page.
    TupleTooLarge {
        /// Serialized tuple size in bytes.
        size: usize,
    },
    /// A page's bytes failed to decode.
    CorruptPage {
        /// Description of the corruption.
        reason: String,
    },
    /// A tuple's bytes failed to decode.
    CorruptTuple {
        /// Description of the corruption.
        reason: String,
    },
    /// A referenced page does not exist.
    PageNotFound {
        /// File id.
        file: u32,
        /// Page number within the file.
        page: u32,
    },
    /// A referenced tuple slot does not exist.
    TupleNotFound {
        /// File id.
        file: u32,
        /// Page number.
        page: u32,
        /// Slot index.
        slot: u16,
    },
    /// A referenced file does not exist.
    FileNotFound {
        /// File id.
        file: u32,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TupleTooLarge { size } => {
                write!(f, "tuple of {size} bytes does not fit in a page")
            }
            StorageError::CorruptPage { reason } => write!(f, "corrupt page: {reason}"),
            StorageError::CorruptTuple { reason } => write!(f, "corrupt tuple: {reason}"),
            StorageError::PageNotFound { file, page } => {
                write!(f, "page {page} of file {file} not found")
            }
            StorageError::TupleNotFound { file, page, slot } => {
                write!(f, "tuple (file {file}, page {page}, slot {slot}) not found")
            }
            StorageError::FileNotFound { file } => write!(f, "file {file} not found"),
        }
    }
}

impl Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_identifiers() {
        let e = StorageError::PageNotFound { file: 3, page: 42 };
        assert!(e.to_string().contains("42"));
        let e = StorageError::TupleTooLarge { size: 9000 };
        assert!(e.to_string().contains("9000"));
    }
}
