//! `ANALYZE`-style table and column statistics.
//!
//! The optimizer's cardinality model (in `dbvirt-optimizer`) is driven by
//! these statistics, mirroring PostgreSQL's `pg_statistic`: row and page
//! counts, per-column null fraction, distinct-value counts, min/max, and an
//! equi-depth histogram. The paper's what-if mode leaves statistics
//! untouched while varying the environment parameters `P`; keeping them in
//! the storage layer (where the data lives) makes that separation explicit.

use crate::{Datum, Tuple};
use std::collections::HashSet;

/// Number of equi-depth histogram buckets collected by [`analyze`].
pub const HISTOGRAM_BUCKETS: usize = 50;

/// An equi-depth histogram: `bounds` has `buckets + 1` entries; each bucket
/// holds the same number of sampled values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<Datum>,
}

/// Maps an orderable datum onto the real line for within-bucket
/// interpolation. Strings interpolate by their first bytes, base-256.
fn datum_position(d: &Datum) -> Option<f64> {
    match d {
        Datum::Int(v) => Some(*v as f64),
        Datum::Float(v) => Some(*v),
        Datum::Date(v) => Some(*v as f64),
        Datum::Bool(b) => Some(*b as u8 as f64),
        Datum::Str(s) => {
            let mut x = 0.0;
            for (i, b) in s.bytes().take(8).enumerate() {
                x += b as f64 / 256f64.powi(i as i32 + 1);
            }
            Some(x)
        }
        Datum::Null => None,
    }
}

impl Histogram {
    /// Builds an equi-depth histogram from non-null values (sorted
    /// internally). Returns `None` when there are no values.
    pub fn build(mut values: Vec<Datum>, buckets: usize) -> Option<Histogram> {
        if values.is_empty() || buckets == 0 {
            return None;
        }
        values.sort_by(|a, b| a.total_cmp(b));
        let n = values.len();
        let buckets = buckets.min(n.max(1));
        let mut bounds = Vec::with_capacity(buckets + 1);
        for b in 0..=buckets {
            let idx = (b * (n - 1)) / buckets;
            bounds.push(values[idx].clone());
        }
        Some(Histogram { bounds })
    }

    /// The bucket boundary values (length = buckets + 1).
    pub fn bounds(&self) -> &[Datum] {
        &self.bounds
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Estimated fraction of values strictly below `v`, in `[0, 1]`,
    /// with linear interpolation inside the containing bucket.
    pub fn fraction_below(&self, v: &Datum) -> f64 {
        let nb = self.num_buckets();
        if nb == 0 {
            return 0.5;
        }
        if v.total_cmp(&self.bounds[0]).is_le() {
            return 0.0;
        }
        if v.total_cmp(&self.bounds[nb]).is_gt() {
            return 1.0;
        }
        // Find the bucket whose [lo, hi) range contains v.
        let mut frac = 0.0;
        for b in 0..nb {
            let lo = &self.bounds[b];
            let hi = &self.bounds[b + 1];
            if v.total_cmp(hi).is_gt() {
                frac += 1.0;
                continue;
            }
            // v is in (lo, hi]: interpolate. Degenerate buckets (equal
            // bounds, NULLs, NaN floats) fall back to the bucket middle so
            // the estimate stays finite.
            let within = match (datum_position(lo), datum_position(hi), datum_position(v)) {
                (Some(l), Some(h), Some(x)) if h > l => {
                    let t = (x - l) / (h - l);
                    if t.is_finite() {
                        t.clamp(0.0, 1.0)
                    } else {
                        0.5
                    }
                }
                _ => 0.5,
            };
            frac += within;
            break;
        }
        (frac / nb as f64).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of `lo <= x <= hi` style ranges; `None` bounds
    /// are unbounded.
    pub fn range_selectivity(&self, lo: Option<&Datum>, hi: Option<&Datum>) -> f64 {
        let below_hi = hi.map_or(1.0, |h| self.fraction_below(h));
        let below_lo = lo.map_or(0.0, |l| self.fraction_below(l));
        (below_hi - below_lo).clamp(0.0, 1.0)
    }
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Fraction of rows where the column is NULL.
    pub null_frac: f64,
    /// Number of distinct non-null values.
    pub n_distinct: u64,
    /// Minimum non-null value, if any.
    pub min: Option<Datum>,
    /// Maximum non-null value, if any.
    pub max: Option<Datum>,
    /// Equi-depth histogram over non-null values, if any.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Estimated selectivity of `col = v` using NDV (uniformity assumption,
    /// as PostgreSQL does without MCVs).
    pub fn eq_selectivity(&self) -> f64 {
        if self.n_distinct == 0 {
            0.0
        } else {
            ((1.0 - self.null_frac) / self.n_distinct as f64).clamp(0.0, 1.0)
        }
    }
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of rows.
    pub n_rows: u64,
    /// Number of heap pages.
    pub n_pages: u32,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Average rows per page (1 minimum to avoid division blowups).
    pub fn rows_per_page(&self) -> f64 {
        if self.n_pages == 0 {
            1.0
        } else {
            (self.n_rows as f64 / self.n_pages as f64).max(1.0)
        }
    }
}

/// Hashable projection of a datum for distinct counting.
fn distinct_key(d: &Datum) -> Option<String> {
    match d {
        Datum::Null => None,
        Datum::Int(v) => Some(format!("i{v}")),
        Datum::Float(v) => Some(format!("f{}", v.to_bits())),
        Datum::Str(s) => Some(format!("s{s}")),
        Datum::Date(v) => Some(format!("d{v}")),
        Datum::Bool(b) => Some(format!("b{b}")),
    }
}

/// Computes full statistics over a table's tuples (an `ANALYZE` pass).
///
/// `arity` is the number of columns; `n_pages` the heap's page count.
pub fn analyze<'a>(
    tuples: impl Iterator<Item = &'a Tuple>,
    arity: usize,
    n_pages: u32,
) -> TableStats {
    let mut n_rows = 0u64;
    let mut nulls = vec![0u64; arity];
    let mut distinct: Vec<HashSet<String>> = vec![HashSet::new(); arity];
    let mut mins: Vec<Option<Datum>> = vec![None; arity];
    let mut maxs: Vec<Option<Datum>> = vec![None; arity];
    let mut values: Vec<Vec<Datum>> = vec![Vec::new(); arity];

    for t in tuples {
        n_rows += 1;
        for (c, v) in t.values().iter().enumerate().take(arity) {
            if v.is_null() {
                nulls[c] += 1;
                continue;
            }
            if let Some(k) = distinct_key(v) {
                distinct[c].insert(k);
            }
            let lower = mins[c].as_ref().is_none_or(|m| v.total_cmp(m).is_lt());
            if lower {
                mins[c] = Some(v.clone());
            }
            let higher = maxs[c].as_ref().is_none_or(|m| v.total_cmp(m).is_gt());
            if higher {
                maxs[c] = Some(v.clone());
            }
            values[c].push(v.clone());
        }
    }

    let columns = (0..arity)
        .map(|c| ColumnStats {
            null_frac: if n_rows == 0 {
                0.0
            } else {
                nulls[c] as f64 / n_rows as f64
            },
            n_distinct: distinct[c].len() as u64,
            min: mins[c].clone(),
            max: maxs[c].clone(),
            histogram: Histogram::build(std::mem::take(&mut values[c]), HISTOGRAM_BUCKETS),
        })
        .collect();

    TableStats {
        n_rows,
        n_pages,
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_tuples(values: &[i64]) -> Vec<Tuple> {
        values
            .iter()
            .map(|&v| Tuple::new(vec![Datum::Int(v)]))
            .collect()
    }

    #[test]
    fn analyze_counts_rows_nulls_distinct_minmax() {
        let mut tuples = int_tuples(&[1, 2, 2, 3, 3, 3]);
        tuples.push(Tuple::new(vec![Datum::Null]));
        let stats = analyze(tuples.iter(), 1, 4);
        assert_eq!(stats.n_rows, 7);
        assert_eq!(stats.n_pages, 4);
        let c = &stats.columns[0];
        assert!((c.null_frac - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(c.n_distinct, 3);
        assert_eq!(c.min, Some(Datum::Int(1)));
        assert_eq!(c.max, Some(Datum::Int(3)));
        assert!((c.eq_selectivity() - (6.0 / 7.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn analyze_empty_table() {
        let stats = analyze(std::iter::empty(), 2, 0);
        assert_eq!(stats.n_rows, 0);
        assert_eq!(stats.columns.len(), 2);
        assert_eq!(stats.columns[0].n_distinct, 0);
        assert!(stats.columns[0].histogram.is_none());
        assert_eq!(stats.columns[0].eq_selectivity(), 0.0);
        assert_eq!(stats.rows_per_page(), 1.0);
    }

    #[test]
    fn histogram_uniform_data_interpolates_linearly() {
        let values: Vec<Datum> = (0..1000).map(Datum::Int).collect();
        let h = Histogram::build(values, 20).unwrap();
        assert_eq!(h.num_buckets(), 20);
        // fraction below the median should be ~0.5.
        let f = h.fraction_below(&Datum::Int(500));
        assert!((f - 0.5).abs() < 0.05, "got {f}");
        let f = h.fraction_below(&Datum::Int(250));
        assert!((f - 0.25).abs() < 0.05, "got {f}");
        assert_eq!(h.fraction_below(&Datum::Int(-5)), 0.0);
        assert_eq!(h.fraction_below(&Datum::Int(5000)), 1.0);
    }

    #[test]
    fn histogram_range_selectivity() {
        let values: Vec<Datum> = (0..1000).map(Datum::Int).collect();
        let h = Histogram::build(values, 20).unwrap();
        let s = h.range_selectivity(Some(&Datum::Int(100)), Some(&Datum::Int(300)));
        assert!((s - 0.2).abs() < 0.05, "got {s}");
        assert!((h.range_selectivity(None, None) - 1.0).abs() < 1e-12);
        // Degenerate inverted ranges clamp at zero.
        let s = h.range_selectivity(Some(&Datum::Int(300)), Some(&Datum::Int(100)));
        assert_eq!(s, 0.0);
    }

    #[test]
    fn histogram_skewed_data_reflects_skew() {
        // 90% of values are 0, the rest spread 1..=100.
        let mut values: Vec<Datum> = vec![Datum::Int(0); 900];
        values.extend((1..=100).map(Datum::Int));
        let h = Histogram::build(values, 10).unwrap();
        let below_one = h.fraction_below(&Datum::Int(1));
        assert!(below_one > 0.8, "skew not captured: {below_one}");
    }

    #[test]
    fn histogram_string_ordering() {
        let values = vec![
            Datum::str("apple"),
            Datum::str("banana"),
            Datum::str("cherry"),
            Datum::str("date"),
        ];
        let h = Histogram::build(values, 4).unwrap();
        assert!(h.fraction_below(&Datum::str("az")) < h.fraction_below(&Datum::str("cz")));
    }

    #[test]
    fn histogram_single_value() {
        let h = Histogram::build(vec![Datum::Int(7); 100], 10).unwrap();
        assert_eq!(h.fraction_below(&Datum::Int(7)), 0.0);
        assert_eq!(h.fraction_below(&Datum::Int(8)), 1.0);
    }

    /// Every estimate a column's stats can produce, checked finite and in
    /// `[0, 1]` against a probe set bracketing the data.
    fn assert_bounded(stats: &TableStats, probes: &[Datum]) {
        for c in &stats.columns {
            let eq = c.eq_selectivity();
            assert!(eq.is_finite() && (0.0..=1.0).contains(&eq), "eq {eq}");
            assert!(
                c.null_frac.is_finite() && (0.0..=1.0).contains(&c.null_frac),
                "null_frac {}",
                c.null_frac
            );
            let Some(h) = &c.histogram else { continue };
            for p in probes {
                let f = h.fraction_below(p);
                assert!(f.is_finite() && (0.0..=1.0).contains(&f), "below {f}");
            }
            for lo in probes {
                for hi in probes {
                    let s = h.range_selectivity(Some(lo), Some(hi));
                    assert!(s.is_finite() && (0.0..=1.0).contains(&s), "range {s}");
                }
            }
        }
    }

    #[test]
    fn all_equal_column_estimates_stay_bounded() {
        // Every bucket bound is the same value: within-bucket interpolation
        // has zero width everywhere.
        let stats = analyze(int_tuples(&[42; 500]).iter(), 1, 3);
        assert_eq!(stats.columns[0].n_distinct, 1);
        assert_eq!(stats.columns[0].eq_selectivity(), 1.0);
        let probes = [Datum::Int(41), Datum::Int(42), Datum::Int(43)];
        assert_bounded(&stats, &probes);
    }

    #[test]
    fn single_row_table_estimates_stay_bounded() {
        let stats = analyze(int_tuples(&[7]).iter(), 1, 1);
        assert_eq!(stats.n_rows, 1);
        assert_eq!(stats.columns[0].n_distinct, 1);
        let h = stats.columns[0].histogram.as_ref().unwrap();
        assert_eq!(h.num_buckets(), 1);
        let probes = [Datum::Int(6), Datum::Int(7), Datum::Int(8)];
        assert_bounded(&stats, &probes);
        assert_eq!(stats.rows_per_page(), 1.0);
    }

    #[test]
    fn null_heavy_column_estimates_stay_bounded() {
        // 90% NULL: the non-null tail still gets a histogram, and the
        // equality estimate is scaled by the null fraction.
        let mut tuples: Vec<Tuple> = (0..900).map(|_| Tuple::new(vec![Datum::Null])).collect();
        tuples.extend((0..100).map(|i| Tuple::new(vec![Datum::Int(i)])));
        let stats = analyze(tuples.iter(), 1, 5);
        let c = &stats.columns[0];
        assert!((c.null_frac - 0.9).abs() < 1e-12);
        assert!((c.eq_selectivity() - 0.1 / 100.0).abs() < 1e-12);
        let probes = [Datum::Int(-1), Datum::Int(50), Datum::Int(200), Datum::Null];
        assert_bounded(&stats, &probes);

        // All-NULL column: no histogram, nothing ever matches an equality.
        let all_null: Vec<Tuple> = (0..10).map(|_| Tuple::new(vec![Datum::Null])).collect();
        let stats = analyze(all_null.iter(), 1, 1);
        assert_eq!(stats.columns[0].n_distinct, 0);
        assert_eq!(stats.columns[0].eq_selectivity(), 0.0);
        assert!(stats.columns[0].histogram.is_none());
        assert_eq!(stats.columns[0].null_frac, 1.0);
    }

    #[test]
    fn nan_floats_do_not_poison_fraction_below() {
        let mut values: Vec<Datum> = (0..100).map(|i| Datum::Float(i as f64)).collect();
        values.push(Datum::Float(f64::NAN));
        let h = Histogram::build(values, 10).unwrap();
        // NaN probes and NaN bucket bounds must still produce a finite,
        // bounded estimate (total_cmp sorts NaN above every number).
        for p in [
            Datum::Float(f64::NAN),
            Datum::Float(50.0),
            Datum::Float(f64::INFINITY),
            Datum::Float(f64::NEG_INFINITY),
        ] {
            let f = h.fraction_below(&p);
            assert!(f.is_finite() && (0.0..=1.0).contains(&f), "got {f} for {p:?}");
        }
    }

    #[test]
    fn float_distinct_counting_uses_bits() {
        let tuples = [Tuple::new(vec![Datum::Float(1.0)]),
            Tuple::new(vec![Datum::Float(1.0)]),
            Tuple::new(vec![Datum::Float(2.0)])];
        let stats = analyze(tuples.iter(), 1, 1);
        assert_eq!(stats.columns[0].n_distinct, 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// `fraction_below` is monotone in its argument and bounded.
        #[test]
        fn prop_fraction_below_monotone(
            values in prop::collection::vec(-1000i64..1000, 1..300),
            probes in prop::collection::vec(-1200i64..1200, 2..10),
        ) {
            let data: Vec<Datum> = values.iter().copied().map(Datum::Int).collect();
            let h = Histogram::build(data, 16).unwrap();
            let mut probes = probes;
            probes.sort_unstable();
            let fracs: Vec<f64> = probes
                .iter()
                .map(|&p| h.fraction_below(&Datum::Int(p)))
                .collect();
            for f in &fracs {
                prop_assert!((0.0..=1.0).contains(f));
            }
            for w in fracs.windows(2) {
                prop_assert!(w[0] <= w[1] + 1e-12, "not monotone: {fracs:?}");
            }
        }

        /// Analyze's min/max/ndv agree with a direct computation.
        #[test]
        fn prop_analyze_matches_direct(values in prop::collection::vec(-50i64..50, 1..200)) {
            let tuples: Vec<Tuple> = values
                .iter()
                .map(|&v| Tuple::new(vec![Datum::Int(v)]))
                .collect();
            let stats = analyze(tuples.iter(), 1, 1);
            let col = &stats.columns[0];
            let mut sorted = values.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(col.n_distinct, sorted.len() as u64);
            prop_assert_eq!(col.min.clone(), Some(Datum::Int(*values.iter().min().unwrap())));
            prop_assert_eq!(col.max.clone(), Some(Datum::Int(*values.iter().max().unwrap())));
            prop_assert_eq!(stats.n_rows, values.len() as u64);
        }
    }
}
