//! Clock-sweep buffer pool.
//!
//! The buffer pool is the junction between logical work and physical work:
//! every page access goes through [`BufferPool::fetch`] (or
//! [`BufferPool::touch`] for index nodes whose contents live elsewhere), and
//! every *miss* is charged to the pool's internal
//! [`ResourceDemand`] as a sequential or random physical read. The pool's
//! capacity is set from the virtual machine's memory share
//! ([`dbvirt_vmm::VirtualMachine::buffer_pool_pages`]), which is exactly how
//! the memory allocation knob influences query time in this reproduction.

use crate::{DiskManager, Page, PageId, StorageError};
use dbvirt_telemetry as telemetry;
use dbvirt_vmm::ResourceDemand;
use std::collections::HashMap;

// Process-wide telemetry counters aggregated across every pool instance
// (per-pool numbers stay in [`BufferPoolMetrics`]). All are no-ops until
// `dbvirt_telemetry::enable()`.
static TM_HITS: telemetry::Counter = telemetry::Counter::new("bufpool.hits");
static TM_MISSES: telemetry::Counter = telemetry::Counter::new("bufpool.misses");
static TM_EVICTIONS: telemetry::Counter = telemetry::Counter::new("bufpool.evictions");
static TM_WRITEBACKS: telemetry::Counter = telemetry::Counter::new("bufpool.writebacks");
static TM_PAGES_READ: telemetry::Counter = telemetry::Counter::new("storage.pages_read");

/// Whether an access is part of a sequential sweep or a random probe; on a
/// miss this decides which physical-read counter is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Part of a sequential scan (cheap on a spinning disk).
    Sequential,
    /// An isolated probe (seek-dominated).
    Random,
}

/// Hit/miss counters, useful in tests and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolMetrics {
    /// Accesses satisfied from the pool.
    pub hits: u64,
    /// Accesses that required a physical read.
    pub misses: u64,
    /// Victims evicted to make room.
    pub evictions: u64,
    /// Dirty victims written back.
    pub writebacks: u64,
}

impl BufferPoolMetrics {
    /// Hit fraction over all accesses (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Frame {
    pid: PageId,
    /// `Some` for heap pages (real bytes); `None` for accounting-only
    /// residents such as B+tree nodes whose structure lives in memory.
    data: Option<Page>,
    dirty: bool,
    ref_bit: bool,
}

/// A clock-sweep page cache with demand accounting.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    metrics: BufferPoolMetrics,
    demand: ResourceDemand,
}

impl BufferPool {
    /// Creates a pool with room for `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            metrics: BufferPoolMetrics::default(),
            demand: ResourceDemand::ZERO,
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Hit/miss counters since the last [`BufferPool::reset_metrics`].
    pub fn metrics(&self) -> BufferPoolMetrics {
        self.metrics
    }

    /// Clears the hit/miss counters.
    pub fn reset_metrics(&mut self) {
        self.metrics = BufferPoolMetrics::default();
    }

    /// The physical I/O accumulated so far.
    pub fn demand(&self) -> &ResourceDemand {
        &self.demand
    }

    /// Returns and resets the accumulated physical I/O.
    pub fn take_demand(&mut self) -> ResourceDemand {
        std::mem::take(&mut self.demand)
    }

    fn charge_read(&mut self, pattern: AccessPattern) {
        match pattern {
            AccessPattern::Sequential => self.demand.add_seq_reads(1),
            AccessPattern::Random => self.demand.add_random_reads(1),
        }
    }

    /// Finds a frame index for a new resident, evicting if necessary.
    fn allocate_frame(&mut self, disk: &mut DiskManager) -> Result<usize, StorageError> {
        if self.frames.len() < self.capacity {
            self.frames.push(Frame {
                pid: PageId {
                    file: crate::FileId(u32::MAX),
                    page_no: u32::MAX,
                },
                data: None,
                dirty: false,
                ref_bit: false,
            });
            return Ok(self.frames.len() - 1);
        }
        // Clock sweep: clear reference bits until an unreferenced victim is
        // found. Terminates within two passes since nothing is pinned.
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[idx].ref_bit {
                self.frames[idx].ref_bit = false;
                continue;
            }
            let victim = &mut self.frames[idx];
            if victim.dirty {
                if let Some(data) = victim.data.take() {
                    *disk.page_mut(victim.pid)? = data;
                }
                victim.dirty = false;
                self.demand.add_writes(1);
                self.metrics.writebacks += 1;
                TM_WRITEBACKS.add(1);
            }
            self.map.remove(&victim.pid);
            self.metrics.evictions += 1;
            TM_EVICTIONS.add(1);
            return Ok(idx);
        }
    }

    fn install(
        &mut self,
        disk: &mut DiskManager,
        pid: PageId,
        pattern: AccessPattern,
        with_data: bool,
    ) -> Result<usize, StorageError> {
        self.metrics.misses += 1;
        TM_MISSES.add(1);
        TM_PAGES_READ.add(1);
        self.charge_read(pattern);
        let data = if with_data {
            Some(disk.read_page(pid)?.clone())
        } else {
            // Validate existence for accounting-only pages too, unless the
            // caller manages a virtual file (index nodes): those use page
            // ids that exist in the disk manager as empty placeholder pages.
            None
        };
        let idx = self.allocate_frame(disk)?;
        self.frames[idx] = Frame {
            pid,
            data,
            dirty: false,
            ref_bit: true,
        };
        self.map.insert(pid, idx);
        Ok(idx)
    }

    /// Fetches a page for reading, charging a physical read on miss.
    pub fn fetch(
        &mut self,
        disk: &mut DiskManager,
        pid: PageId,
        pattern: AccessPattern,
    ) -> Result<&Page, StorageError> {
        let idx = match self.map.get(&pid) {
            Some(&idx) if self.frames[idx].data.is_some() => {
                self.metrics.hits += 1;
                TM_HITS.add(1);
                self.frames[idx].ref_bit = true;
                idx
            }
            Some(&idx) => {
                // Resident as accounting-only: upgrade to a data frame
                // without charging a second physical read.
                self.metrics.hits += 1;
                TM_HITS.add(1);
                self.frames[idx].data = Some(disk.read_page(pid)?.clone());
                self.frames[idx].ref_bit = true;
                idx
            }
            None => self.install(disk, pid, pattern, true)?,
        };
        Ok(self.frames[idx]
            .data
            .as_ref()
            .expect("data frame installed above"))
    }

    /// Fetches a page for writing, marking it dirty.
    pub fn fetch_mut(
        &mut self,
        disk: &mut DiskManager,
        pid: PageId,
        pattern: AccessPattern,
    ) -> Result<&mut Page, StorageError> {
        // Reuse the read path to install, then mark dirty.
        self.fetch(disk, pid, pattern)?;
        let idx = self.map[&pid];
        self.frames[idx].dirty = true;
        Ok(self.frames[idx]
            .data
            .as_mut()
            .expect("data frame installed above"))
    }

    /// Records an access to a page whose contents are managed elsewhere
    /// (B+tree nodes): full hit/miss/eviction accounting, no byte storage.
    pub fn touch(
        &mut self,
        disk: &mut DiskManager,
        pid: PageId,
        pattern: AccessPattern,
    ) -> Result<(), StorageError> {
        match self.map.get(&pid) {
            Some(&idx) => {
                self.metrics.hits += 1;
                TM_HITS.add(1);
                self.frames[idx].ref_bit = true;
            }
            None => {
                self.install(disk, pid, pattern, false)?;
            }
        }
        Ok(())
    }

    /// Writes every dirty page back to disk, charging the writes.
    pub fn flush_all(&mut self, disk: &mut DiskManager) -> Result<(), StorageError> {
        for frame in &mut self.frames {
            if frame.dirty {
                if let Some(data) = &frame.data {
                    *disk.page_mut(frame.pid)? = data.clone();
                }
                frame.dirty = false;
                self.demand.add_writes(1);
                self.metrics.writebacks += 1;
                TM_WRITEBACKS.add(1);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Datum, HeapFile, Tuple};

    fn loaded_heap(rows: i64) -> (DiskManager, HeapFile) {
        let mut disk = DiskManager::new();
        let heap = HeapFile::create(&mut disk);
        for i in 0..rows {
            heap.insert(
                &mut disk,
                &Tuple::new(vec![Datum::Int(i), Datum::str("padding padding padding")]),
            )
            .unwrap();
        }
        (disk, heap)
    }

    #[test]
    fn repeated_access_hits() {
        let (mut disk, heap) = loaded_heap(100);
        let mut pool = BufferPool::new(4);
        let pid = PageId {
            file: heap.file_id(),
            page_no: 0,
        };
        pool.fetch(&mut disk, pid, AccessPattern::Sequential)
            .unwrap();
        pool.fetch(&mut disk, pid, AccessPattern::Sequential)
            .unwrap();
        pool.fetch(&mut disk, pid, AccessPattern::Random).unwrap();
        let m = pool.metrics();
        assert_eq!(m.misses, 1);
        assert_eq!(m.hits, 2);
        assert_eq!(pool.demand().seq_page_reads, 1);
        assert_eq!(pool.demand().random_page_reads, 0);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let (mut disk, heap) = loaded_heap(5000);
        let n_pages = heap.num_pages(&disk);
        assert!(n_pages > 8);
        let mut pool = BufferPool::new(8);
        for page_no in 0..n_pages {
            let pid = PageId {
                file: heap.file_id(),
                page_no,
            };
            pool.fetch(&mut disk, pid, AccessPattern::Sequential)
                .unwrap();
            assert!(pool.resident() <= 8);
        }
        assert_eq!(pool.metrics().misses as u32, n_pages);
        assert_eq!(pool.metrics().evictions as u32, n_pages - 8);
    }

    #[test]
    fn small_table_fits_and_rescans_are_free() {
        let (mut disk, heap) = loaded_heap(1000);
        let n_pages = heap.num_pages(&disk);
        let mut pool = BufferPool::new(n_pages as usize + 1);
        for _round in 0..3 {
            for page_no in 0..n_pages {
                let pid = PageId {
                    file: heap.file_id(),
                    page_no,
                };
                pool.fetch(&mut disk, pid, AccessPattern::Sequential)
                    .unwrap();
            }
        }
        let m = pool.metrics();
        assert_eq!(m.misses as u32, n_pages, "only the first scan misses");
        assert_eq!(m.hits as u32, 2 * n_pages);
        assert!((m.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (mut disk, heap) = loaded_heap(5000);
        let n_pages = heap.num_pages(&disk);
        let mut pool = BufferPool::new(2);
        // Dirty page 0, then sweep enough pages to evict it.
        let pid0 = PageId {
            file: heap.file_id(),
            page_no: 0,
        };
        pool.fetch_mut(&mut disk, pid0, AccessPattern::Random)
            .unwrap()
            .insert(b"extra-record")
            .unwrap();
        for page_no in 1..n_pages.min(6) {
            let pid = PageId {
                file: heap.file_id(),
                page_no,
            };
            pool.fetch(&mut disk, pid, AccessPattern::Sequential)
                .unwrap();
        }
        assert!(pool.metrics().writebacks >= 1);
        assert!(pool.demand().page_writes >= 1);
        // The write-back is durable: re-reading from disk shows the record.
        let slot_count = disk.read_page(pid0).unwrap().slot_count();
        let fresh = Page::new();
        assert!(slot_count > fresh.slot_count());
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let (mut disk, heap) = loaded_heap(100);
        let mut pool = BufferPool::new(8);
        let pid = PageId {
            file: heap.file_id(),
            page_no: 0,
        };
        let before = disk.read_page(pid).unwrap().slot_count();
        pool.fetch_mut(&mut disk, pid, AccessPattern::Random)
            .unwrap()
            .insert(b"r")
            .unwrap();
        assert_eq!(disk.read_page(pid).unwrap().slot_count(), before);
        pool.flush_all(&mut disk).unwrap();
        assert_eq!(disk.read_page(pid).unwrap().slot_count(), before + 1);
    }

    #[test]
    fn touch_accounts_without_bytes() {
        let (mut disk, heap) = loaded_heap(100);
        let mut pool = BufferPool::new(4);
        let pid = PageId {
            file: heap.file_id(),
            page_no: 0,
        };
        pool.touch(&mut disk, pid, AccessPattern::Random).unwrap();
        pool.touch(&mut disk, pid, AccessPattern::Random).unwrap();
        assert_eq!(pool.metrics().misses, 1);
        assert_eq!(pool.metrics().hits, 1);
        assert_eq!(pool.demand().random_page_reads, 1);
        // Upgrading a touched page to a data fetch does not double-charge.
        pool.fetch(&mut disk, pid, AccessPattern::Random).unwrap();
        assert_eq!(pool.demand().random_page_reads, 1);
    }

    #[test]
    fn take_demand_resets() {
        let (mut disk, heap) = loaded_heap(100);
        let mut pool = BufferPool::new(4);
        let pid = PageId {
            file: heap.file_id(),
            page_no: 0,
        };
        pool.fetch(&mut disk, pid, AccessPattern::Sequential)
            .unwrap();
        let d = pool.take_demand();
        assert_eq!(d.seq_page_reads, 1);
        assert!(pool.demand().is_zero());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_is_rejected() {
        let _ = BufferPool::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{Datum, HeapFile, Tuple};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Under any access sequence: residency never exceeds capacity,
        /// hits + misses equals accesses, and fetched data always matches
        /// the disk image.
        #[test]
        fn prop_pool_invariants(
            capacity in 1usize..24,
            accesses in prop::collection::vec((0u32..40, prop::bool::ANY), 1..200),
        ) {
            let mut disk = DiskManager::new();
            let heap = HeapFile::create(&mut disk);
            for i in 0..4000i64 {
                heap.insert(
                    &mut disk,
                    &Tuple::new(vec![Datum::Int(i), Datum::str("pad pad pad pad")]),
                )
                .unwrap();
            }
            let n_pages = heap.num_pages(&disk);
            let mut pool = BufferPool::new(capacity);
            for (page, random) in accesses.iter() {
                let page_no = page % n_pages;
                let pid = PageId {
                    file: heap.file_id(),
                    page_no,
                };
                let pattern = if *random {
                    AccessPattern::Random
                } else {
                    AccessPattern::Sequential
                };
                let via_pool = pool.fetch(&mut disk, pid, pattern).unwrap().clone();
                prop_assert!(pool.resident() <= capacity);
                let direct = disk.read_page(pid).unwrap();
                prop_assert!(&via_pool == direct, "cached page diverged from disk");
            }
            let m = pool.metrics();
            prop_assert_eq!(m.hits + m.misses, accesses.len() as u64);
            prop_assert_eq!(
                m.misses,
                pool.demand().seq_page_reads + pool.demand().random_page_reads
            );
        }
    }
}
