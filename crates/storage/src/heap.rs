//! Heap files and the disk manager.
//!
//! The [`DiskManager`] holds the persistent image of every file as a vector
//! of [`Page`]s. Bulk loading writes pages directly (loading is an offline
//! step the experiments do not meter); query-time access goes through the
//! [`crate::BufferPool`], which is where physical reads are charged.

use crate::{BufferPool, Page, StorageError, Tuple};
use std::fmt;

/// Identifier of a file (heap table or index) within a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// Identifier of one page on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId {
    /// The containing file.
    pub file: FileId,
    /// Page number within the file.
    pub page_no: u32,
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.page_no)
    }
}

/// Identifier of a tuple within a heap file (the file is implied by the
/// table that owns the id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Page number within the heap file.
    pub page_no: u32,
    /// Slot within the page.
    pub slot: u16,
}

/// The persistent store: every file's pages.
#[derive(Debug, Default)]
pub struct DiskManager {
    files: Vec<Vec<Page>>,
}

impl DiskManager {
    /// Creates an empty disk.
    pub fn new() -> DiskManager {
        DiskManager::default()
    }

    /// Allocates a new, empty file.
    pub fn create_file(&mut self) -> FileId {
        self.files.push(Vec::new());
        FileId(self.files.len() as u32 - 1)
    }

    /// Number of pages in `file`.
    pub fn file_pages(&self, file: FileId) -> Result<u32, StorageError> {
        self.files
            .get(file.0 as usize)
            .map(|f| f.len() as u32)
            .ok_or(StorageError::FileNotFound { file: file.0 })
    }

    /// Appends an empty page to `file`, returning its id.
    pub fn append_page(&mut self, file: FileId) -> Result<PageId, StorageError> {
        let f = self
            .files
            .get_mut(file.0 as usize)
            .ok_or(StorageError::FileNotFound { file: file.0 })?;
        f.push(Page::new());
        Ok(PageId {
            file,
            page_no: f.len() as u32 - 1,
        })
    }

    /// Reads a page's persistent image.
    pub fn read_page(&self, pid: PageId) -> Result<&Page, StorageError> {
        self.files
            .get(pid.file.0 as usize)
            .and_then(|f| f.get(pid.page_no as usize))
            .ok_or(StorageError::PageNotFound {
                file: pid.file.0,
                page: pid.page_no,
            })
    }

    /// Mutable access to a page's persistent image (bulk-load path and
    /// buffer-pool write-back only).
    pub fn page_mut(&mut self, pid: PageId) -> Result<&mut Page, StorageError> {
        self.files
            .get_mut(pid.file.0 as usize)
            .and_then(|f| f.get_mut(pid.page_no as usize))
            .ok_or(StorageError::PageNotFound {
                file: pid.file.0,
                page: pid.page_no,
            })
    }

    /// Total pages across all files.
    pub fn total_pages(&self) -> usize {
        self.files.iter().map(Vec::len).sum()
    }
}

/// An append-only heap table over a file of slotted pages.
#[derive(Debug, Clone, Copy)]
pub struct HeapFile {
    file: FileId,
}

impl HeapFile {
    /// Creates a heap file backed by a fresh disk file.
    pub fn create(disk: &mut DiskManager) -> HeapFile {
        HeapFile {
            file: disk.create_file(),
        }
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Number of pages in the heap.
    pub fn num_pages(&self, disk: &DiskManager) -> u32 {
        disk.file_pages(self.file).unwrap_or(0)
    }

    /// Bulk-load insert: appends `tuple`, returning its id. Writes go
    /// straight to the persistent image — loading is an unmetered, offline
    /// step in the experiments, exactly like building the TPC-H database
    /// before the paper's measurements start.
    pub fn insert(&self, disk: &mut DiskManager, tuple: &Tuple) -> Result<TupleId, StorageError> {
        let bytes = tuple.encode();
        let n_pages = disk.file_pages(self.file)?;
        if n_pages > 0 {
            let pid = PageId {
                file: self.file,
                page_no: n_pages - 1,
            };
            if let Some(slot) = disk.page_mut(pid)?.insert(&bytes)? {
                return Ok(TupleId {
                    page_no: pid.page_no,
                    slot,
                });
            }
        }
        let pid = disk.append_page(self.file)?;
        let slot = disk
            .page_mut(pid)?
            .insert(&bytes)?
            .expect("fresh page rejected a record that fits in a page");
        Ok(TupleId {
            page_no: pid.page_no,
            slot,
        })
    }

    /// Reads all tuples of one heap page through the buffer pool, charging
    /// the access to `pool`'s demand tracker.
    pub fn read_page_tuples(
        &self,
        disk: &mut DiskManager,
        pool: &mut BufferPool,
        page_no: u32,
        pattern: crate::AccessPattern,
    ) -> Result<Vec<Tuple>, StorageError> {
        let pid = PageId {
            file: self.file,
            page_no,
        };
        let page = pool.fetch(disk, pid, pattern)?;
        page.records()
            .map(|(_, bytes)| Tuple::decode(bytes))
            .collect()
    }

    /// Fetches one tuple by id through the buffer pool (random access, as in
    /// an index-scan heap lookup).
    pub fn fetch(
        &self,
        disk: &mut DiskManager,
        pool: &mut BufferPool,
        tid: TupleId,
    ) -> Result<Tuple, StorageError> {
        let pid = PageId {
            file: self.file,
            page_no: tid.page_no,
        };
        let page = pool.fetch(disk, pid, crate::AccessPattern::Random)?;
        let bytes = page
            .get(tid.slot)
            .map_err(|_| StorageError::TupleNotFound {
                file: self.file.0,
                page: tid.page_no,
                slot: tid.slot,
            })?;
        Tuple::decode(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessPattern, Datum};

    fn tuple(i: i64) -> Tuple {
        Tuple::new(vec![Datum::Int(i), Datum::str(format!("row-{i}"))])
    }

    #[test]
    fn insert_spans_pages() {
        let mut disk = DiskManager::new();
        let heap = HeapFile::create(&mut disk);
        let n = 2000;
        let tids: Vec<TupleId> = (0..n)
            .map(|i| heap.insert(&mut disk, &tuple(i)).unwrap())
            .collect();
        assert!(heap.num_pages(&disk) > 1, "2000 rows should span pages");
        // Tuple ids are dense and ordered.
        for w in tids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn scan_returns_all_rows_in_order() {
        let mut disk = DiskManager::new();
        let heap = HeapFile::create(&mut disk);
        for i in 0..500 {
            heap.insert(&mut disk, &tuple(i)).unwrap();
        }
        let mut pool = BufferPool::new(16);
        let mut seen = Vec::new();
        for page_no in 0..heap.num_pages(&disk) {
            let tuples = heap
                .read_page_tuples(&mut disk, &mut pool, page_no, AccessPattern::Sequential)
                .unwrap();
            seen.extend(tuples.into_iter().map(|t| t.get(0).as_int().unwrap()));
        }
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn fetch_by_tid() {
        let mut disk = DiskManager::new();
        let heap = HeapFile::create(&mut disk);
        let tids: Vec<TupleId> = (0..300)
            .map(|i| heap.insert(&mut disk, &tuple(i)).unwrap())
            .collect();
        let mut pool = BufferPool::new(8);
        let t = heap.fetch(&mut disk, &mut pool, tids[123]).unwrap();
        assert_eq!(t.get(0), &Datum::Int(123));
        // Missing slot.
        let bogus = TupleId {
            page_no: 0,
            slot: 999,
        };
        assert!(heap.fetch(&mut disk, &mut pool, bogus).is_err());
    }

    #[test]
    fn missing_file_and_page_errors() {
        let disk = DiskManager::new();
        assert!(disk.file_pages(FileId(9)).is_err());
        assert!(disk
            .read_page(PageId {
                file: FileId(0),
                page_no: 0
            })
            .is_err());
    }
}
