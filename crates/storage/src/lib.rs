//! # dbvirt-storage — storage engine substrate
//!
//! A from-scratch storage layer in the PostgreSQL mold, built so that the
//! database engine above it performs *real* physical work that the VMM
//! simulator can meter:
//!
//! * [`Datum`], [`DataType`], [`Schema`] — the value model;
//! * [`Tuple`] — byte-serialized rows ([`Tuple`] round-trips through a
//!   compact tagged format);
//! * [`Page`] — 8 KiB slotted pages with a slot directory;
//! * [`HeapFile`] / [`DiskManager`] — append-only heap tables over pages;
//! * [`BufferPool`] — a clock-sweep page cache whose capacity is set from
//!   the VM's memory share, charging sequential/random physical reads to a
//!   [`dbvirt_vmm::ResourceDemand`] on every miss;
//! * [`BPlusTree`] — paged B+tree secondary indexes whose node accesses go
//!   through the same buffer pool accounting;
//! * [`stats`] — `ANALYZE`-style table and column statistics (row counts,
//!   NDV, min/max, equi-depth histograms) for the optimizer.
//!
//! The deliberate design split: *logical* work (which pages are touched,
//! in what pattern) happens here; *time* is assigned by `dbvirt-vmm`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod bufpool;
mod error;
mod heap;
pub mod keyenc;
mod page;
pub mod stats;
mod tuple;
mod types;

pub use btree::BPlusTree;
pub use bufpool::{AccessPattern, BufferPool, BufferPoolMetrics};
pub use error::StorageError;
pub use heap::{DiskManager, FileId, HeapFile, PageId, TupleId};
pub use page::{Page, PAGE_SIZE};
pub use stats::{ColumnStats, Histogram, TableStats};
pub use tuple::Tuple;
pub use types::{DataType, Datum, Field, Schema};
