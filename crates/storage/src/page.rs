//! Slotted pages.
//!
//! Layout (all offsets little-endian u16 within an 8 KiB page):
//!
//! ```text
//! +--------+-----------------------------+--------------------+
//! | header | tuple data (grows forward)  | slot dir (grows <-)|
//! +--------+-----------------------------+--------------------+
//! header = { n_slots: u16, free_off: u16 }
//! slot   = { off: u16, len: u16 }   (stored from the page end backwards)
//! ```
//!
//! Deleted slots keep their directory entry with `len == 0` so that
//! [`crate::TupleId`]s remain stable.

use crate::StorageError;

/// Page size in bytes, matching PostgreSQL's default 8 KiB.
pub const PAGE_SIZE: usize = 8192;

const HEADER_SIZE: usize = 4;
const SLOT_SIZE: usize = 4;

/// An 8 KiB slotted page.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("n_slots", &self.slot_count())
            .field("free_space", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Page {
        Page::new()
    }
}

impl Page {
    /// Creates an empty page.
    pub fn new() -> Page {
        let mut page = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        page.set_u16(0, 0); // n_slots
        page.set_u16(2, HEADER_SIZE as u16); // free_off
        page
    }

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn set_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (including deleted ones).
    pub fn slot_count(&self) -> u16 {
        self.get_u16(0)
    }

    fn free_off(&self) -> u16 {
        self.get_u16(2)
    }

    fn slot_dir_off(&self, slot: u16) -> usize {
        PAGE_SIZE - SLOT_SIZE * (slot as usize + 1)
    }

    /// Free bytes available for one more insertion (accounting for the new
    /// slot directory entry).
    pub fn free_space(&self) -> usize {
        let dir_start = PAGE_SIZE - SLOT_SIZE * self.slot_count() as usize;
        let used_end = self.free_off() as usize;
        (dir_start - used_end).saturating_sub(SLOT_SIZE)
    }

    /// Largest record that can ever fit in an empty page.
    pub fn max_record_size() -> usize {
        PAGE_SIZE - HEADER_SIZE - SLOT_SIZE
    }

    /// Inserts a record, returning its slot index, or `None` if the page is
    /// full.
    ///
    /// # Errors
    /// Returns [`StorageError::TupleTooLarge`] if the record could never fit
    /// even in an empty page.
    pub fn insert(&mut self, record: &[u8]) -> Result<Option<u16>, StorageError> {
        if record.len() > Self::max_record_size() {
            return Err(StorageError::TupleTooLarge { size: record.len() });
        }
        if record.len() > self.free_space() {
            return Ok(None);
        }
        let slot = self.slot_count();
        let off = self.free_off();
        self.data[off as usize..off as usize + record.len()].copy_from_slice(record);
        let dir = self.slot_dir_off(slot);
        self.set_u16(dir, off);
        self.set_u16(dir + 2, record.len() as u16);
        self.set_u16(0, slot + 1);
        self.set_u16(2, off + record.len() as u16);
        Ok(Some(slot))
    }

    /// Returns the record in `slot`, or an error if the slot is missing or
    /// deleted.
    pub fn get(&self, slot: u16) -> Result<&[u8], StorageError> {
        if slot >= self.slot_count() {
            return Err(StorageError::CorruptPage {
                reason: format!("slot {slot} out of range ({})", self.slot_count()),
            });
        }
        let dir = self.slot_dir_off(slot);
        let off = self.get_u16(dir) as usize;
        let len = self.get_u16(dir + 2) as usize;
        if len == 0 {
            return Err(StorageError::CorruptPage {
                reason: format!("slot {slot} is deleted"),
            });
        }
        if off + len > PAGE_SIZE {
            return Err(StorageError::CorruptPage {
                reason: format!("slot {slot} points outside the page"),
            });
        }
        Ok(&self.data[off..off + len])
    }

    /// Iterates over `(slot, record)` pairs of live records.
    pub fn records(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |slot| self.get(slot).ok().map(|r| (slot, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap().unwrap();
        let b = p.insert(b"world!").unwrap().unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(p.get(0).unwrap(), b"hello");
        assert_eq!(p.get(1).unwrap(), b"world!");
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut p = Page::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).unwrap().is_some() {
            n += 1;
        }
        // 8192 - 4 header; each record costs 100 + 4 slot = 104.
        assert_eq!(n, (PAGE_SIZE - HEADER_SIZE) / 104);
        // Still readable after filling.
        assert_eq!(p.get(0).unwrap(), &rec[..]);
        assert_eq!(p.get(n as u16 - 1).unwrap(), &rec[..]);
    }

    #[test]
    fn oversized_record_is_an_error_not_full() {
        let mut p = Page::new();
        let too_big = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&too_big),
            Err(StorageError::TupleTooLarge { .. })
        ));
        // A merely-large record that fits is fine.
        let big = vec![1u8; Page::max_record_size()];
        assert_eq!(p.insert(&big).unwrap(), Some(0));
        assert_eq!(p.insert(b"x").unwrap(), None);
    }

    #[test]
    fn out_of_range_slot_is_an_error() {
        let p = Page::new();
        assert!(p.get(0).is_err());
    }

    #[test]
    fn records_iterates_in_slot_order() {
        let mut p = Page::new();
        for i in 0..5u8 {
            p.insert(&[i]).unwrap().unwrap();
        }
        let collected: Vec<u8> = p.records().map(|(_, r)| r[0]).collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn free_space_decreases_monotonically() {
        let mut p = Page::new();
        let mut prev = p.free_space();
        for _ in 0..10 {
            p.insert(&[0u8; 64]).unwrap().unwrap();
            let now = p.free_space();
            assert!(now < prev);
            prev = now;
        }
    }
}
