//! Tuple serialization.
//!
//! Tuples are stored in pages as a compact tagged byte format:
//! a `u16` field count, then per field a 1-byte type tag followed by the
//! payload (fixed-width for numerics, length-prefixed for strings).

use crate::{Datum, StorageError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A row: an ordered list of datums, serializable to page bytes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Datum>,
}

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_DATE: u8 = 4;
const TAG_BOOL_FALSE: u8 = 5;
const TAG_BOOL_TRUE: u8 = 6;

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Datum>) -> Tuple {
        Tuple { values }
    }

    /// The values in column order.
    pub fn values(&self) -> &[Datum] {
        &self.values
    }

    /// The value of column `idx`.
    pub fn get(&self, idx: usize) -> &Datum {
        &self.values[idx]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Datum> {
        self.values
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Projects the tuple onto the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> Tuple {
        Tuple {
            values: indexes.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Serializes the tuple to bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u16(self.values.len() as u16);
        for v in &self.values {
            match v {
                Datum::Null => buf.put_u8(TAG_NULL),
                Datum::Int(x) => {
                    buf.put_u8(TAG_INT);
                    buf.put_i64(*x);
                }
                Datum::Float(x) => {
                    buf.put_u8(TAG_FLOAT);
                    buf.put_f64(*x);
                }
                Datum::Str(s) => {
                    buf.put_u8(TAG_STR);
                    buf.put_u32(s.len() as u32);
                    buf.put_slice(s.as_bytes());
                }
                Datum::Date(d) => {
                    buf.put_u8(TAG_DATE);
                    buf.put_i32(*d);
                }
                Datum::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
                Datum::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
            }
        }
        buf.freeze()
    }

    /// Exact size of [`Tuple::encode`]'s output, in bytes.
    pub fn encoded_len(&self) -> usize {
        2 + self
            .values
            .iter()
            .map(|v| match v {
                Datum::Null | Datum::Bool(_) => 1,
                Datum::Int(_) | Datum::Float(_) => 9,
                Datum::Date(_) => 5,
                Datum::Str(s) => 5 + s.len(),
            })
            .sum::<usize>()
    }

    /// Deserializes a tuple from bytes produced by [`Tuple::encode`].
    pub fn decode(mut bytes: &[u8]) -> Result<Tuple, StorageError> {
        let corrupt = |reason: &str| StorageError::CorruptTuple {
            reason: reason.to_string(),
        };
        if bytes.remaining() < 2 {
            return Err(corrupt("missing field count"));
        }
        let n = bytes.get_u16() as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            if bytes.remaining() < 1 {
                return Err(corrupt("missing field tag"));
            }
            let tag = bytes.get_u8();
            let datum = match tag {
                TAG_NULL => Datum::Null,
                TAG_INT => {
                    if bytes.remaining() < 8 {
                        return Err(corrupt("truncated int"));
                    }
                    Datum::Int(bytes.get_i64())
                }
                TAG_FLOAT => {
                    if bytes.remaining() < 8 {
                        return Err(corrupt("truncated float"));
                    }
                    Datum::Float(bytes.get_f64())
                }
                TAG_STR => {
                    if bytes.remaining() < 4 {
                        return Err(corrupt("truncated string length"));
                    }
                    let len = bytes.get_u32() as usize;
                    if bytes.remaining() < len {
                        return Err(corrupt("truncated string body"));
                    }
                    let s = std::str::from_utf8(&bytes[..len])
                        .map_err(|_| corrupt("invalid utf-8"))?
                        .to_string();
                    bytes.advance(len);
                    Datum::Str(s)
                }
                TAG_DATE => {
                    if bytes.remaining() < 4 {
                        return Err(corrupt("truncated date"));
                    }
                    Datum::Date(bytes.get_i32())
                }
                TAG_BOOL_FALSE => Datum::Bool(false),
                TAG_BOOL_TRUE => Datum::Bool(true),
                other => {
                    return Err(StorageError::CorruptTuple {
                        reason: format!("unknown tag {other}"),
                    })
                }
            };
            values.push(datum);
        }
        Ok(Tuple { values })
    }
}

impl From<Vec<Datum>> for Tuple {
    fn from(values: Vec<Datum>) -> Tuple {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::new(vec![
            Datum::Int(-42),
            Datum::Float(3.25),
            Datum::str("hello, wörld"),
            Datum::Date(20000),
            Datum::Bool(true),
            Datum::Bool(false),
            Datum::Null,
        ])
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = t.encode();
        assert_eq!(bytes.len(), t.encoded_len());
        let back = Tuple::decode(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let t = Tuple::new(vec![]);
        assert_eq!(Tuple::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn truncated_bytes_are_rejected() {
        let bytes = sample().encode();
        for cut in [0, 1, 3, bytes.len() - 1] {
            assert!(
                Tuple::decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let bytes = [0u8, 1, 99];
        assert!(matches!(
            Tuple::decode(&bytes),
            Err(StorageError::CorruptTuple { .. })
        ));
    }

    #[test]
    fn concat_and_project() {
        let a = Tuple::new(vec![Datum::Int(1), Datum::str("x")]);
        let b = Tuple::new(vec![Datum::Bool(true)]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Datum::Bool(true), Datum::Int(1)]);
    }

    proptest::proptest! {
        #[test]
        fn prop_roundtrip(ints in proptest::collection::vec(-1_000_000i64..1_000_000, 0..8),
                          s in "[a-zA-Z0-9 ]{0,40}") {
            let mut values: Vec<Datum> = ints.into_iter().map(Datum::Int).collect();
            values.push(Datum::str(s));
            values.push(Datum::Null);
            let t = Tuple::new(values);
            let bytes = t.encode();
            proptest::prop_assert_eq!(bytes.len(), t.encoded_len());
            proptest::prop_assert_eq!(Tuple::decode(&bytes).unwrap(), t);
        }
    }
}
