//! Calibration benchmarks: the solver is trivial; the probe executions
//! dominate, which is exactly why the paper flags calibration as "a
//! fairly lengthy process" and motivates the EXT-GRID interpolation
//! experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use dbvirt_calibrate::runner::calibrate_with;
use dbvirt_calibrate::{solver, ProbeDb};
use dbvirt_vmm::{MachineSpec, ResourceVector, Share};
use std::hint::black_box;

fn bench_solver(c: &mut Criterion) {
    // A representative 8x5 weighted system.
    let a: Vec<Vec<f64>> = (0..8)
        .map(|i| {
            (0..5)
                .map(|j| ((i * 5 + j) as f64 * 0.37).sin().abs() + 0.1)
                .collect()
        })
        .collect();
    let x_true = [1.0, 2.0, 0.5, 0.25, 3.0];
    let b_vec: Vec<f64> = a
        .iter()
        .map(|row| row.iter().zip(&x_true).map(|(aij, xj)| aij * xj).sum())
        .collect();

    c.bench_function("calibration/least_squares_8x5", |bch| {
        bch.iter(|| {
            let x = solver::least_squares(&a, &b_vec).unwrap();
            black_box(x[0]);
        });
    });
}

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.sample_size(10);

    group.bench_function("probe_db_build", |b| {
        b.iter(|| {
            let pdb = ProbeDb::build().unwrap();
            black_box(pdb.db.total_pages());
        });
    });

    group.bench_function("one_allocation", |b| {
        let mut pdb = ProbeDb::build().unwrap();
        b.iter(|| {
            let cal = calibrate_with(
                &mut pdb,
                MachineSpec::paper_testbed(),
                ResourceVector::uniform(Share::HALF),
            )
            .unwrap();
            black_box(cal.params.cpu_tuple_cost);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_solver, bench_calibration);
criterion_main!(benches);
