//! Buffer pool micro-benchmarks: hit path, miss/eviction path, and the
//! metered B+tree traversal.

use criterion::{criterion_group, criterion_main, Criterion};
use dbvirt_storage::{
    AccessPattern, BPlusTree, BufferPool, Datum, DiskManager, HeapFile, PageId, Tuple, TupleId,
};
use std::hint::black_box;
use std::ops::Bound;

fn loaded(rows: i64) -> (DiskManager, HeapFile) {
    let mut disk = DiskManager::new();
    let heap = HeapFile::create(&mut disk);
    for i in 0..rows {
        heap.insert(
            &mut disk,
            &Tuple::new(vec![Datum::Int(i), Datum::str("some padding text here")]),
        )
        .unwrap();
    }
    (disk, heap)
}

fn bench_bufpool(c: &mut Criterion) {
    let (mut disk, heap) = loaded(20_000);
    let n_pages = heap.num_pages(&disk);

    c.bench_function("bufpool/hit", |b| {
        let mut pool = BufferPool::new(n_pages as usize + 1);
        let pid = PageId {
            file: heap.file_id(),
            page_no: 0,
        };
        pool.fetch(&mut disk, pid, AccessPattern::Sequential)
            .unwrap();
        b.iter(|| {
            let page = pool
                .fetch(&mut disk, pid, AccessPattern::Sequential)
                .unwrap();
            black_box(page.slot_count());
        });
    });

    c.bench_function("bufpool/miss_evict_sweep", |b| {
        // A pool far smaller than the table: every fetch in a sweep
        // misses and evicts.
        let mut pool = BufferPool::new(8);
        let mut page_no = 0u32;
        b.iter(|| {
            let pid = PageId {
                file: heap.file_id(),
                page_no,
            };
            page_no = (page_no + 1) % n_pages;
            let page = pool
                .fetch(&mut disk, pid, AccessPattern::Sequential)
                .unwrap();
            black_box(page.slot_count());
        });
    });

    c.bench_function("bufpool/heap_scan_page_decode", |b| {
        let mut pool = BufferPool::new(n_pages as usize + 1);
        b.iter(|| {
            let tuples = heap
                .read_page_tuples(&mut disk, &mut pool, 0, AccessPattern::Sequential)
                .unwrap();
            black_box(tuples.len());
        });
    });
}

fn bench_btree(c: &mut Criterion) {
    let mut disk = DiskManager::new();
    let entries: Vec<(Datum, TupleId)> = (0..100_000u32)
        .map(|i| {
            (
                Datum::Int(i as i64),
                TupleId {
                    page_no: i / 100,
                    slot: (i % 100) as u16,
                },
            )
        })
        .collect();
    let tree = BPlusTree::bulk_load(&mut disk, entries).unwrap();

    c.bench_function("btree/point_lookup_metered", |b| {
        let mut pool = BufferPool::new(4096);
        let mut key = 0i64;
        b.iter(|| {
            key = (key + 7919) % 100_000;
            let hits = tree
                .lookup_metered(&mut disk, &mut pool, &Datum::Int(key))
                .unwrap();
            black_box(hits.len());
        });
    });

    c.bench_function("btree/range_1000", |b| {
        b.iter(|| {
            let out = tree.range(
                Bound::Included(&Datum::Int(5_000)),
                Bound::Excluded(&Datum::Int(6_000)),
            );
            black_box(out.len());
        });
    });
}

criterion_group!(benches, bench_bufpool, bench_btree);
criterion_main!(benches);
