//! Search-algorithm benchmarks. The synthetic (instant) cost model
//! isolates enumeration overhead; the calibrated what-if group measures
//! the serial-vs-parallel evaluation speedup on a real model, where each
//! cell re-optimizes a TPC-H workload — the EXT-SEARCH experiment covers
//! solution *quality*.

use criterion::{criterion_group, criterion_main, Criterion};
use dbvirt_bench::experiment_machine;
use dbvirt_core::search::{run_search, SearchAlgorithm, SearchConfig};
use dbvirt_core::{
    CalibratedCostModel, CoreError, CostModel, DesignProblem, VirtualizationAdvisor, WorkloadSpec,
};
use dbvirt_engine::Database;
use dbvirt_optimizer::LogicalPlan;
use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt_vmm::{MachineSpec, ResourceVector};
use std::hint::black_box;

/// Convex synthetic model: `w_c / cpu + w_m / mem` per workload.
struct Synthetic {
    weights: Vec<(f64, f64)>,
}

impl CostModel for Synthetic {
    fn cost(
        &self,
        _problem: &DesignProblem<'_>,
        w_idx: usize,
        shares: ResourceVector,
    ) -> Result<f64, CoreError> {
        let (wc, wm) = self.weights[w_idx];
        Ok(wc / shares.cpu().fraction() + wm / shares.memory().fraction())
    }
}

fn dummy_db() -> Database {
    let mut db = Database::new();
    let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
    db.insert_rows(t, (0..10).map(|i| Tuple::new(vec![Datum::Int(i)])))
        .unwrap();
    db.analyze_all().unwrap();
    db
}

fn bench_search(c: &mut Criterion) {
    let db = dummy_db();
    let t = db.table_id("t").unwrap();

    for n in [2usize, 3, 4] {
        let workloads: Vec<WorkloadSpec<'_>> = (0..n)
            .map(|i| WorkloadSpec::new(format!("w{i}"), &db, vec![LogicalPlan::scan(t)]))
            .collect();
        let problem = DesignProblem::new(MachineSpec::paper_testbed(), workloads).unwrap();
        let model = Synthetic {
            weights: (0..n)
                .map(|i| (1.0 + i as f64, 4.0 - i as f64 * 0.8))
                .collect(),
        };
        let config = SearchConfig::for_workloads(8, n);

        for alg in [
            SearchAlgorithm::Exhaustive,
            SearchAlgorithm::Greedy,
            SearchAlgorithm::DynamicProgramming,
        ] {
            c.bench_function(&format!("search/{}_{n}workloads", alg.name()), |b| {
                b.iter(|| {
                    let rec = run_search(alg, &problem, &model, config).unwrap();
                    black_box(rec.total_cost);
                });
            });
        }
    }
}

/// Serial vs parallel what-if evaluation on the calibrated model: every
/// run starts from a cold cache, so DP pays for its full cost table and
/// the parallel precompute's speedup is visible end to end.
fn bench_parallel_whatif(c: &mut Criterion) {
    let machine = experiment_machine();
    let t = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");
    let advisor =
        VirtualizationAdvisor::calibrate(machine, 2, 8).expect("advisor calibration");
    let model = CalibratedCostModel::new(advisor.grid());
    let w_io = Workload::compose(&t, &[(TpchQuery::Q4, 3)]);
    let w_cpu = Workload::compose(&t, &[(TpchQuery::Q13, 9)]);
    let problem = DesignProblem::new(
        machine,
        vec![
            WorkloadSpec::new(w_io.name.clone(), &t.db, w_io.queries.clone()),
            WorkloadSpec::new(w_cpu.name.clone(), &t.db, w_cpu.queries.clone()),
        ],
    )
    .expect("problem");

    for (label, parallelism) in [("serial", 1usize), ("parallel", 0)] {
        let config = advisor.config().with_parallelism(parallelism);
        c.bench_function(&format!("search/whatif_dp_{label}"), |b| {
            b.iter(|| {
                let rec = run_search(
                    SearchAlgorithm::DynamicProgramming,
                    &problem,
                    &model,
                    config,
                )
                .unwrap();
                black_box(rec.total_cost);
            });
        });
    }
}

criterion_group!(benches, bench_search, bench_parallel_whatif);
criterion_main!(benches);
