//! Search-algorithm benchmarks over a synthetic (instant) cost model, so
//! the numbers isolate enumeration overhead — the EXT-SEARCH experiment
//! covers solution *quality* with the real calibrated model.

use criterion::{criterion_group, criterion_main, Criterion};
use dbvirt_core::search::{run_search, SearchAlgorithm, SearchConfig};
use dbvirt_core::{CoreError, CostModel, DesignProblem, WorkloadSpec};
use dbvirt_engine::Database;
use dbvirt_optimizer::LogicalPlan;
use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
use dbvirt_vmm::{MachineSpec, ResourceVector};
use std::hint::black_box;

/// Convex synthetic model: `w_c / cpu + w_m / mem` per workload.
struct Synthetic {
    weights: Vec<(f64, f64)>,
}

impl CostModel for Synthetic {
    fn cost(
        &self,
        _problem: &DesignProblem<'_>,
        w_idx: usize,
        shares: ResourceVector,
    ) -> Result<f64, CoreError> {
        let (wc, wm) = self.weights[w_idx];
        Ok(wc / shares.cpu().fraction() + wm / shares.memory().fraction())
    }
}

fn dummy_db() -> Database {
    let mut db = Database::new();
    let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
    db.insert_rows(t, (0..10).map(|i| Tuple::new(vec![Datum::Int(i)])))
        .unwrap();
    db.analyze_all().unwrap();
    db
}

fn bench_search(c: &mut Criterion) {
    let db = dummy_db();
    let t = db.table_id("t").unwrap();

    for n in [2usize, 3, 4] {
        let workloads: Vec<WorkloadSpec<'_>> = (0..n)
            .map(|i| WorkloadSpec::new(format!("w{i}"), &db, vec![LogicalPlan::scan(t)]))
            .collect();
        let problem = DesignProblem::new(MachineSpec::paper_testbed(), workloads).unwrap();
        let model = Synthetic {
            weights: (0..n)
                .map(|i| (1.0 + i as f64, 4.0 - i as f64 * 0.8))
                .collect(),
        };
        let config = SearchConfig::for_workloads(8, n);

        for alg in [
            SearchAlgorithm::Exhaustive,
            SearchAlgorithm::Greedy,
            SearchAlgorithm::DynamicProgramming,
        ] {
            c.bench_function(&format!("search/{}_{n}workloads", alg.name()), |b| {
                b.iter(|| {
                    let rec = run_search(alg, &problem, &model, config).unwrap();
                    black_box(rec.total_cost);
                });
            });
        }
    }
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
