//! Planner micro-benchmarks: the what-if evaluations the design search
//! performs by the dozen must be cheap.

use criterion::{criterion_group, criterion_main, Criterion};
use dbvirt_optimizer::{plan_query, whatif, OptimizerParams};
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery};
use std::hint::black_box;

fn bench_planner(c: &mut Criterion) {
    let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
    let params = OptimizerParams::default();

    // Q6: single-table access-path selection.
    let q6 = TpchQuery::Q6.plan(&t);
    c.bench_function("plan/q6_access_path", |b| {
        b.iter(|| {
            let planned = plan_query(&t.db, &q6, &params).unwrap();
            black_box(planned.est_cost_units);
        });
    });

    // Q5: the 6-relation Selinger DP.
    let q5 = TpchQuery::Q5.plan(&t);
    c.bench_function("plan/q5_join_dp_6way", |b| {
        b.iter(|| {
            let planned = plan_query(&t.db, &q5, &params).unwrap();
            black_box(planned.est_cost_units);
        });
    });

    // The full what-if workload estimate the search loop calls.
    let workload: Vec<_> = TpchQuery::all().iter().map(|q| q.plan(&t)).collect();
    c.bench_function("whatif/all_nine_queries", |b| {
        b.iter(|| {
            let secs = whatif::estimate_workload_seconds(&t.db, &workload, &params).unwrap();
            black_box(secs);
        });
    });
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
