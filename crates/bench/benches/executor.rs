//! Executor micro-benchmarks: the operators the TPC-H workloads spend
//! their time in.

use criterion::{criterion_group, criterion_main, Criterion};
use dbvirt_engine::{
    run_plan, AggExpr, AggFunc, CpuCosts, Database, Expr, JoinType, PhysicalPlan, SortKey, TableId,
};
use dbvirt_storage::{BufferPool, DataType, Datum, Field, Schema, Tuple};
use std::hint::black_box;

fn build_db(rows: i64) -> Database {
    let mut db = Database::new();
    let t = db.create_table(
        "t",
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("g", DataType::Str),
        ]),
    );
    db.insert_rows(
        t,
        (0..rows).map(|i| {
            Tuple::new(vec![
                Datum::Int(i),
                Datum::Int((i * 48_271) % rows),
                Datum::str(["x", "y", "z"][(i % 3) as usize]),
            ])
        }),
    )
    .unwrap();
    db.analyze_all().unwrap();
    db
}

fn execute(db: &mut Database, plan: &PhysicalPlan) -> usize {
    let mut pool = BufferPool::new(8192);
    run_plan(db, &mut pool, plan, 8 << 20, CpuCosts::default())
        .unwrap()
        .rows
        .len()
}

fn bench_operators(c: &mut Criterion) {
    let mut db = build_db(50_000);
    let t = TableId(0);
    let scan = || {
        Box::new(PhysicalPlan::SeqScan {
            table: t,
            filter: None,
        })
    };

    c.bench_function("exec/seq_scan_50k", |b| {
        let plan = PhysicalPlan::SeqScan {
            table: t,
            filter: None,
        };
        b.iter(|| black_box(execute(&mut db, &plan)));
    });

    c.bench_function("exec/filtered_scan_50k", |b| {
        let plan = PhysicalPlan::SeqScan {
            table: t,
            filter: Some(Expr::and(
                Expr::lt(Expr::col(1), Expr::int(10_000)),
                Expr::eq(Expr::col(2), Expr::str("x")),
            )),
        };
        b.iter(|| black_box(execute(&mut db, &plan)));
    });

    c.bench_function("exec/hash_join_50k_x_50k_keys", |b| {
        let plan = PhysicalPlan::HashJoin {
            left: scan(),
            right: scan(),
            left_keys: vec![0],
            right_keys: vec![1],
            join_type: JoinType::Semi,
        };
        b.iter(|| black_box(execute(&mut db, &plan)));
    });

    c.bench_function("exec/hash_agg_3_groups", |b| {
        let plan = PhysicalPlan::HashAgg {
            input: scan(),
            group_by: vec![2],
            aggs: vec![
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Sum, Expr::col(0), "s"),
                AggExpr::new(AggFunc::Avg, Expr::col(1), "m"),
            ],
        };
        b.iter(|| black_box(execute(&mut db, &plan)));
    });

    c.bench_function("exec/sort_50k", |b| {
        let plan = PhysicalPlan::Sort {
            input: scan(),
            keys: vec![SortKey::desc(1), SortKey::asc(0)],
        };
        b.iter(|| black_box(execute(&mut db, &plan)));
    });
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
