//! # dbvirt-bench — experiment harness
//!
//! One binary per paper exhibit plus the extension experiments listed in
//! `DESIGN.md` (run them with `cargo run --release -p dbvirt-bench --bin
//! <name>`):
//!
//! | binary | exhibit |
//! |---|---|
//! | `fig3` | Figure 3 — calibrated `cpu_tuple_cost` vs CPU/memory share |
//! | `fig4` | Figure 4 — Q4/Q13 CPU-share sensitivity, estimated vs actual |
//! | `fig5` | Figure 5 — co-scheduled workload totals, default vs 75/25 |
//! | `ext_search` | search-algorithm ablation (exhaustive/greedy/DP) |
//! | `ext_grid` | calibration-grid density vs interpolation fidelity |
//! | `ext_consolidation` | N-workload consolidation, advisor vs equal split |
//! | `ext_dynamic` | dynamic reconfiguration controller vs static baselines |
//! | `ext_ablation` | cost-model ablation: calibrated vs allocation-blind |
//! | `ext_trace` | telemetry smoke gate: traced consolidation run, writes `TRACE_dump.json` + `TRACE_chrome.json` |
//! | `ext_controller` | online drift-detecting control loop vs clairvoyant oracle, writes `BENCH_controller.json` |
//! | `ext_chaos` | calibration pipeline under fault-injection sweeps |
//! | `ext_sched` | incremental vs reference co-scheduler: 48-config identity + speedup sweep, writes `BENCH_sched.json` |
//! | `ext_fleet` | datacenter placement ladder (greedy → local search → LP bound) from 4 VMs/1 machine to 256 VMs/32 machines, writes `BENCH_fleet.json` |
//!
//! This library holds what the binaries share: the experiment machine and
//! measurement/printing helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dbvirt_calibrate::DbVmConfig;
use dbvirt_core::search::run_search;
use dbvirt_core::{CoreError, CostModel, DesignProblem, SearchAlgorithm, SearchConfig};
use dbvirt_engine::{run_plan, CpuCosts, Database};
use dbvirt_optimizer::{plan_query, LogicalPlan, OptimizerParams};
use dbvirt_storage::BufferPool;
use dbvirt_vmm::{MachineSpec, ResourceVector, VirtualMachine};

/// The machine the experiments run on.
///
/// The paper's testbed is 2×2.8 GHz Xeon / 4 GB RAM hosting a 1 GB (4 GB
/// with indexes) TPC-H database. The experiments here run TPC-H at a small
/// scale factor, so the machine's memory and disk are scaled to keep the
/// paper's *regimes*: the database exceeds any VM's page cache (memory
/// allocation matters), and sequential scans are disk-bound at full CPU
/// (so an I/O-bound query exists). CPU speed is kept at the testbed's,
/// which preserves the CPU-vs-I/O balance per tuple.
pub fn experiment_machine() -> MachineSpec {
    MachineSpec {
        cores: 2,
        cycles_per_sec: 2.8e9,
        memory_bytes: 32 * 1024 * 1024,
        disk_seq_bytes_per_sec: 25.0 * 1024.0 * 1024.0,
        disk_random_iops: 100.0,
        page_size: 8192,
    }
}

/// Measures one query's steady-state execution time in a VM at `shares`:
/// plan with stock optimizer settings (a deployed database does not know
/// its allocation), warm the cache with one unmeasured run, then measure.
pub fn measure_query_warm(
    db: &mut Database,
    query: &LogicalPlan,
    machine: MachineSpec,
    shares: ResourceVector,
) -> Result<f64, CoreError> {
    let vm = VirtualMachine::new(machine, shares)?;
    let cfg = DbVmConfig::for_vm(&vm);
    let params = OptimizerParams {
        work_mem_bytes: cfg.work_mem_bytes as f64,
        effective_cache_size_pages: cfg.effective_cache_pages as f64,
        ..OptimizerParams::postgres_defaults()
    };
    let planned = plan_query(db, query, &params)?;
    let mut pool = BufferPool::new(cfg.buffer_pool_pages);
    // Warm-up run (unmeasured).
    run_plan(
        db,
        &mut pool,
        &planned.physical,
        cfg.work_mem_bytes,
        CpuCosts::default(),
    )?;
    let out = run_plan(
        db,
        &mut pool,
        &planned.physical,
        cfg.work_mem_bytes,
        CpuCosts::default(),
    )?;
    Ok(vm.demand_seconds(&out.demand))
}

/// Runs `algorithm` on `problem` twice — serially and with one evaluation
/// worker per core — from cold caches, checks the two recommendations are
/// identical to the bit, and prints the wall-clock comparison.
pub fn report_parallel_speedup(
    label: &str,
    algorithm: SearchAlgorithm,
    problem: &DesignProblem<'_>,
    model: &dyn CostModel,
    config: SearchConfig,
) {
    let t0 = std::time::Instant::now();
    let serial = run_search(algorithm, problem, model, config.with_parallelism(1))
        .expect("serial search");
    let serial_s = t0.elapsed().as_secs_f64();
    let parallel_cfg = config.with_parallelism(0);
    let t1 = std::time::Instant::now();
    let parallel =
        run_search(algorithm, problem, model, parallel_cfg).expect("parallel search");
    let parallel_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        serial.objective.to_bits(),
        parallel.objective.to_bits(),
        "parallel search must return the serial objective"
    );
    assert_eq!(
        serial.evaluations, parallel.evaluations,
        "parallel search must perform the serial evaluation count"
    );
    assert_eq!(
        serial.allocation.to_string(),
        parallel.allocation.to_string(),
        "parallel search must return the serial allocation"
    );
    println!(
        "  {label} [{}]: serial {:.3}s vs parallel {:.3}s ({} workers) = {:.2}x, \
         identical recommendation ({} evaluations each)",
        algorithm.name(),
        serial_s,
        parallel_s,
        parallel_cfg.effective_parallelism(),
        serial_s / parallel_s,
        serial.evaluations,
    );
}

/// Renders a fixed-width table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let joined: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// A tiny insertion-ordered JSON object builder for the machine-readable
/// `BENCH_*.json` artifacts (no external dependencies). Values are
/// rendered immediately; nest objects/arrays with [`JsonObj::raw`] and
/// [`json_array`].
#[derive(Default, Clone)]
pub struct JsonObj {
    parts: Vec<String>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> JsonObj {
        JsonObj::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObj {
        self.parts.push(format!("{}:{}", json_escape(key), json_escape(value)));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> JsonObj {
        self.parts.push(format!("{}:{}", json_escape(key), value));
        self
    }

    /// Adds a float field (non-finite values are rendered as `null`).
    pub fn float(mut self, key: &str, value: f64) -> JsonObj {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.parts.push(format!("{}:{rendered}", json_escape(key)));
        self
    }

    /// Adds a pre-rendered JSON value (object or array).
    pub fn raw(mut self, key: &str, json: String) -> JsonObj {
        self.parts.push(format!("{}:{json}", json_escape(key)));
        self
    }

    /// Renders the object.
    pub fn render(&self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// Renders pre-rendered JSON values as an array.
pub fn json_array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes a `BENCH_*.json`-style artifact to the working directory and
/// prints where it went.
pub fn write_bench_artifact(file_name: &str, json: &str) {
    std::fs::write(file_name, format!("{json}\n")).expect("write bench artifact");
    println!("Wrote {file_name}");
}

/// The `(hits, misses)` of the search cost cache from the global telemetry
/// registry (zeros while telemetry is disabled).
pub fn cache_counters() -> (u64, u64) {
    let snap = dbvirt_telemetry::snapshot();
    (
        snap.counter("search.cache.hits").unwrap_or(0),
        snap.counter("search.cache.misses").unwrap_or(0),
    )
}

/// Formats a float with three significant decimals.
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_machine_is_valid_and_scaled() {
        let m = experiment_machine();
        m.validate().unwrap();
        // Regime check: the machine is memory-scarce relative to the
        // paper testbed but equally fast per core.
        let paper = MachineSpec::paper_testbed();
        assert_eq!(m.cycles_per_sec, paper.cycles_per_sec);
        assert!(m.memory_bytes < paper.memory_bytes / 16);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_pct(0.305), "30.5%");
    }

    #[test]
    fn json_obj_renders_ordered_and_escaped() {
        let obj = JsonObj::new()
            .str("name", "a \"b\"\n")
            .int("count", 3)
            .float("rate", 0.5)
            .float("bad", f64::NAN)
            .raw("items", json_array(&["1".to_string(), "2".to_string()]));
        assert_eq!(
            obj.render(),
            "{\"name\":\"a \\\"b\\\"\\n\",\"count\":3,\"rate\":0.5,\"bad\":null,\"items\":[1,2]}"
        );
    }
}
