//! EXT-ABLATION — does the paper's machinery actually earn its keep?
//!
//! The design search only needs the cost model to *rank* allocations
//! correctly. This experiment ablates the two load-bearing pieces of the
//! model and measures ranking fidelity against ground truth (actual
//! simulated execution) over a CPU × memory allocation grid:
//!
//! * **calibrated** — the full method: `P(R)` from calibration;
//! * **pg-defaults** — PostgreSQL's stock parameters, allocation-blind
//!   (what you get with *no* virtualization awareness: every allocation is
//!   priced identically, so the search cannot distinguish candidates);
//! * **no-cache-model** — calibrated CPU/I-O parameters but
//!   `effective_cache_size` pinned tiny, disabling the steady-state cache
//!   reasoning (the memory axis goes dark).
//!
//! Fidelity metric: Kendall's tau between the estimated and measured
//! orderings of the candidate allocations, plus whether each model
//! identifies the truly best allocation.

use dbvirt_bench::{experiment_machine, measure_query_warm, print_table};
use dbvirt_calibrate::CalibrationGrid;
use dbvirt_optimizer::whatif::estimate_query_seconds;
use dbvirt_optimizer::OptimizerParams;
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery};
use dbvirt_vmm::ResourceVector;

/// Kendall's tau-a between two equally-long score vectors.
fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    // Ties contribute to neither side (f64::signum maps +0.0 to 1.0, so
    // compare explicitly).
    let sign = |d: f64| {
        if d == 0.0 {
            0.0
        } else {
            d.signum()
        }
    };
    for i in 0..n {
        for j in i + 1..n {
            let x = sign(a[i] - a[j]);
            let y = sign(b[i] - b[j]);
            if x * y > 0.0 {
                concordant += 1;
            } else if x * y < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

fn main() {
    let machine = experiment_machine();
    println!(
        "Generating TPC-H (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let mut t = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");

    // Candidate allocations: a CPU x memory grid (disk fixed at 50%).
    let cpu_points = [0.25, 0.5, 0.75];
    let mem_points = [0.25, 0.5, 0.75];
    println!("Calibrating the reference grid ...");
    let grid = CalibrationGrid::calibrate(machine, cpu_points.to_vec(), mem_points.to_vec(), 0.5)
        .expect("calibration");

    let candidates: Vec<ResourceVector> = cpu_points
        .iter()
        .flat_map(|&c| {
            mem_points
                .iter()
                .map(move |&m| ResourceVector::from_fractions(c, m, 0.5).expect("shares"))
        })
        .collect();

    let mut rows = Vec::new();
    for q in [TpchQuery::Q4, TpchQuery::Q13, TpchQuery::Q1] {
        let logical = q.plan(&t);

        // Ground truth: measured steady-state time at each candidate.
        let measured: Vec<f64> = candidates
            .iter()
            .map(|&shares| {
                measure_query_warm(&mut t.db, &logical, machine, shares).expect("measurement")
            })
            .collect();

        // Model A: full calibrated P(R).
        let calibrated: Vec<f64> = candidates
            .iter()
            .map(|&shares| {
                let p = grid.params_for(shares).expect("grid");
                estimate_query_seconds(&t.db, &logical, &p).expect("estimate")
            })
            .collect();

        // Model B: allocation-blind PostgreSQL defaults.
        let blind: Vec<f64> = candidates
            .iter()
            .map(|_| {
                estimate_query_seconds(&t.db, &logical, &OptimizerParams::postgres_defaults())
                    .expect("estimate")
            })
            .collect();

        // Model C: calibrated, but cache modeling disabled.
        let no_cache: Vec<f64> = candidates
            .iter()
            .map(|&shares| {
                let mut p = grid.params_for(shares).expect("grid");
                p.effective_cache_size_pages = 1.0;
                estimate_query_seconds(&t.db, &logical, &p).expect("estimate")
            })
            .collect();

        let best = |v: &[f64]| {
            v.iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty")
        };
        let truth_best = best(&measured);
        for (name, est) in [
            ("calibrated", &calibrated),
            ("pg-defaults", &blind),
            ("no-cache-model", &no_cache),
        ] {
            rows.push(vec![
                q.to_string(),
                name.to_string(),
                format!("{:.2}", kendall_tau(est, &measured)),
                if best(est) == truth_best { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }

    print_table(
        "EXT-ABLATION: ranking fidelity of ablated cost models vs measured ground truth \
         (9 candidate allocations, CPU x memory)",
        &["query", "model", "kendall tau", "finds best allocation"],
        &rows,
    );
    println!(
        "\nShape check: the calibrated model ranks candidate allocations nearly perfectly; \
         stock PostgreSQL parameters are allocation-blind (tau = 0 — the search would be \
         flying blind, which is the paper's core motivation); dropping the cache model \
         loses the memory axis."
    );
}
