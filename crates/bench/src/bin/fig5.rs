//! Figure 5 — effect of the CPU split on total execution time of two
//! co-scheduled workloads.
//!
//! Paper: "we construct two workloads, one consisting of 3 copies of Q4
//! and the other consisting of 9 copies of Q13 … so that the execution
//! times of the two workloads are close to each other when they are each
//! given equal shares of the CPU. [Giving 75% of the CPU to Q13] improves
//! the performance of Q13 by 30% without hurting the performance of Q4."
//!
//! Each workload runs against its own database instance (the paper's
//! formulation: "a sequence of SQL statements against a separate
//! database"), in its own VM, concurrently under the capped credit
//! scheduler.

use dbvirt_bench::{experiment_machine, fmt_pct, measure_query_warm, print_table};
use dbvirt_core::measure::measure_concurrent_seconds;
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt_vmm::sched::SchedMode;
use dbvirt_vmm::{AllocationMatrix, ResourceVector};

fn main() {
    let machine = experiment_machine();
    println!(
        "Generating two TPC-H databases (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let mut t1 = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");
    let mut t2 = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");

    // Balance the workloads at the default split, as the paper does: fix
    // 3 copies of Q4 and choose the Q13 multiplicity so the two workloads
    // take about the same time at 50/50.
    let half = ResourceVector::from_fractions(0.5, 0.5, 0.5).expect("shares");
    let q4_plan = TpchQuery::Q4.plan(&t1);
    let q13_plan = TpchQuery::Q13.plan(&t2);
    let q4_secs = measure_query_warm(&mut t1.db, &q4_plan, machine, half).expect("Q4 measurement");
    let q13_secs =
        measure_query_warm(&mut t2.db, &q13_plan, machine, half).expect("Q13 measurement");
    let n_q4 = 3usize;
    let n_q13 = ((n_q4 as f64 * q4_secs / q13_secs).round() as usize).max(1);
    println!(
        "Balanced workloads at 50/50: Q4 ~{q4_secs:.3}s, Q13 ~{q13_secs:.3}s -> W1 = {n_q4}xQ4, W2 = {n_q13}xQ13 \
         (paper used 3xQ4 vs 9xQ13 on its testbed)"
    );

    let w1 = Workload::compose(&t1, &[(TpchQuery::Q4, n_q4)]);
    let w2 = Workload::compose(&t2, &[(TpchQuery::Q13, n_q13)]);

    let default_alloc = AllocationMatrix::equal_split(2).expect("equal split");
    let skewed_alloc = AllocationMatrix::new(vec![
        ResourceVector::from_fractions(0.25, 0.5, 0.5).expect("shares"),
        ResourceVector::from_fractions(0.75, 0.5, 0.5).expect("shares"),
    ])
    .expect("skewed allocation");

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (label, alloc) in [
        ("default 50/50", &default_alloc),
        ("75% CPU to Q13", &skewed_alloc),
    ] {
        let times = measure_concurrent_seconds(
            &mut [&mut t1.db, &mut t2.db],
            &[&w1.queries, &w2.queries],
            machine,
            alloc,
            SchedMode::Capped,
        )
        .expect("co-scheduled measurement");
        rows.push(vec![
            label.to_string(),
            format!("{:.3}s", times[0]),
            format!("{:.3}s", times[1]),
        ]);
        results.push(times);
    }

    print_table(
        "Figure 5: co-scheduled workload completion times",
        &[
            "allocation",
            &format!("W1 ({})", w1.name),
            &format!("W2 ({})", w2.name),
        ],
        &rows,
    );

    let q13_improvement = 1.0 - results[1][1] / results[0][1];
    let q4_change = results[1][0] / results[0][0] - 1.0;
    println!(
        "\nShape check: W2 (Q13) improves by {} at the 75/25 split; W1 (Q4) changes by {} \
         (paper: ~30% improvement for Q13 'without hurting' Q4).",
        fmt_pct(q13_improvement),
        fmt_pct(q4_change)
    );
}
