//! EXT-FLEETSIM — thousand-VM end-to-end: place a 1024-VM fleet across
//! 128 heterogeneous machines with the fleet advisor, then *execute* the
//! placement through the parallel per-machine co-scheduler
//! (`dbvirt_fleet::simulate_placement`) and set the simulated weighted
//! total against the placement's predicted objective.
//!
//! Per-VM demand streams come from the measured oracle
//! (`dbvirt_core::measure::workload_demands`): each (mix, machine class)
//! pair is executed once through the real engine under the forced 1-unit
//! share, then reused for every VM of that pair — 12 engine runs feed
//! 1024 simulated VMs.
//!
//! Pins enforced by this binary (and replayed by `scripts/fleetsim.sh`):
//!
//! * the fleet is at least 1024 VMs across at least 32 machines, driven
//!   end to end (place → simulate → report);
//! * simulation reports are **bit-identical** between serial and
//!   per-core parallel machine execution, in both scheduling modes
//!   (`FLEETSIM_FINGERPRINT` lines, diffed across two process runs);
//! * work conservation never makes the fleet slower than capped mode;
//! * the simulated per-run total lands within an order of magnitude of
//!   the placement's model-predicted objective (the model and the
//!   measured streams must describe the same fleet).

use dbvirt_bench::{experiment_machine, json_array, print_table, write_bench_artifact, JsonObj};
use dbvirt_calibrate::CalibrationGrid;
use dbvirt_core::measure::workload_demands;
use dbvirt_core::{CalibratedCostModel, CostModel};
use dbvirt_fleet::{simulate_placement, FleetAdvisor, FleetConfig, FleetProblem, FleetVm};
use dbvirt_telemetry::SinkConfig;
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt_vmm::sched::{SchedMode, VmJob};
use dbvirt_vmm::{MachineSpec, ResourceVector};

const UNITS: u32 = 8;
const VMS: usize = 1024;
const SMALL_MACHINES: usize = 64;
const BIG_MACHINES: usize = 64;
/// Each VM's measured demand stream is repeated this many times, so the
/// simulation carries real event volume (~6–12 phases per VM) while the
/// predicted objective stays per-run (divide the simulated total by this
/// to compare).
const STREAM_REPEATS: usize = 6;

/// Same compute-optimized second class as `ext_fleet`: 35% faster cores,
/// a quarter of the memory, 6x the sequential disk bandwidth.
fn big_machine() -> MachineSpec {
    let mut m = experiment_machine();
    m.cycles_per_sec *= 1.35;
    m.memory_bytes /= 4;
    m.disk_seq_bytes_per_sec *= 6.0;
    m
}

fn fleet_vms<'a>(t: &'a TpchDb, mixes: &'a [Workload], n: usize) -> Vec<FleetVm<'a>> {
    (0..n)
        .map(|i| {
            let mix = &mixes[i % mixes.len()];
            FleetVm::new(format!("vm{:04}-{}", i, mix.name), &t.db, mix.queries.clone())
                .with_weight(0.5 + (i % 5) as f64 * 0.45)
        })
        .collect()
}

fn main() {
    dbvirt_telemetry::enable();
    // Persistent sink: a day-long simulation stays profilable after the
    // fact without unbounded span memory. The flushed file is the same
    // version-1 JSON the exporters read.
    dbvirt_telemetry::attach_sink(
        SinkConfig::new("fleetsim_trace.json")
            .with_ring_capacity(8192)
            .with_flush_every(4096),
    );
    let wall_start = std::time::Instant::now();
    println!("Generating TPC-H (SF {:.3}) ...", TpchConfig::tiny().scale);
    let mut t = TpchDb::generate(TpchConfig::tiny()).expect("tpch generation");

    let mixes: Vec<Workload> = vec![
        Workload::compose(&t, &[(TpchQuery::Q6, 1)]),
        Workload::compose(&t, &[(TpchQuery::Q1, 1)]),
        Workload::compose(&t, &[(TpchQuery::Q14, 1)]),
        Workload::compose(&t, &[(TpchQuery::Q4, 1)]),
        Workload::compose(&t, &[(TpchQuery::Q6, 2)]),
        Workload::compose(&t, &[(TpchQuery::Q1, 1), (TpchQuery::Q6, 1)]),
    ];

    let cfg = {
        let mut c = FleetConfig::new(UNITS).with_parallelism(1);
        // 128 full machines: the placement is capacity-forced (every VM
        // at the 1-unit floor), so keep the ladder short — the sampled
        // swap neighborhood does the searching.
        c.max_rounds = 2;
        c.lp_iterations = 60;
        c
    };
    let small = experiment_machine();
    let big = big_machine();
    let classes = [small, big];

    // Measured demand streams, one engine run per (class, mix) pair under
    // the forced 1-unit share — the exact share the placement will grant.
    println!(
        "Measuring demand streams ({} classes x {} mixes = {} engine runs) ...",
        classes.len(),
        mixes.len(),
        classes.len() * mixes.len()
    );
    let floor_share = ResourceVector::from_fractions(
        1.0 / UNITS as f64,
        1.0 / UNITS as f64,
        cfg.disk_share,
    )
    .expect("floor share");
    let mut streams: Vec<Vec<VmJob>> = Vec::new();
    for class in classes {
        let per_mix = mixes
            .iter()
            .map(|mix| {
                let one = workload_demands(&mut t.db, &mix.queries, class, floor_share)
                    .expect("measured demands");
                let mut repeated = Vec::with_capacity(one.len() * STREAM_REPEATS);
                for _ in 0..STREAM_REPEATS {
                    repeated.extend(one.iter().copied());
                }
                VmJob::new(repeated)
            })
            .collect();
        streams.push(per_mix);
    }

    println!(
        "Calibrating both machine classes ({} grid points, disk share {:.3}) ...",
        UNITS, cfg.disk_share
    );
    let points: Vec<f64> = (1..=UNITS).map(|u| u as f64 / UNITS as f64).collect();
    let grid_small =
        CalibrationGrid::calibrate(small, points.clone(), points.clone(), cfg.disk_share)
            .expect("small-class calibration");
    let grid_big = CalibrationGrid::calibrate(big, points.clone(), points.clone(), cfg.disk_share)
        .expect("big-class calibration");
    let model_small = CalibratedCostModel::new(&grid_small);
    let model_big = CalibratedCostModel::new(&grid_big);
    let models: Vec<&dyn CostModel> = vec![&model_small, &model_big];

    let machines: Vec<MachineSpec> = std::iter::repeat(small)
        .take(SMALL_MACHINES)
        .chain(std::iter::repeat(big).take(BIG_MACHINES))
        .collect();
    assert!(VMS >= 1024 && machines.len() >= 32, "fleet below the EXT-FLEETSIM floor");
    let vms = fleet_vms(&t, &mixes, VMS);
    let problem = FleetProblem::new(machines.clone(), vms).expect("fleet problem");

    println!("Placing {} VMs across {} machines ...", VMS, machines.len());
    let place_start = std::time::Instant::now();
    let advisor = FleetAdvisor::new(machines.clone(), models, cfg).expect("advisor");
    let report = advisor.place(&problem).expect("placement");
    let place_secs = place_start.elapsed().as_secs_f64();
    println!(
        "FLEETSIM_FINGERPRINT placement={:016x}",
        report.fingerprint()
    );

    // Each VM runs the measured stream of its mix on the class it landed
    // on — demands depend on the class (a quarter of the memory changes
    // work_mem and the chosen plans), so the streams follow the placement.
    let jobs: Vec<VmJob> = (0..VMS)
        .map(|i| {
            let class = usize::from(report.placement.machine_of[i] >= SMALL_MACHINES);
            streams[class][i % mixes.len()].clone()
        })
        .collect();

    let mut rows = Vec::new();
    let mut mode_objs = Vec::new();
    let mut simulated = Vec::new();
    for (mode, tag) in [(SchedMode::Capped, "capped"), (SchedMode::WorkConserving, "wc")] {
        let start = std::time::Instant::now();
        let serial = simulate_placement(&problem, &report.placement, &jobs, &cfg, mode, 1)
            .expect("serial simulation");
        let serial_secs = start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        let parallel = simulate_placement(&problem, &report.placement, &jobs, &cfg, mode, 0)
            .expect("parallel simulation");
        let parallel_secs = start.elapsed().as_secs_f64();
        // Pin: machine-level parallelism must be invisible in the report.
        assert_eq!(
            serial, parallel,
            "{tag}: simulation diverged between serial and per-core parallel execution"
        );
        assert_eq!(serial.fingerprint(), parallel.fingerprint());
        println!("FLEETSIM_FINGERPRINT sim_{tag}={:016x}", serial.fingerprint());

        let events_per_sec = serial.stats.events as f64 / serial_secs.max(1e-9);
        let touch_per_event =
            serial.stats.vms_touched as f64 / serial.stats.events.max(1) as f64;
        rows.push(vec![
            tag.to_string(),
            format!("{}", serial.stats.events),
            format!("{:.2}", touch_per_event),
            format!("{}", serial.stats.heap_peak),
            format!("{:.3}s", serial.simulated_total),
            format!("{:.2}s", serial_secs),
            format!("{:.2}s", parallel_secs),
            format!("{:.0}", events_per_sec),
        ]);
        mode_objs.push(
            JsonObj::new()
                .str("mode", tag)
                .int("events", serial.stats.events as u64)
                .int("phase_completions", serial.stats.phase_completions as u64)
                .float("vms_touched_per_event", touch_per_event)
                .int("heap_peak", serial.stats.heap_peak as u64)
                .float("simulated_total_secs", serial.simulated_total)
                .float("serial_secs", serial_secs)
                .float("parallel_secs", parallel_secs)
                .float("events_per_sec", events_per_sec)
                .int("machines_occupied", serial.machines_occupied as u64)
                .str("fingerprint", &format!("{:016x}", serial.fingerprint()))
                .render(),
        );
        simulated.push(serial);
    }

    // Pin: work conservation never slows the fleet down.
    let (capped, wc) = (&simulated[0], &simulated[1]);
    assert!(
        wc.simulated_total <= capped.simulated_total * (1.0 + 1e-6) + 1e-6,
        "work-conserving total {:.3}s exceeds capped {:.3}s",
        wc.simulated_total,
        capped.simulated_total
    );
    // Pin: the model's predicted objective and the measured-stream
    // simulation describe the same fleet (per-run, order of magnitude).
    let per_run = capped.simulated_total / STREAM_REPEATS as f64;
    let ratio = per_run / capped.predicted_total;
    assert!(
        (0.1..=10.0).contains(&ratio),
        "simulated per-run total {per_run:.3}s vs predicted {:.3}s (ratio {ratio:.2}) — \
         model and simulation disagree wildly",
        capped.predicted_total
    );

    print_table(
        "EXT-FLEETSIM: 1024 VMs / 128 machines, placed then executed",
        &[
            "mode", "events", "touch/evt", "peak", "sim total", "serial", "parallel", "evt/s",
        ],
        &rows,
    );
    println!(
        "\nPredicted objective {:.3}s, simulated per-run total {:.3}s (ratio {:.2}); \
         placement took {:.2}s; serial and parallel simulations bit-identical in both modes.",
        capped.predicted_total, per_run, ratio, place_secs
    );

    let sink = dbvirt_telemetry::detach_sink().expect("sink was attached");
    let bench = JsonObj::new()
        .str("experiment", "ext_fleetsim")
        .float("wall_secs", wall_start.elapsed().as_secs_f64())
        .int("vms", VMS as u64)
        .int("machines", machines.len() as u64)
        .int("units", UNITS as u64)
        .int("stream_repeats", STREAM_REPEATS as u64)
        .float("place_secs", place_secs)
        .float("predicted_total_secs", capped.predicted_total)
        .float("simulated_per_run_secs", per_run)
        .float("predicted_vs_simulated_ratio", ratio)
        .float("optimality_gap", report.optimality_gap)
        .str("placement_fingerprint", &format!("{:016x}", report.fingerprint()))
        .int("sink_spans_retained", sink.spans_retained as u64)
        .int("sink_spans_dropped", sink.spans_dropped)
        .int("sink_flushes", sink.flushes)
        .raw("modes", json_array(&mode_objs));
    write_bench_artifact("BENCH_fleetsim.json", &bench.render());
}
