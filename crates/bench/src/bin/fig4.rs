//! Figure 4 — sensitivity of TPC-H Q4 and Q13 to the CPU share:
//! estimated vs actual execution times, normalized to the default 50%
//! allocation.
//!
//! Paper: "The estimated and actual execution times in the figure both
//! show that Q4 is not sensitive to changing the CPU allocation. Most
//! likely it is an I/O intensive query. On the other hand, Q13 is very
//! sensitive to changing the CPU allocation." Giving 25% to Q4 and 75% to
//! Q13 leaves Q4 roughly unchanged while Q13 improves by about a factor
//! of two.

use dbvirt_bench::{experiment_machine, fmt3, measure_query_warm, print_table};
use dbvirt_calibrate::CalibrationGrid;
use dbvirt_core::metrics::normalize_to;
use dbvirt_optimizer::whatif::estimate_query_seconds;
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery};
use dbvirt_vmm::ResourceVector;

fn main() {
    let machine = experiment_machine();
    let cpu_points = [0.25, 0.5, 0.75];
    let mem = 0.5;
    let disk = 0.5;

    println!(
        "Generating TPC-H (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let mut t = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");

    println!("Calibrating the optimizer at CPU {{25, 50, 75}}% / mem 50% ...");
    let grid = CalibrationGrid::calibrate(machine, cpu_points.to_vec(), vec![mem], disk)
        .expect("calibration");

    let mut table_rows = Vec::new();
    let mut summaries = Vec::new();
    for q in [TpchQuery::Q4, TpchQuery::Q13] {
        let logical = q.plan(&t);
        let mut estimated = Vec::new();
        let mut actual = Vec::new();
        for &cpu in &cpu_points {
            let shares = ResourceVector::from_fractions(cpu, mem, disk).expect("shares");
            let params = grid.params_for(shares).expect("grid lookup");
            estimated
                .push(estimate_query_seconds(&t.db, &logical, &params).expect("what-if estimate"));
            actual.push(
                measure_query_warm(&mut t.db, &logical, machine, shares).expect("measurement"),
            );
        }
        // Normalize to the 50% point, as in the paper.
        let est_norm = normalize_to(&estimated, 1).expect("normalize estimated");
        let act_norm = normalize_to(&actual, 1).expect("normalize actual");
        for (i, &cpu) in cpu_points.iter().enumerate() {
            table_rows.push(vec![
                q.to_string(),
                format!("{:.0}%", cpu * 100.0),
                fmt3(est_norm[i]),
                fmt3(act_norm[i]),
                format!("{:.3}s", estimated[i]),
                format!("{:.3}s", actual[i]),
            ]);
        }
        summaries.push((q, act_norm[0] / act_norm[2], est_norm[0] / est_norm[2]));
    }

    print_table(
        "Figure 4: Q4/Q13 sensitivity to CPU share (memory fixed at 50%), normalized to the 50% allocation",
        &["query", "cpu", "estimated(norm)", "actual(norm)", "est(abs)", "act(abs)"],
        &table_rows,
    );

    println!();
    for (q, act_ratio, est_ratio) in summaries {
        println!(
            "Shape check {q}: actual 25%/75% time ratio = {act_ratio:.2}, estimated = {est_ratio:.2} \
             (paper: Q4 ~flat, Q13 ~2x)"
        );
    }
    println!(
        "\nDesign implication (paper, Section 6): the model and the measurements agree that \
         moving CPU from Q4 to Q13 speeds Q13 up substantially while barely hurting Q4."
    );
}
