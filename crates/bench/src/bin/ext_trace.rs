//! EXT-TRACE — the telemetry end-to-end exercise and CI smoke gate.
//!
//! Runs a representative (small) consolidation scenario with global
//! telemetry enabled — calibrate an advisor, recommend an allocation with
//! parallel what-if evaluation, then validate one workload through the
//! measured oracle — and writes both exporter artifacts:
//!
//! * `TRACE_dump.json` — the self-contained JSON snapshot dump;
//! * `TRACE_chrome.json` — the Chrome `chrome://tracing` / Perfetto
//!   trace-event file (open via `chrome://tracing` or
//!   <https://ui.perfetto.dev>).
//!
//! Before writing, the snapshot must pass the structural validator
//! ([`dbvirt_telemetry::Snapshot::validate`]: zero leaked spans, parented
//! intervals nest), and the root `advisor.recommend` span's direct
//! children must account for ≥ 95% of its wall clock — the instrumented
//! pipeline is not allowed to lose time to untracked gaps. `scripts/
//! tier1.sh` runs this binary as the telemetry smoke gate; any failure
//! here exits non-zero.

use dbvirt_bench::{experiment_machine, write_bench_artifact};
use dbvirt_core::measure::measure_workload_seconds;
use dbvirt_core::{
    DesignProblem, SearchAlgorithm, TelemetrySummary, VirtualizationAdvisor, WorkloadSpec,
};
use dbvirt_telemetry as telemetry;
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};

fn main() {
    telemetry::enable();
    let machine = experiment_machine();
    // Experiment scale (not `tiny`): the root `advisor.recommend` span
    // must be long enough that per-span bookkeeping overhead stays well
    // under the 5% coverage budget checked below.
    let cfg = TpchConfig::experiment();
    println!("Generating TPC-H (SF {:.3}) ...", cfg.scale);
    let mut t = TpchDb::generate(cfg).expect("tpch generation");

    let n = 3;
    let units = 10;
    println!("Calibrating the advisor grid ({units} units, {n} workloads) ...");
    let advisor = VirtualizationAdvisor::calibrate(machine, n, units)
        .expect("advisor calibration")
        .with_parallelism(2);

    let mixes: Vec<Workload> = vec![
        Workload::compose(&t, &[(TpchQuery::Q4, 1)]),
        Workload::compose(&t, &[(TpchQuery::Q13, 3)]),
        Workload::compose(&t, &[(TpchQuery::Q1, 1), (TpchQuery::Q6, 1)]),
    ];
    let problem = DesignProblem::new(
        machine,
        mixes
            .iter()
            .map(|w| WorkloadSpec::new(w.name.clone(), &t.db, w.queries.clone()))
            .collect(),
    )
    .expect("problem");

    println!("Recommending (DP, 2 evaluation workers) ...");
    // Warm-up recommend: absorbs one-time lazy initialization (thread
    // spawn-up, telemetry cell registration) so the coverage check below
    // runs against a steady-state root span. The coverage check uses the
    // *last* `advisor.recommend` span.
    let warmup = advisor
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .expect("warm-up recommendation");
    let rec = advisor
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .expect("recommendation");
    assert_eq!(
        warmup.objective.to_bits(),
        rec.objective.to_bits(),
        "repeat recommendation must be deterministic"
    );
    println!(
        "Recommended allocation for {n} workloads: objective {:.3}s, {} evaluations.",
        rec.objective, rec.evaluations
    );

    // One measured-oracle run: exercises the engine operator spans, the
    // buffer-pool counters, and the virtual clock.
    let measured = measure_workload_seconds(
        &mut t.db,
        &mixes[0].queries,
        machine,
        rec.allocation.row(0),
    )
    .expect("measured validation");
    println!(
        "Measured {} under its recommended shares: {measured:.3}s simulated.",
        mixes[0].name
    );

    telemetry::disable();
    let snap = telemetry::snapshot();

    // --- Smoke-gate checks ---------------------------------------------
    if let Err(e) = snap.validate() {
        eprintln!("FAIL: telemetry snapshot is structurally invalid: {e}");
        std::process::exit(1);
    }
    if snap.open_spans != 0 {
        eprintln!("FAIL: {} spans leaked (still open)", snap.open_spans);
        std::process::exit(1);
    }
    let root = snap
        .last_span("advisor.recommend")
        .expect("advisor.recommend span recorded");
    let coverage = snap.child_coverage(root.id);
    println!(
        "Root span advisor.recommend: {:.3}ms wall, {:.1}% covered by direct children.",
        root.duration_ns() as f64 / 1e6,
        coverage * 100.0
    );
    if coverage < 0.95 {
        eprintln!(
            "FAIL: child spans cover only {:.1}% of the root span (need >= 95%)",
            coverage * 100.0
        );
        std::process::exit(1);
    }

    // --- Artifacts ------------------------------------------------------
    write_bench_artifact("TRACE_dump.json", &snap.to_json());
    write_bench_artifact("TRACE_chrome.json", &snap.to_chrome_trace());

    let summary = TelemetrySummary::capture();
    println!(
        "Telemetry summary: {} spans, {} counters, cache {}h/{}m (hit rate {}), \
         virtual clock {:.3}s.",
        snap.spans.len(),
        snap.counters.len(),
        summary.cache_hits,
        summary.cache_misses,
        summary
            .cache_hit_rate
            .map_or("n/a".to_string(), |r| format!("{:.1}%", r * 100.0)),
        snap.virtual_us as f64 / 1e6,
    );
    println!("OK: snapshot valid, zero leaked spans, coverage >= 95%.");
}
