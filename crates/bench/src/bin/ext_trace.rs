//! EXT-TRACE — the telemetry end-to-end exercise and CI smoke gate.
//!
//! Runs a representative (small) consolidation scenario with global
//! telemetry enabled — calibrate an advisor, recommend an allocation with
//! parallel what-if evaluation, then validate one workload through the
//! measured oracle — and writes both exporter artifacts:
//!
//! * `TRACE_dump.json` — the self-contained JSON snapshot dump;
//! * `TRACE_chrome.json` — the Chrome `chrome://tracing` / Perfetto
//!   trace-event file (open via `chrome://tracing` or
//!   <https://ui.perfetto.dev>).
//!
//! Before writing, the snapshot must pass the structural validator
//! ([`dbvirt_telemetry::Snapshot::validate`]: zero leaked spans, parented
//! intervals nest), and the root `advisor.recommend` span's direct
//! children must account for ≥ 95% of its wall clock — the instrumented
//! pipeline is not allowed to lose time to untracked gaps. `scripts/
//! tier1.sh` runs this binary as the telemetry smoke gate; any failure
//! here exits non-zero.

use dbvirt_bench::{experiment_machine, write_bench_artifact};
use dbvirt_calibrate::CalibrationGrid;
use dbvirt_core::measure::measure_workload_seconds;
use dbvirt_core::{
    DesignProblem, SearchAlgorithm, TelemetrySummary, VirtualizationAdvisor, WorkloadSpec,
};
use dbvirt_design::{DesignAdvisor, DesignConfig};
use dbvirt_sql::parse_query;
use dbvirt_telemetry as telemetry;
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};

fn main() {
    telemetry::enable();
    let machine = experiment_machine();
    // Experiment scale (not `tiny`): the root `advisor.recommend` span
    // must be long enough that per-span bookkeeping overhead stays well
    // under the 5% coverage budget checked below.
    let cfg = TpchConfig::experiment();
    println!("Generating TPC-H (SF {:.3}) ...", cfg.scale);
    let mut t = TpchDb::generate(cfg).expect("tpch generation");

    let n = 3;
    let units = 10;
    println!("Calibrating the advisor grid ({units} units, {n} workloads) ...");
    let advisor = VirtualizationAdvisor::calibrate(machine, n, units)
        .expect("advisor calibration")
        .with_parallelism(2);

    let mixes: Vec<Workload> = vec![
        Workload::compose(&t, &[(TpchQuery::Q4, 1)]),
        Workload::compose(&t, &[(TpchQuery::Q13, 3)]),
        Workload::compose(&t, &[(TpchQuery::Q1, 1), (TpchQuery::Q6, 1)]),
    ];
    let problem = DesignProblem::new(
        machine,
        mixes
            .iter()
            .map(|w| WorkloadSpec::new(w.name.clone(), &t.db, w.queries.clone()))
            .collect(),
    )
    .expect("problem");

    println!("Recommending (DP, 2 evaluation workers) ...");
    // Warm-up recommend: absorbs one-time lazy initialization (thread
    // spawn-up, telemetry cell registration) so the coverage check below
    // runs against a steady-state root span. The coverage check uses the
    // *last* `advisor.recommend` span.
    let warmup = advisor
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .expect("warm-up recommendation");
    let rec = advisor
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .expect("recommendation");
    assert_eq!(
        warmup.objective.to_bits(),
        rec.objective.to_bits(),
        "repeat recommendation must be deterministic"
    );
    println!(
        "Recommended allocation for {n} workloads: objective {:.3}s, {} evaluations.",
        rec.objective, rec.evaluations
    );

    // One measured-oracle run: exercises the engine operator spans, the
    // buffer-pool counters, and the virtual clock.
    let measured = measure_workload_seconds(
        &mut t.db,
        &mixes[0].queries,
        machine,
        rec.allocation.row(0),
    )
    .expect("measured validation");
    println!(
        "Measured {} under its recommended shares: {measured:.3}s simulated.",
        mixes[0].name
    );

    // --- Design-advisor exercise ----------------------------------------
    // A compact joint index+allocation run so the design.* instrumentation
    // lands in the same smoke gate: the subsystem's spans must be
    // recorded, its counters must move, and (checked below, after the
    // snapshot) the recommendation must be bit-identical with telemetry
    // disabled — tracing is observation-only.
    println!("Advising a joint index+allocation design (2 VMs) ...");
    let design_points = vec![0.25, 0.5, 0.75, 1.0];
    let design_grid =
        CalibrationGrid::calibrate(machine, design_points.clone(), design_points, 0.5)
            .expect("design grid calibration");
    // Lookup columns deliberately avoid the stock TPC-H index set so the
    // enumerator has real candidates to price.
    let lookups: Vec<_> = [
        "SELECT l_suppkey, l_quantity FROM lineitem WHERE l_suppkey = 17",
        "SELECT l_quantity, l_extendedprice FROM lineitem WHERE l_quantity = 3",
    ]
    .iter()
    .map(|s| parse_query(s, &t.db).expect("lookup SQL"))
    .collect();
    let design_problem = DesignProblem::new(
        machine,
        vec![
            WorkloadSpec::new("lookups".to_string(), &t.db, lookups),
            WorkloadSpec::new("scans".to_string(), &t.db, mixes[0].queries.clone()),
        ],
    )
    .expect("design problem");
    let design_advisor = DesignAdvisor::new(&design_grid, DesignConfig::new(4, 2).with_budget(4096));
    let design_on = design_advisor.advise(&design_problem).expect("joint design advice");
    println!(
        "Joint design: objective {:.3}s, {} alternations, {} evaluations.",
        design_on.objective, design_on.alternations, design_on.evaluations
    );

    telemetry::disable();
    let snap = telemetry::snapshot();

    // --- Smoke-gate checks ---------------------------------------------
    if let Err(e) = snap.validate() {
        eprintln!("FAIL: telemetry snapshot is structurally invalid: {e}");
        std::process::exit(1);
    }
    if snap.open_spans != 0 {
        eprintln!("FAIL: {} spans leaked (still open)", snap.open_spans);
        std::process::exit(1);
    }
    let root = snap
        .last_span("advisor.recommend")
        .expect("advisor.recommend span recorded");
    let coverage = snap.child_coverage(root.id);
    println!(
        "Root span advisor.recommend: {:.3}ms wall, {:.1}% covered by direct children.",
        root.duration_ns() as f64 / 1e6,
        coverage * 100.0
    );
    if coverage < 0.95 {
        eprintln!(
            "FAIL: child spans cover only {:.1}% of the root span (need >= 95%)",
            coverage * 100.0
        );
        std::process::exit(1);
    }

    // Design subsystem instrumentation: the advise run above must have
    // recorded the whole span family and moved the what-if counters.
    for name in [
        "design.advise",
        "design.enumerate",
        "design.whatif",
        "design.alternate",
    ] {
        if snap.last_span(name).is_none() {
            eprintln!("FAIL: no {name} span recorded");
            std::process::exit(1);
        }
    }
    for name in [
        "design.candidates",
        "design.whatif_calls",
        "design.cache_hits",
        "design.alternations",
    ] {
        match snap.counter(name) {
            Some(v) if v > 0 => {}
            other => {
                eprintln!("FAIL: counter {name} did not move (got {other:?})");
                std::process::exit(1);
            }
        }
    }
    if snap.counter("design.pruned").is_none() {
        eprintln!("FAIL: counter design.pruned was never registered");
        std::process::exit(1);
    }
    println!(
        "Design instrumentation: {} what-if calls, {} cache hits, {} candidates.",
        snap.counter("design.whatif_calls").unwrap_or(0),
        snap.counter("design.cache_hits").unwrap_or(0),
        snap.counter("design.candidates").unwrap_or(0),
    );

    // Telemetry must be observation-only: the same advise with tracing
    // disabled returns the identical recommendation, bit for bit.
    let design_off = design_advisor
        .advise(&design_problem)
        .expect("design advice with telemetry off");
    assert_eq!(
        design_on.fingerprint, design_off.fingerprint,
        "design recommendation fingerprint changed when telemetry was disabled"
    );
    assert_eq!(
        design_on.objective.to_bits(),
        design_off.objective.to_bits(),
        "design objective bits changed when telemetry was disabled"
    );
    println!("Design on/off check OK: telemetry is invisible in the recommendation.");

    // --- Artifacts ------------------------------------------------------
    write_bench_artifact("TRACE_dump.json", &snap.to_json());
    write_bench_artifact("TRACE_chrome.json", &snap.to_chrome_trace());

    let summary = TelemetrySummary::capture();
    println!(
        "Telemetry summary: {} spans, {} counters, cache {}h/{}m (hit rate {}), \
         virtual clock {:.3}s.",
        snap.spans.len(),
        snap.counters.len(),
        summary.cache_hits,
        summary.cache_misses,
        summary
            .cache_hit_rate
            .map_or("n/a".to_string(), |r| format!("{:.1}%", r * 100.0)),
        snap.virtual_us as f64 / 1e6,
    );
    println!("OK: snapshot valid, zero leaked spans, coverage >= 95%.");
}
