//! EXT-CONSOL — server consolidation at N > 2 (the paper's Section 1.1
//! motivation: "organizations typically have multiple database servers …
//! database systems would stand to benefit from such server
//! consolidation").
//!
//! Consolidates four heterogeneous TPC-H workloads onto one machine and
//! compares the advisor's DP recommendation against the default equal
//! split, both on predicted cost and on *measured* solo execution under
//! the recommended shares (the validation side of the paper's
//! methodology).

use dbvirt_bench::{
    cache_counters, experiment_machine, json_array, print_table, report_parallel_speedup,
    write_bench_artifact, JsonObj,
};
use dbvirt_core::measure::measure_workload_seconds;
use dbvirt_core::{
    metrics, CalibratedCostModel, DesignProblem, SearchAlgorithm, VirtualizationAdvisor,
    WorkloadSpec,
};
use dbvirt_fleet::{FleetAdvisor, FleetConfig, FleetProblem, FleetVm};
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt_vmm::{ResourceVector, Share};

fn main() {
    dbvirt_telemetry::enable();
    let wall_start = std::time::Instant::now();
    let machine = experiment_machine();
    println!(
        "Generating TPC-H (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let mut t = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");

    let n = 4;
    let units = 8;
    println!("Calibrating the advisor grid ({units} units, {n} workloads) ...");
    let advisor = VirtualizationAdvisor::calibrate(machine, n, units).expect("advisor calibration");

    let mixes: Vec<Workload> = vec![
        Workload::compose(&t, &[(TpchQuery::Q4, 2)]), // I/O-bound
        Workload::compose(&t, &[(TpchQuery::Q13, 15)]), // CPU-bound
        Workload::compose(&t, &[(TpchQuery::Q1, 1), (TpchQuery::Q6, 2)]), // mixed scan
        Workload::compose(&t, &[(TpchQuery::Q3, 1), (TpchQuery::Q14, 1)]), // mixed join
    ];
    let problem = DesignProblem::new(
        machine,
        mixes
            .iter()
            .map(|w| WorkloadSpec::new(w.name.clone(), &t.db, w.queries.clone()))
            .collect(),
    )
    .expect("problem");

    let (hits_before, misses_before) = cache_counters();
    let search_start = std::time::Instant::now();
    let rec = advisor
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .expect("recommendation");
    let search_secs = search_start.elapsed().as_secs_f64();
    let (hits_after, misses_after) = cache_counters();
    let (hits, misses) = (hits_after - hits_before, misses_after - misses_before);
    let model = CalibratedCostModel::new(advisor.grid());
    let equal_costs = metrics::equal_split_costs(&problem, &model).expect("baseline");

    // Degenerate-fleet gate: the same consolidation served through the
    // fleet advisor with M = 1 machine must reproduce this recommendation
    // bit-for-bit (same cost model, same grid, same disk policy).
    let fleet_cfg = FleetConfig::new(units)
        .with_disk_share(1.0 / n as f64)
        .with_parallelism(1);
    let fleet_advisor =
        FleetAdvisor::new(vec![machine], vec![&model], fleet_cfg).expect("fleet advisor");
    let fleet_problem = FleetProblem::new(
        vec![machine],
        mixes
            .iter()
            .map(|w| FleetVm::new(w.name.clone(), &t.db, w.queries.clone()))
            .collect(),
    )
    .expect("fleet problem");
    let fleet_report = fleet_advisor.place(&fleet_problem).expect("fleet placement");
    assert!(
        fleet_report.placement.machine_of.iter().all(|&m| m == 0),
        "fleet M=1: some VM left the only machine"
    );
    assert_eq!(
        fleet_report.placement.steady_objective, rec.objective,
        "fleet M=1 objective differs from the single-machine recommendation"
    );
    for (i, row) in rec.allocation.rows().enumerate() {
        let cpu = (row.cpu().fraction() * units as f64).round() as u32;
        let mem = (row.memory().fraction() * units as f64).round() as u32;
        assert_eq!(
            fleet_report.placement.units_of[i],
            (cpu, mem),
            "fleet M=1: workload {i} units differ from the recommendation"
        );
    }
    println!(
        "Fleet degenerate check OK: M=1 placement == advisor recommendation (bit-exact), \
         LP-certified within {:.1}%.",
        fleet_report.optimality_gap * 100.0
    );

    println!("\nSerial vs parallel what-if evaluation (cold caches each run):");
    report_parallel_speedup(
        "EXT-CONSOL",
        SearchAlgorithm::DynamicProgramming,
        &problem,
        &model,
        advisor.config(),
    );

    let equal_share = Share::new(1.0 / n as f64).expect("share");
    let mut rows = Vec::new();
    let mut measured_rec_total = 0.0;
    let mut measured_eq_total = 0.0;
    for (i, w) in mixes.iter().enumerate() {
        let rec_shares = rec.allocation.row(i);
        let eq_shares = ResourceVector::uniform(equal_share);
        let measured_rec = measure_workload_seconds(&mut t.db, &w.queries, machine, rec_shares)
            .expect("measured (recommended)");
        let measured_eq = measure_workload_seconds(&mut t.db, &w.queries, machine, eq_shares)
            .expect("measured (equal)");
        measured_rec_total += measured_rec;
        measured_eq_total += measured_eq;
        rows.push(vec![
            w.name.clone(),
            format!(
                "cpu {:.0}% mem {:.0}%",
                rec_shares.cpu().percent(),
                rec_shares.memory().percent()
            ),
            format!("{:.3}s", rec.per_workload_costs[i]),
            format!("{:.3}s", equal_costs[i]),
            format!("{:.3}s", measured_rec),
            format!("{:.3}s", measured_eq),
        ]);
    }

    print_table(
        "EXT-CONSOL: 4-workload consolidation, advisor (DP) vs equal split",
        &[
            "workload",
            "recommended shares",
            "pred (rec)",
            "pred (equal)",
            "measured (rec)",
            "measured (equal)",
        ],
        &rows,
    );
    println!(
        "\nTotals: predicted {:.3}s vs {:.3}s equal split ({:.2}x); measured {:.3}s vs {:.3}s ({:.2}x).",
        rec.total_cost,
        equal_costs.iter().sum::<f64>(),
        equal_costs.iter().sum::<f64>() / rec.total_cost,
        measured_rec_total,
        measured_eq_total,
        measured_eq_total / measured_rec_total,
    );
    println!(
        "Shape check: the advisor's allocation beats the equal split on measured time, and the \
         biggest share skews go to the most resource-skewed workloads."
    );

    let workload_objs: Vec<String> = mixes
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let shares = rec.allocation.row(i);
            JsonObj::new()
                .str("workload", &w.name)
                .float("cpu_share", shares.cpu().fraction())
                .float("mem_share", shares.memory().fraction())
                .float("predicted_rec_secs", rec.per_workload_costs[i])
                .float("predicted_equal_secs", equal_costs[i])
                .render()
        })
        .collect();
    let lookups = hits + misses;
    let bench = JsonObj::new()
        .str("experiment", "ext_consolidation")
        .float("wall_secs", wall_start.elapsed().as_secs_f64())
        .int("workloads", n as u64)
        .int("units", units as u64)
        .str("algorithm", rec.algorithm)
        .float("search_secs", search_secs)
        .int("evaluations", rec.evaluations as u64)
        .int("cache_hits", hits)
        .int("cache_misses", misses)
        .float(
            "cache_hit_rate",
            if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                f64::NAN
            },
        )
        .float("predicted_rec_total_secs", rec.total_cost)
        .float("predicted_equal_total_secs", equal_costs.iter().sum::<f64>())
        .float("measured_rec_total_secs", measured_rec_total)
        .float("measured_equal_total_secs", measured_eq_total)
        .raw("per_workload", json_array(&workload_objs));
    write_bench_artifact("BENCH_consolidation.json", &bench.render());
}
