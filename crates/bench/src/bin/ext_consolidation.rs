//! EXT-CONSOL — server consolidation at N > 2 (the paper's Section 1.1
//! motivation: "organizations typically have multiple database servers …
//! database systems would stand to benefit from such server
//! consolidation").
//!
//! Consolidates four heterogeneous TPC-H workloads onto one machine and
//! compares the advisor's DP recommendation against the default equal
//! split, both on predicted cost and on *measured* solo execution under
//! the recommended shares (the validation side of the paper's
//! methodology).

use dbvirt_bench::{experiment_machine, print_table, report_parallel_speedup};
use dbvirt_core::measure::measure_workload_seconds;
use dbvirt_core::{
    metrics, CalibratedCostModel, DesignProblem, SearchAlgorithm, VirtualizationAdvisor,
    WorkloadSpec,
};
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt_vmm::{ResourceVector, Share};

fn main() {
    let machine = experiment_machine();
    println!(
        "Generating TPC-H (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let mut t = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");

    let n = 4;
    let units = 8;
    println!("Calibrating the advisor grid ({units} units, {n} workloads) ...");
    let advisor = VirtualizationAdvisor::calibrate(machine, n, units).expect("advisor calibration");

    let mixes: Vec<Workload> = vec![
        Workload::compose(&t, &[(TpchQuery::Q4, 2)]), // I/O-bound
        Workload::compose(&t, &[(TpchQuery::Q13, 15)]), // CPU-bound
        Workload::compose(&t, &[(TpchQuery::Q1, 1), (TpchQuery::Q6, 2)]), // mixed scan
        Workload::compose(&t, &[(TpchQuery::Q3, 1), (TpchQuery::Q14, 1)]), // mixed join
    ];
    let problem = DesignProblem::new(
        machine,
        mixes
            .iter()
            .map(|w| WorkloadSpec::new(w.name.clone(), &t.db, w.queries.clone()))
            .collect(),
    )
    .expect("problem");

    let rec = advisor
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .expect("recommendation");
    let model = CalibratedCostModel::new(advisor.grid());
    let equal_costs = metrics::equal_split_costs(&problem, &model).expect("baseline");

    println!("\nSerial vs parallel what-if evaluation (cold caches each run):");
    report_parallel_speedup(
        "EXT-CONSOL",
        SearchAlgorithm::DynamicProgramming,
        &problem,
        &model,
        advisor.config(),
    );

    let equal_share = Share::new(1.0 / n as f64).expect("share");
    let mut rows = Vec::new();
    let mut measured_rec_total = 0.0;
    let mut measured_eq_total = 0.0;
    for (i, w) in mixes.iter().enumerate() {
        let rec_shares = rec.allocation.row(i);
        let eq_shares = ResourceVector::uniform(equal_share);
        let measured_rec = measure_workload_seconds(&mut t.db, &w.queries, machine, rec_shares)
            .expect("measured (recommended)");
        let measured_eq = measure_workload_seconds(&mut t.db, &w.queries, machine, eq_shares)
            .expect("measured (equal)");
        measured_rec_total += measured_rec;
        measured_eq_total += measured_eq;
        rows.push(vec![
            w.name.clone(),
            format!(
                "cpu {:.0}% mem {:.0}%",
                rec_shares.cpu().percent(),
                rec_shares.memory().percent()
            ),
            format!("{:.3}s", rec.per_workload_costs[i]),
            format!("{:.3}s", equal_costs[i]),
            format!("{:.3}s", measured_rec),
            format!("{:.3}s", measured_eq),
        ]);
    }

    print_table(
        "EXT-CONSOL: 4-workload consolidation, advisor (DP) vs equal split",
        &[
            "workload",
            "recommended shares",
            "pred (rec)",
            "pred (equal)",
            "measured (rec)",
            "measured (equal)",
        ],
        &rows,
    );
    println!(
        "\nTotals: predicted {:.3}s vs {:.3}s equal split ({:.2}x); measured {:.3}s vs {:.3}s ({:.2}x).",
        rec.total_cost,
        equal_costs.iter().sum::<f64>(),
        equal_costs.iter().sum::<f64>() / rec.total_cost,
        measured_rec_total,
        measured_eq_total,
        measured_eq_total / measured_rec_total,
    );
    println!(
        "Shape check: the advisor's allocation beats the equal split on measured time, and the \
         biggest share skews go to the most resource-skewed workloads."
    );
}
