//! EXT-DESIGN — the physical-design advisor: joint secondary-index
//! selection and resource allocation over a scan-only TPC-H database.
//!
//! The lookup VM's queries enter as **SQL text** and run through the
//! full parser → binder → optimizer pipeline, so this experiment closes
//! the SQL → plan loop end to end: the same what-if pricer the advisor
//! uses is fed by plans the SQL frontend produced, not hand-built ones.
//!
//! Pins enforced by this binary (and replayed by `scripts/design.sh`):
//!
//! * on the pinned `duo` scenario the joint advisor **strictly** beats
//!   both marginals (index-only at the equal split, allocation-only
//!   with no indexes);
//! * the per-VM Lagrangian bound certifies every answer within a 25%
//!   optimality gap;
//! * with a zero storage budget the joint loop degenerates to the
//!   allocation-only answer bit-for-bit;
//! * recommendations are bit-identical at pre-warm parallelism 1 and 0
//!   (`DESIGN_FINGERPRINT` lines, diffed across two process runs).

use dbvirt_bench::{experiment_machine, json_array, print_table, write_bench_artifact, JsonObj};
use dbvirt_calibrate::CalibrationGrid;
use dbvirt_core::{DesignProblem, WorkloadSpec};
use dbvirt_design::{DesignAdvisor, DesignConfig, JointRecommendation};
use dbvirt_optimizer::LogicalPlan;
use dbvirt_sql::parse_query;
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery};
use dbvirt_vmm::MachineSpec;

/// [`experiment_machine`] with an SSD-class random-read rate. The
/// paper-era testbed disk (100 iops) charges ~40 ms per heap fetch at a
/// quarter disk share — no selectivity can amortize that, so secondary
/// indexes never beat a sequential scan and the design problem is
/// vacuous. 2000 iops keeps scan bandwidth identical but lets selective
/// lookups win wherever the working set spills out of the buffer cache,
/// which is exactly the regime the joint advisor is built for.
fn design_machine() -> MachineSpec {
    let mut m = experiment_machine();
    m.disk_random_iops = 2000.0;
    m
}

const UNITS: u32 = 8;
/// Fixed per-VM disk share: one calibration grid serves the 2-VM and
/// 3-VM scenarios alike.
const DISK_SHARE: f64 = 0.25;

/// The lookup VM's workload, as SQL text. Selective point and small-range
/// predicates on `lineitem` — the one table big enough that the
/// experiment machine cannot cache it at scarce memory shares, so
/// secondary indexes actually pay for their random I/O.
const LOOKUP_SQL: &[&str] = &[
    "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_orderkey = 4242",
    "SELECT l_partkey, l_extendedprice FROM lineitem WHERE l_partkey = 271",
    "SELECT l_orderkey, l_extendedprice FROM lineitem WHERE l_orderkey IN (11, 901, 17777)",
];

fn sql_plans(t: &TpchDb, sqls: &[&str]) -> Vec<LogicalPlan> {
    sqls.iter()
        .map(|s| parse_query(s, &t.db).expect("lookup SQL must parse and bind"))
        .collect()
}

/// Human-readable `table(col, col)` label for a chosen index.
fn index_label(t: &TpchDb, c: &dbvirt_design::IndexCandidate) -> String {
    let meta = t.db.table(c.table);
    let cols: Vec<&str> = c
        .columns
        .iter()
        .map(|&i| meta.schema.field(i).name.as_str())
        .collect();
    format!("{}({})", meta.name, cols.join(", "))
}

fn mode_json(t: &TpchDb, rec: &JointRecommendation) -> String {
    let vms: Vec<String> = rec
        .per_vm
        .iter()
        .zip(&rec.cells)
        .map(|(vm, &(cpu, mem))| {
            let chosen: Vec<String> = vm
                .chosen
                .iter()
                .map(|c| format!("\"{}\"", index_label(t, c)))
                .collect();
            JsonObj::new()
                .str("name", &vm.name)
                .int("cpu_units", cpu as u64)
                .int("mem_units", mem as u64)
                .int("candidates", vm.num_candidates as u64)
                .int("pruned", vm.pruned as u64)
                .raw("chosen", format!("[{}]", chosen.join(",")))
                .int("pages_used", vm.pages_used)
                .float("cost_secs", vm.cost)
                .float("lp_bound_secs", vm.lp.bound)
                .int("lp_iterations", vm.lp.iterations as u64)
                .render()
        })
        .collect();
    JsonObj::new()
        .str("mode", rec.mode)
        .float("objective_secs", rec.objective)
        .float("lp_bound_secs", rec.lp_bound)
        .float("optimality_gap", rec.optimality_gap)
        .int("alternations", rec.alternations as u64)
        .int("evaluations", rec.evaluations as u64)
        .str("fingerprint", &format!("{:016x}", rec.fingerprint))
        .raw("vms", json_array(&vms))
        .render()
}

fn main() {
    dbvirt_telemetry::enable();
    let wall_start = std::time::Instant::now();
    println!(
        "Generating scan-only TPC-H (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let t = TpchDb::generate(TpchConfig::experiment().scan_only()).expect("tpch generation");
    let machine = design_machine();

    println!(
        "Calibrating ({} grid points, disk share {:.3}) ...",
        UNITS, DISK_SHARE
    );
    let points: Vec<f64> = (1..=UNITS).map(|u| u as f64 / UNITS as f64).collect();
    let grid = CalibrationGrid::calibrate(machine, points.clone(), points, DISK_SHARE)
        .expect("calibration");

    // The three VM personalities. Lookups arrive as SQL text; the report
    // and mixed mixes reuse the benchmark's stock logical plans.
    let lookups = sql_plans(&t, LOOKUP_SQL);
    let reports = vec![TpchQuery::Q1.plan(&t), TpchQuery::Q14.plan(&t)];
    let mixed = vec![
        TpchQuery::Q6.plan(&t),
        parse_query(
            "SELECT l_orderkey, l_quantity FROM lineitem WHERE l_orderkey = 31337",
            &t.db,
        )
        .expect("mixed lookup SQL"),
    ];

    struct Scenario<'a> {
        name: &'static str,
        budget_pages: u64,
        workloads: Vec<WorkloadSpec<'a>>,
    }
    let duo = |budget| Scenario {
        name: "duo",
        budget_pages: budget,
        workloads: vec![
            WorkloadSpec::new("lookups".to_string(), &t.db, lookups.clone()),
            WorkloadSpec::new("reports".to_string(), &t.db, reports.clone()),
        ],
    };
    let scenarios = vec![
        duo(2600),
        Scenario {
            name: "trio",
            budget_pages: 2600,
            workloads: vec![
                WorkloadSpec::new("lookups".to_string(), &t.db, lookups.clone()),
                WorkloadSpec::new("reports".to_string(), &t.db, reports.clone()),
                WorkloadSpec::new("mixed".to_string(), &t.db, mixed.clone()),
            ],
        },
        Scenario {
            name: "frozen",
            budget_pages: 0,
            ..duo(0)
        },
    ];

    // Cumulative design.* counter readings; per-scenario deltas give the
    // what-if cache hit rate the artifact records.
    let design_counters = || {
        let snap = dbvirt_telemetry::snapshot();
        (
            snap.counter("design.whatif_calls").unwrap_or(0),
            snap.counter("design.cache_hits").unwrap_or(0),
        )
    };

    let mut rows = Vec::new();
    let mut scenario_objs = Vec::new();
    for sc in &scenarios {
        let n = sc.workloads.len();
        let (whatif_before, hits_before) = design_counters();
        let problem =
            DesignProblem::new(machine, sc.workloads.clone()).expect("design problem");
        let mut cfg = DesignConfig::new(UNITS, n).with_budget(sc.budget_pages);
        cfg.disk_share = DISK_SHARE;
        let advisor = DesignAdvisor::new(&grid, cfg);

        let start = std::time::Instant::now();
        let joint = advisor.advise(&problem).expect("joint advice");
        let serial_secs = start.elapsed().as_secs_f64();
        let index_only = advisor.advise_index_only(&problem).expect("index-only");
        let alloc_only = advisor
            .advise_allocation_only(&problem)
            .expect("allocation-only");

        // Pin: pre-warm parallelism must be invisible in the answer.
        let par_advisor = DesignAdvisor::new(&grid, cfg.with_parallelism(0));
        let start = std::time::Instant::now();
        let joint_par = par_advisor.advise(&problem).expect("parallel joint advice");
        let parallel_secs = start.elapsed().as_secs_f64();
        assert_eq!(
            joint.fingerprint, joint_par.fingerprint,
            "{}: recommendation diverged between pre-warm parallelism 1 and 0",
            sc.name
        );
        assert_eq!(
            joint.objective.to_bits(),
            joint_par.objective.to_bits(),
            "{}: objective bits diverged across parallelism",
            sc.name
        );

        // Pin: joint never loses to either marginal, and the alternation
        // history is monotone.
        for w in joint.alternation_objectives.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "{}: alternation objective rose {} -> {}",
                sc.name,
                w[0],
                w[1]
            );
        }
        assert!(
            joint.objective <= index_only.objective + 1e-9,
            "{}: joint {} lost to index-only {}",
            sc.name,
            joint.objective,
            index_only.objective
        );
        assert!(
            joint.objective <= alloc_only.objective + 1e-9,
            "{}: joint {} lost to allocation-only {}",
            sc.name,
            joint.objective,
            alloc_only.objective
        );
        // Pin: on the pinned scenario the joint loop beats both
        // marginals STRICTLY — co-optimization buys real headroom.
        if sc.name == "duo" {
            assert!(
                joint.objective < index_only.objective * (1.0 - 1e-6),
                "duo: joint {} does not strictly beat index-only {}",
                joint.objective,
                index_only.objective
            );
            assert!(
                joint.objective < alloc_only.objective * (1.0 - 1e-6),
                "duo: joint {} does not strictly beat allocation-only {}",
                joint.objective,
                alloc_only.objective
            );
            assert!(
                !joint.per_vm[0].chosen.is_empty(),
                "duo: the lookup VM chose no index"
            );
        }
        // Pin: with no storage budget the joint loop degenerates to the
        // allocation-only answer, bit for bit.
        if sc.name == "frozen" {
            assert_eq!(
                joint.objective.to_bits(),
                alloc_only.objective.to_bits(),
                "frozen: zero-budget joint differs from allocation-only"
            );
            assert!(joint.per_vm.iter().all(|vm| vm.mask == 0));
        }
        // Pin: the LP gap certifies every answer within 25%.
        for rec in [&joint, &index_only, &alloc_only] {
            assert!(
                rec.optimality_gap <= 0.25,
                "{}/{}: optimality gap {:.1}% exceeds the 25% pin",
                sc.name,
                rec.mode,
                rec.optimality_gap * 100.0
            );
            assert!(
                rec.lp_bound <= rec.objective + 1e-9,
                "{}/{}: LP bound above the objective",
                sc.name,
                rec.mode
            );
        }

        for rec in [&joint, &index_only, &alloc_only] {
            println!(
                "DESIGN_FINGERPRINT {}.{}={:016x}",
                sc.name, rec.mode, rec.fingerprint
            );
        }

        let chosen_total: usize = joint.per_vm.iter().map(|vm| vm.chosen.len()).sum();
        let cells: Vec<String> = joint
            .cells
            .iter()
            .map(|&(c, m)| format!("{c}c{m}m"))
            .collect();
        rows.push(vec![
            sc.name.to_string(),
            format!("{n}"),
            format!("{}", sc.budget_pages),
            format!("{:.3}s", joint.objective),
            format!("{:.3}s", index_only.objective),
            format!("{:.3}s", alloc_only.objective),
            format!("{:.3}s", joint.lp_bound),
            format!("{:.1}%", joint.optimality_gap * 100.0),
            format!("{chosen_total}"),
            cells.join(" "),
            format!("{:.2}s", serial_secs),
        ]);
        let (whatif_after, hits_after) = design_counters();
        let whatif_calls = whatif_after - whatif_before;
        let cache_hits = hits_after - hits_before;
        let lookups = whatif_calls + cache_hits;
        scenario_objs.push(
            JsonObj::new()
                .str("scenario", sc.name)
                .int("vms", n as u64)
                .int("budget_pages", sc.budget_pages)
                .float("serial_secs", serial_secs)
                .float("parallel_secs", parallel_secs)
                .float(
                    "joint_vs_index_only_secs",
                    index_only.objective - joint.objective,
                )
                .float(
                    "joint_vs_alloc_only_secs",
                    alloc_only.objective - joint.objective,
                )
                .int("whatif_calls", whatif_calls)
                .int("cache_hits", cache_hits)
                .float(
                    "cache_hit_rate",
                    if lookups == 0 {
                        0.0
                    } else {
                        cache_hits as f64 / lookups as f64
                    },
                )
                .raw(
                    "modes",
                    json_array(&[
                        mode_json(&t, &joint),
                        mode_json(&t, &index_only),
                        mode_json(&t, &alloc_only),
                    ]),
                )
                .render(),
        );
    }

    print_table(
        "EXT-DESIGN: joint index selection + allocation vs the marginals",
        &[
            "scenario", "vms", "budget", "joint", "idx-only", "alloc-only", "LP bound", "gap",
            "indexes", "cells", "wall",
        ],
        &rows,
    );
    println!(
        "\nShape check: joint ≤ both marginals everywhere (strict on `duo`), every answer \
         LP-certified ≤ 25%, zero budget degenerates to allocation-only bit-for-bit."
    );

    let bench = JsonObj::new()
        .str("experiment", "ext_design")
        .float("wall_secs", wall_start.elapsed().as_secs_f64())
        .int("units", UNITS as u64)
        .float("disk_share", DISK_SHARE)
        .float("tpch_scale", TpchConfig::experiment().scale)
        .raw("scenarios", json_array(&scenario_objs));
    write_bench_artifact("BENCH_design.json", &bench.render());
}
