//! EXT-CHAOS — the calibration pipeline under injected faults.
//!
//! Replays point calibrations and full grid sweeps across a sweep of
//! fault-injection seeds and noise intensities, and fails (non-zero exit)
//! on any panic, unexpected error, or out-of-tolerance fit. This is the
//! chaos gate behind `scripts/chaos.sh`: because the [`FaultInjector`] is
//! seeded and stateless, any failure it finds is replayable by seed.
//!
//! Environment knobs:
//!
//! * `CHAOS_SEEDS` — how many seeds per intensity (default 6);
//! * `CHAOS_BASE_SEED` — first seed (default 1).
//!
//! Tolerances (vs. the noise-free fit, non-degraded cells only):
//! `unit_seconds` within 15%, `random_page_cost` within 40%,
//! `cpu_tuple_cost` within 50%. These match the documented bounds in
//! DESIGN.md and the integration suite.

use dbvirt_calibrate::runner::{calibrate_with, calibrate_with_config};
use dbvirt_calibrate::{CalibrationConfig, CalibrationGrid, ProbeDb};
use dbvirt_bench::print_table;
use dbvirt_vmm::{FaultInjector, MachineSpec, NoiseModel, ResourceVector};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn within(a: f64, b: f64, tol: f64) -> bool {
    a > 0.0 && b > 0.0 && a / b < 1.0 + tol && b / a < 1.0 + tol
}

struct Outcome {
    label: String,
    cells: usize,
    degraded: usize,
    retries: usize,
    outliers: usize,
    ridge: usize,
    violations: Vec<String>,
}

/// One grid sweep under the composite fault model; returns per-sweep
/// accounting plus every tolerance violation found.
fn chaos_grid_sweep(
    machine: MachineSpec,
    clean: &CalibrationGrid,
    jitter: f64,
    seed: u64,
) -> Result<Outcome, String> {
    let injector = FaultInjector::new(NoiseModel::realistic(jitter), seed);
    let rcfg = CalibrationConfig::robust().with_injector(injector);
    let (cpu_axis, mem_axis) = clean.axes();
    let noisy = CalibrationGrid::calibrate_with_config(
        machine,
        cpu_axis.to_vec(),
        mem_axis.to_vec(),
        clean.disk_share(),
        &rcfg,
    )
    .map_err(|e| format!("jitter {jitter} seed {seed}: sweep failed: {e}"))?;
    let health = noisy.health();
    let mut violations = Vec::new();
    for c in 0..cpu_axis.len() {
        for m in 0..mem_axis.len() {
            let report = noisy.report_at(c, m);
            if report.degraded {
                continue; // interpolated, flagged, and excluded from tolerance
            }
            let p = noisy.at_point(c, m);
            let q = clean.at_point(c, m);
            for (name, a, b, tol) in [
                ("unit_seconds", p.unit_seconds, q.unit_seconds, 0.15),
                (
                    "random_page_cost",
                    p.random_page_cost,
                    q.random_page_cost,
                    0.40,
                ),
                ("cpu_tuple_cost", p.cpu_tuple_cost, q.cpu_tuple_cost, 0.50),
            ] {
                if !within(a, b, tol) {
                    violations.push(format!(
                        "jitter {jitter} seed {seed} cell ({c},{m}): {name} {a:.4e} vs clean {b:.4e} (tol {tol})"
                    ));
                }
            }
        }
    }
    Ok(Outcome {
        label: format!("grid j={jitter:.2} s={seed}"),
        cells: health.cells,
        degraded: health.degraded_cells,
        retries: health.total_retries,
        outliers: health.total_rejected_outliers,
        ridge: health.ridge_cells,
        violations,
    })
}

/// Point calibrations at a few allocations; same tolerances.
fn chaos_points(
    pdb: &mut ProbeDb,
    machine: MachineSpec,
    jitter: f64,
    seed: u64,
) -> Result<Outcome, String> {
    let injector = FaultInjector::new(NoiseModel::realistic(jitter), seed);
    let rcfg = CalibrationConfig::robust().with_injector(injector);
    let mut retries = 0;
    let mut outliers = 0;
    let mut ridge = 0;
    let mut violations = Vec::new();
    let allocations = [(0.5, 0.5, 0.5), (0.25, 0.75, 0.5), (0.75, 0.25, 0.5)];
    for (cpu, mem, disk) in allocations {
        let shares = ResourceVector::from_fractions(cpu, mem, disk)
            .map_err(|e| format!("shares: {e}"))?;
        let clean = calibrate_with(pdb, machine, shares)
            .map_err(|e| format!("clean calibration failed: {e}"))?;
        let noisy = calibrate_with_config(pdb, machine, shares, &rcfg).map_err(|e| {
            format!("jitter {jitter} seed {seed} at ({cpu},{mem},{disk}): {e}")
        })?;
        retries += noisy.report.total_retries();
        outliers += noisy.report.rejected_outliers.len();
        ridge += usize::from(noisy.report.used_ridge);
        for (name, a, b, tol) in [
            (
                "unit_seconds",
                noisy.params.unit_seconds,
                clean.params.unit_seconds,
                0.15,
            ),
            (
                "random_page_cost",
                noisy.params.random_page_cost,
                clean.params.random_page_cost,
                0.40,
            ),
            (
                "cpu_tuple_cost",
                noisy.params.cpu_tuple_cost,
                clean.params.cpu_tuple_cost,
                0.50,
            ),
        ] {
            if !within(a, b, tol) {
                violations.push(format!(
                    "jitter {jitter} seed {seed} at ({cpu},{mem},{disk}): {name} {a:.4e} vs clean {b:.4e} (tol {tol})"
                ));
            }
        }
    }
    Ok(Outcome {
        label: format!("point j={jitter:.2} s={seed}"),
        cells: allocations.len(),
        degraded: 0,
        retries,
        outliers,
        ridge,
        violations,
    })
}

fn main() {
    let n_seeds = env_u64("CHAOS_SEEDS", 6);
    let base_seed = env_u64("CHAOS_BASE_SEED", 1);
    let machine = MachineSpec::paper_testbed();
    let intensities = [0.02, 0.05, 0.10];

    println!(
        "Chaos sweep: {n_seeds} seeds x {} intensities (base seed {base_seed})",
        intensities.len()
    );
    let mut pdb = ProbeDb::build().expect("probe db");
    pdb.validate().expect("probe db layout");

    println!("Calibrating the noise-free reference grid ...");
    let clean = CalibrationGrid::calibrate(machine, vec![0.25, 0.5, 0.75], vec![0.25, 0.75], 0.5)
        .expect("clean grid");

    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for &jitter in &intensities {
        for seed in base_seed..base_seed + n_seeds {
            for outcome in [
                chaos_points(&mut pdb, machine, jitter, seed),
                chaos_grid_sweep(machine, &clean, jitter, seed),
            ] {
                match outcome {
                    Ok(o) => {
                        rows.push(vec![
                            o.label.clone(),
                            o.cells.to_string(),
                            o.degraded.to_string(),
                            o.retries.to_string(),
                            o.outliers.to_string(),
                            o.ridge.to_string(),
                            o.violations.len().to_string(),
                        ]);
                        failures.extend(o.violations);
                    }
                    Err(e) => failures.push(e),
                }
            }
        }
    }

    // Hostile mode: 50% transient failures, no retries, single trials. The
    // sweep may degrade cells or return a typed InsufficientProbes error —
    // both are graceful — but it must never panic.
    for seed in base_seed..base_seed + n_seeds {
        let injector = FaultInjector::new(NoiseModel::none().with_failures(0.5), seed);
        let rcfg = CalibrationConfig {
            trials: 1,
            max_retries: 0,
            ..CalibrationConfig::robust()
        }
        .with_injector(injector);
        let res = CalibrationGrid::calibrate_with_config(
            machine,
            vec![0.25, 0.5, 0.75],
            vec![0.25, 0.75],
            0.5,
            &rcfg,
        );
        let note = match res {
            Ok(g) => {
                let h = g.health();
                rows.push(vec![
                    format!("hostile s={seed}"),
                    h.cells.to_string(),
                    h.degraded_cells.to_string(),
                    h.total_retries.to_string(),
                    h.total_rejected_outliers.to_string(),
                    h.ridge_cells.to_string(),
                    "0".to_string(),
                ]);
                continue;
            }
            Err(dbvirt_calibrate::CalError::InsufficientProbes { .. }) => "typed error (ok)",
            Err(e) => {
                failures.push(format!("hostile seed {seed}: unexpected error {e}"));
                "UNEXPECTED"
            }
        };
        rows.push(vec![
            format!("hostile s={seed}"),
            "6".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            note.to_string(),
        ]);
    }

    print_table(
        "calibration under injected faults",
        &[
            "scenario", "cells", "degraded", "retries", "outliers", "ridge", "violations",
        ],
        &rows,
    );

    if failures.is_empty() {
        println!("\nCHAOS PASS: no panics, no unexpected errors, all fits within tolerance.");
    } else {
        println!("\nCHAOS FAIL: {} violation(s):", failures.len());
        for f in &failures {
            println!("  - {f}");
        }
        std::process::exit(1);
    }
}
