//! Figure 3 — the calibrated `cpu_tuple_cost` parameter as a function of
//! CPU and memory allocation.
//!
//! Paper: "Figure 3 shows the result of using our calibration process to
//! compute cpu_tuple_cost for different CPU and memory allocations,
//! ranging from 25% to 75% of the available CPU or memory. The figure
//! shows that the cpu_tuple_cost parameter is sensitive to changes in
//! resource allocation, and that our calibration process can detect this
//! sensitivity."
//!
//! Expected shape: `cpu_tuple_cost` (a ratio to the cost of a sequential
//! page fetch) falls as the CPU share grows — at 25% CPU a tuple costs
//! ~3× what it costs at 75%. In this simulator the parameter is flat
//! along the memory axis (see EXPERIMENTS.md for why that deviation is
//! expected).

use dbvirt_bench::{experiment_machine, print_table};
use dbvirt_calibrate::CalibrationGrid;

fn main() {
    let machine = experiment_machine();
    let cpu_points = vec![0.25, 0.375, 0.5, 0.625, 0.75];
    let mem_points = vec![0.25, 0.5, 0.75];
    println!(
        "Calibrating {} grid points on the experiment machine ...",
        cpu_points.len() * mem_points.len()
    );
    let grid = CalibrationGrid::calibrate(machine, cpu_points.clone(), mem_points.clone(), 0.5)
        .expect("calibration failed");

    let mut rows = Vec::new();
    for (ci, cpu) in cpu_points.iter().enumerate() {
        let mut row = vec![format!("{:.1}%", cpu * 100.0)];
        for mi in 0..mem_points.len() {
            row.push(format!("{:.5}", grid.at_point(ci, mi).cpu_tuple_cost));
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("cpu share".to_string())
        .chain(mem_points.iter().map(|m| format!("mem {:.0}%", m * 100.0)))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Figure 3: calibrated cpu_tuple_cost (fraction of a sequential page fetch)",
        &header_refs,
        &rows,
    );

    // Companion view the paper discusses implicitly: the full calibrated
    // parameter vector at the memory midpoint.
    let mut prows = Vec::new();
    for (ci, cpu) in cpu_points.iter().enumerate() {
        let p = grid.at_point(ci, 1);
        prows.push(vec![
            format!("{:.1}%", cpu * 100.0),
            format!("{:.1}", p.unit_seconds * 1e6),
            format!("{:.2}", p.random_page_cost),
            format!("{:.5}", p.cpu_tuple_cost),
            format!("{:.5}", p.cpu_index_tuple_cost),
            format!("{:.5}", p.cpu_operator_cost),
        ]);
    }
    print_table(
        "Full calibrated P at mem=50%",
        &[
            "cpu share",
            "unit (us)",
            "random_page",
            "cpu_tuple",
            "cpu_index_tuple",
            "cpu_operator",
        ],
        &prows,
    );

    // Shape summary.
    let lo = grid.at_point(0, 1).cpu_tuple_cost;
    let hi = grid.at_point(cpu_points.len() - 1, 1).cpu_tuple_cost;
    println!(
        "\nShape check: cpu_tuple_cost(25% cpu) / cpu_tuple_cost(75% cpu) = {:.2} (paper: parameter is clearly sensitive to the CPU share; pure 1/share dilation predicts 3.0)",
        lo / hi
    );
}
