//! EXT-CONTROLLER — the online counterpart of EXT-DYNAMIC: a
//! drift-detecting control loop that is *not* told the phase sequence up
//! front (the paper's Section 7 next step, "monitor the workload ... and
//! reconfigure the virtual machines on the fly").
//!
//! Two scenario families built from TPC-H-derived workload profiles run
//! through `dbvirt-controller`:
//!
//! * four **pinned** clean streams — stationary (the loop must hold
//!   still), drifting (one mix flip it must catch), bursty (short
//!   excursions), and adversarial (fast alternation designed to tempt it
//!   into thrashing; the switch governor must learn the recurrence and
//!   provision ahead of it);
//! * a five-scenario production **zoo** — diurnal, flash crowd, noisy
//!   neighbor (4 VMs), correlated drift, slow ramp — each run under a
//!   seeded sensor-degradation fault model (dropouts, stale reads,
//!   corrupt probes) with a pinned regret ceiling.
//!
//! Every run is accounted against the clairvoyant `run_dynamic` oracle
//! and a never-reconfigure baseline on the identical query stream, and
//! the decision trace is fingerprinted so `scripts/controller.sh` can
//! assert bit-identical behaviour across processes and parallelism.

use dbvirt_bench::{experiment_machine, json_array, print_table, write_bench_artifact, JsonObj};
use dbvirt_controller::{
    account_regret, profile_from_queries, run_controller, ControllerConfig, ControllerOutcome,
    ProblemTemplate, RegretReport, Scenario, VmTemplate, WorkloadProfile,
};
use dbvirt_core::SearchConfig;
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt_vmm::fault::{FaultInjector, NoiseModel};
use dbvirt_vmm::MachineSpec;

const SEED: u64 = 11;

/// Pinned regret bands for the clean scenarios (relative to clairvoyant).
const DRIFTING_REGRET: f64 = 0.052;
const BURSTY_REGRET: f64 = 0.048;
const PIN_TOLERANCE: f64 = 0.01;
/// The adversarial alternation must stay within this ceiling — the switch
/// governor's contract.
const ADVERSARIAL_CEILING: f64 = 0.15;

fn config() -> ControllerConfig {
    ControllerConfig::new(SearchConfig::for_workloads(8, 2))
}

fn scenarios(
    machine: MachineSpec,
    cpu_bound: &WorkloadProfile,
    io_bound: &WorkloadProfile,
) -> Vec<Scenario> {
    let fwd = vec![*cpu_bound, *io_bound];
    let rev = vec![*io_bound, *cpu_bound];
    vec![
        Scenario::stationary("stationary", machine, fwd.clone(), 16, SEED),
        Scenario::drifting("drifting", machine, fwd.clone(), 12, rev.clone(), 12, SEED),
        Scenario::bursty("bursty", machine, fwd.clone(), rev.clone(), 8, 3, 2, SEED),
        Scenario::adversarial("adversarial", machine, fwd, rev, 2, 4, SEED),
    ]
}

/// The production zoo: each stream perturbed by the same seeded
/// sensor-degradation model (5% dropouts, 5% stale reads up to 2 epochs
/// old, 2% corrupt probes) plus mild per-query size variability. Returns
/// `(scenario, uses 4-VM template, regret ceiling)`.
fn zoo(
    machine: MachineSpec,
    cpu_bound: &WorkloadProfile,
    io_bound: &WorkloadProfile,
) -> Vec<(Scenario, bool, f64)> {
    let fwd = vec![*cpu_bound, *io_bound];
    let rev = vec![*io_bound, *cpu_bound];
    let degraded = |s: Scenario, salt: u64| -> Scenario {
        s.with_variability(0.05).with_noise(FaultInjector::new(
            NoiseModel::sensor_degraded(0.05, 0.05, 2, 0.02),
            SEED + salt,
        ))
    };
    vec![
        (
            degraded(
                Scenario::diurnal("diurnal", machine, fwd.clone(), rev.clone(), 6, 2, SEED),
                1,
            ),
            false,
            ZOO_CEILINGS[0].1,
        ),
        (
            degraded(
                Scenario::flash_crowd(
                    "flash-crowd",
                    machine,
                    fwd.clone(),
                    1,
                    2.5,
                    6,
                    4,
                    2,
                    2,
                    SEED,
                ),
                2,
            ),
            false,
            ZOO_CEILINGS[1].1,
        ),
        (
            degraded(
                Scenario::noisy_neighbor(
                    "noisy-neighbor",
                    machine,
                    *io_bound,
                    *cpu_bound,
                    vec![*cpu_bound, *cpu_bound],
                    8,
                    2,
                    SEED,
                ),
                3,
            ),
            true,
            ZOO_CEILINGS[2].1,
        ),
        (
            degraded(
                Scenario::correlated_drift("correlated-drift", machine, fwd.clone(), rev, 8, SEED),
                4,
            ),
            false,
            ZOO_CEILINGS[3].1,
        ),
        (
            degraded(
                Scenario::slow_ramp("slow-ramp", machine, fwd, vec![*io_bound, *cpu_bound], 4, 4, SEED),
                5,
            ),
            false,
            ZOO_CEILINGS[4].1,
        ),
    ]
}

/// Pinned per-scenario regret ceilings for the zoo (measured under the
/// seeded fault model, with headroom for the injected degradation).
const ZOO_CEILINGS: [(&str, f64); 5] = [
    ("diurnal", 0.09),
    ("flash-crowd", 0.03),
    ("noisy-neighbor", 0.15),
    ("correlated-drift", 0.18),
    ("slow-ramp", 0.09),
];

fn run_one(
    scenario: &Scenario,
    template: &ProblemTemplate<'_>,
    config: &ControllerConfig,
) -> (ControllerOutcome, RegretReport) {
    let out = run_controller(scenario, template, config).expect("controller run");
    let report = account_regret(scenario, template, config, &out).expect("regret accounting");
    (out, report)
}

fn main() {
    dbvirt_telemetry::enable();
    let wall_start = std::time::Instant::now();
    let machine = experiment_machine();
    println!(
        "Generating TPC-H (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let mut t = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");

    // Profile two contrasting mixes the same way EXT-CONSOL frames them:
    // a CPU-bound interactive mix and an I/O-bound batch mix.
    let cpu_mix = Workload::compose(&t, &[(TpchQuery::Q13, 2)]);
    let io_mix = Workload::compose(&t, &[(TpchQuery::Q4, 1), (TpchQuery::Q6, 1)]);
    let cpu_bound = profile_from_queries(&mut t.db, &cpu_mix.queries, machine, 4.0, 2.0)
        .expect("cpu-bound profile");
    let io_bound = profile_from_queries(&mut t.db, &io_mix.queries, machine, 2.0, 3.0)
        .expect("io-bound profile");
    println!(
        "Profiled mixes: {} at {:.3}s/query on the whole machine, {} at {:.3}s/query.",
        cpu_mix.name,
        cpu_bound.reference_seconds(&machine),
        io_mix.name,
        io_bound.reference_seconds(&machine),
    );

    let vm = |name: &str, query: &dbvirt_optimizer::LogicalPlan| VmTemplate {
        name: name.to_string(),
        db: &t.db,
        base_query: query.clone(),
    };
    let template = ProblemTemplate {
        machine,
        vms: vec![
            vm("vm0", &cpu_mix.queries[0]),
            vm("vm1", &io_mix.queries[0]),
        ],
    };
    // Four tenants for the noisy-neighbor stream: the swapping pair plus
    // two steady victims.
    let template4 = ProblemTemplate {
        machine,
        vms: vec![
            vm("vm0", &io_mix.queries[0]),
            vm("vm1", &cpu_mix.queries[0]),
            vm("vm2", &cpu_mix.queries[0]),
            vm("vm3", &cpu_mix.queries[0]),
        ],
    };
    let config = config();
    let config4 = ControllerConfig::new(SearchConfig::for_workloads(8, 4));

    let mut rows = Vec::new();
    let mut scenario_objs = Vec::new();
    let mut fingerprints = Vec::new();
    let mut regrets = Vec::new();

    let record = |scenario: &Scenario,
                      out: &ControllerOutcome,
                      report: &RegretReport,
                      run_secs: f64,
                      rows: &mut Vec<Vec<String>>,
                      objs: &mut Vec<String>,
                      fps: &mut Vec<(String, u64)>,
                      regs: &mut Vec<(String, f64)>| {
        let fp = out.trace_fingerprint();
        println!(
            "  [{}] {} | switch epochs {:?}",
            scenario.name,
            out.health,
            out.switches.iter().map(|s| s.epoch).collect::<Vec<_>>()
        );
        rows.push(vec![
            scenario.name.clone(),
            format!("{}", scenario.total_epochs()),
            format!("{}", out.switches.len()),
            format!("{}", out.drift_detections),
            format!("{:.3}s", report.controller_cost),
            format!("{:.3}s", report.oracle_cost),
            format!("{:.3}s", report.never_cost),
            format!("{:.1}%", report.relative_regret * 100.0),
            format!("{}", report.suboptimal_epochs),
        ]);
        let h = &out.health;
        objs.push(
            JsonObj::new()
                .str("scenario", &scenario.name)
                .int("epochs", scenario.total_epochs() as u64)
                .int("decisions", out.decisions as u64)
                .int("switches", out.switches.len() as u64)
                .int("drift_detections", out.drift_detections as u64)
                .int("dropped_observations", out.dropped_observations as u64)
                .int("dropout_vm_epochs", h.dropout_vm_epochs as u64)
                .int("max_staleness", h.max_staleness as u64)
                .int("governor_vetoes", h.governor_vetoes as u64)
                .int("prescheduled_switches", h.prescheduled_switches as u64)
                .int("prediction_hits", h.prediction_hits as u64)
                .int("prediction_misses", h.prediction_misses as u64)
                .int("localized_solves", h.localized_solves as u64)
                .int("hill_climb_moves", h.hill_climb_moves as u64)
                .float("controller_cost_secs", report.controller_cost)
                .float("oracle_cost_secs", report.oracle_cost)
                .float("never_reconfigure_cost_secs", report.never_cost)
                .float("relative_regret", report.relative_regret)
                .int("oracle_switches", report.oracle_switches as u64)
                .int("suboptimal_epochs", report.suboptimal_epochs as u64)
                .float("suboptimal_seconds", report.suboptimal_seconds)
                .float("run_secs", run_secs)
                .str("fingerprint", &format!("{fp:016x}"))
                .render(),
        );
        fps.push((scenario.name.clone(), fp));
        regs.push((scenario.name.clone(), report.relative_regret));
    };

    for scenario in scenarios(machine, &cpu_bound, &io_bound) {
        let run_start = std::time::Instant::now();
        let (out, report) = run_one(&scenario, &template, &config);
        let run_secs = run_start.elapsed().as_secs_f64();

        match scenario.name.as_str() {
            "stationary" => {
                assert!(
                    out.switches.is_empty(),
                    "stationary stream must never trigger a reconfiguration, got {}",
                    out.switches.len()
                );
            }
            "drifting" => {
                assert!(
                    (report.relative_regret - DRIFTING_REGRET).abs() <= PIN_TOLERANCE,
                    "drifting regret must stay within ±{:.0}pp of the pinned {:.1}%, got {:.1}%",
                    PIN_TOLERANCE * 100.0,
                    DRIFTING_REGRET * 100.0,
                    report.relative_regret * 100.0
                );
                assert!(
                    report.controller_cost < report.never_cost,
                    "reconfiguring must beat holding the placement: {:.3}s vs {:.3}s",
                    report.controller_cost,
                    report.never_cost
                );
            }
            "bursty" => {
                assert!(
                    (report.relative_regret - BURSTY_REGRET).abs() <= PIN_TOLERANCE,
                    "bursty regret must stay within ±{:.0}pp of the pinned {:.1}%, got {:.1}%",
                    PIN_TOLERANCE * 100.0,
                    BURSTY_REGRET * 100.0,
                    report.relative_regret * 100.0
                );
            }
            "adversarial" => {
                assert!(
                    report.relative_regret <= ADVERSARIAL_CEILING,
                    "the governor must keep adversarial regret within {:.0}%, got {:.1}%",
                    ADVERSARIAL_CEILING * 100.0,
                    report.relative_regret * 100.0
                );
                assert!(
                    report.controller_cost <= report.never_cost * 1.05,
                    "thrash guard: adversarial alternation must not lose more than 5% \
                     to the held placement, got {:.3}s vs {:.3}s",
                    report.controller_cost,
                    report.never_cost
                );
                assert!(
                    out.health.prescheduled_switches >= 1 && out.health.prediction_misses == 0,
                    "the alternation must be provisioned ahead without refuted predictions, \
                     health: {}",
                    out.health
                );
            }
            _ => {}
        }
        record(
            &scenario,
            &out,
            &report,
            run_secs,
            &mut rows,
            &mut scenario_objs,
            &mut fingerprints,
            &mut regrets,
        );
    }

    // The zoo: every stream must complete under the seeded fault model
    // (zero panics), actually exercise the fault path, and stay under its
    // pinned regret ceiling.
    for (scenario, wide, ceiling) in zoo(machine, &cpu_bound, &io_bound) {
        let (tmpl, cfg) = if wide {
            (&template4, &config4)
        } else {
            (&template, &config)
        };
        let run_start = std::time::Instant::now();
        let (out, report) = run_one(&scenario, tmpl, cfg);
        let run_secs = run_start.elapsed().as_secs_f64();
        assert!(
            out.health.dropped_observations > 0 || out.health.dropout_vm_epochs > 0,
            "[{}] the sensor-degradation model must actually bite",
            scenario.name
        );
        assert!(
            report.relative_regret <= ceiling,
            "[{}] regret ceiling breached: {:.1}% > {:.1}%",
            scenario.name,
            report.relative_regret * 100.0,
            ceiling * 100.0
        );
        record(
            &scenario,
            &out,
            &report,
            run_secs,
            &mut rows,
            &mut scenario_objs,
            &mut fingerprints,
            &mut regrets,
        );
    }

    print_table(
        "EXT-CONTROLLER: online control loop vs clairvoyant oracle vs never-reconfigure",
        &[
            "scenario",
            "epochs",
            "switches",
            "drifts",
            "controller",
            "oracle",
            "never",
            "regret",
            "subopt epochs",
        ],
        &rows,
    );
    println!(
        "\nShape check: stationary holds still, drifting catches the flip within a few \
         epochs of detection lag, the adversarial alternation is provisioned ahead by \
         the governor instead of thrashing, and the fault-injected zoo stays under its \
         regret ceilings."
    );

    // Determinism: the full drifting decision trace must be bit-identical
    // across repeated runs and every search parallelism setting.
    let drifting = &scenarios(machine, &cpu_bound, &io_bound)[1];
    let baseline = run_controller(drifting, &template, &config)
        .expect("determinism baseline")
        .trace_fingerprint();
    for parallelism in [1usize, 2, 4, 0] {
        let cfg = ControllerConfig {
            search: config.search.with_parallelism(parallelism),
            ..config
        };
        let fp = run_controller(drifting, &template, &cfg)
            .expect("determinism sweep")
            .trace_fingerprint();
        assert_eq!(
            fp, baseline,
            "decision trace diverged at parallelism {parallelism}"
        );
    }
    println!("Determinism: drifting trace bit-identical at parallelism 1/2/4/auto.");

    // Chaos sweep (opt-in): degraded sensors must cost accuracy at worst,
    // never crash the loop. Three fault shapes — jittery probes, heavy
    // dropouts, and long staleness — each across 8 seeds.
    let chaos = std::env::var("CONTROLLER_CHAOS").is_ok_and(|v| v == "1");
    if chaos {
        let models: [(&str, NoiseModel); 3] = [
            ("realistic", NoiseModel::realistic(0.05)),
            ("dropout", NoiseModel::sensor_degraded(0.3, 0.0, 0, 0.05)),
            ("stale", NoiseModel::sensor_degraded(0.05, 0.4, 4, 0.0)),
        ];
        for (label, model) in models {
            for seed in 0..8u64 {
                let noisy = scenarios(machine, &cpu_bound, &io_bound)
                    .into_iter()
                    .nth(1)
                    .unwrap()
                    .with_variability(0.1)
                    .with_noise(FaultInjector::new(model, seed));
                let out = run_controller(&noisy, &template, &config)
                    .expect("the controller must survive degraded sensors");
                println!(
                    "  chaos {label} seed {seed}: {} switches, {} dropped, \
                     {} dropout vm-epochs, max staleness {}, total {:.3}s",
                    out.switches.len(),
                    out.dropped_observations,
                    out.health.dropout_vm_epochs,
                    out.health.max_staleness,
                    out.total_cost
                );
            }
        }
        println!("Chaos: 3 fault shapes x 8 seeds completed without a panic.");
    }

    // One stable line per scenario for shell-level double-run diffing and
    // ceiling gating.
    for (name, fp) in &fingerprints {
        println!("CONTROLLER_FINGERPRINT {name}={fp:016x}");
    }
    for (name, regret) in &regrets {
        println!("CONTROLLER_REGRET {name}={regret:.4}");
    }

    let bench = JsonObj::new()
        .str("experiment", "ext_controller")
        .float("wall_secs", wall_start.elapsed().as_secs_f64())
        .int("scenarios", scenario_objs.len() as u64)
        .int("chaos_seeds", if chaos { 24 } else { 0 })
        .float("cpu_profile_reference_secs", cpu_bound.reference_seconds(&machine))
        .float("io_profile_reference_secs", io_bound.reference_seconds(&machine))
        .raw("per_scenario", json_array(&scenario_objs));
    write_bench_artifact("BENCH_controller.json", &bench.render());
}
