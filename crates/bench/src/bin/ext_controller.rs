//! EXT-CONTROLLER — the online counterpart of EXT-DYNAMIC: a
//! drift-detecting control loop that is *not* told the phase sequence up
//! front (the paper's Section 7 next step, "monitor the workload ... and
//! reconfigure the virtual machines on the fly").
//!
//! Four pinned scenarios built from TPC-H-derived workload profiles run
//! through `dbvirt-controller`: stationary (the loop must hold still),
//! drifting (one mix flip it must catch), bursty (short excursions), and
//! adversarial (fast alternation designed to tempt it into thrashing).
//! Every run is accounted against the clairvoyant `run_dynamic` oracle
//! and a never-reconfigure baseline on the identical query stream, and
//! the decision trace is fingerprinted so `scripts/controller.sh` can
//! assert bit-identical behaviour across processes and parallelism.

use dbvirt_bench::{experiment_machine, json_array, print_table, write_bench_artifact, JsonObj};
use dbvirt_controller::{
    account_regret, profile_from_queries, run_controller, ControllerConfig, ControllerOutcome,
    ProblemTemplate, RegretReport, Scenario, VmTemplate, WorkloadProfile,
};
use dbvirt_core::SearchConfig;
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt_vmm::fault::{FaultInjector, NoiseModel};
use dbvirt_vmm::MachineSpec;

const SEED: u64 = 11;

fn config() -> ControllerConfig {
    ControllerConfig::new(SearchConfig::for_workloads(8, 2))
}

fn scenarios(
    machine: MachineSpec,
    cpu_bound: &WorkloadProfile,
    io_bound: &WorkloadProfile,
) -> Vec<Scenario> {
    let fwd = vec![*cpu_bound, *io_bound];
    let rev = vec![*io_bound, *cpu_bound];
    vec![
        Scenario::stationary("stationary", machine, fwd.clone(), 16, SEED),
        Scenario::drifting("drifting", machine, fwd.clone(), 12, rev.clone(), 12, SEED),
        Scenario::bursty("bursty", machine, fwd.clone(), rev.clone(), 8, 3, 2, SEED),
        Scenario::adversarial("adversarial", machine, fwd, rev, 2, 4, SEED),
    ]
}

fn run_one(
    scenario: &Scenario,
    template: &ProblemTemplate<'_>,
    config: &ControllerConfig,
) -> (ControllerOutcome, RegretReport) {
    let out = run_controller(scenario, template, config).expect("controller run");
    let report = account_regret(scenario, template, config, &out).expect("regret accounting");
    (out, report)
}

fn main() {
    dbvirt_telemetry::enable();
    let wall_start = std::time::Instant::now();
    let machine = experiment_machine();
    println!(
        "Generating TPC-H (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let mut t = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");

    // Profile two contrasting mixes the same way EXT-CONSOL frames them:
    // a CPU-bound interactive mix and an I/O-bound batch mix.
    let cpu_mix = Workload::compose(&t, &[(TpchQuery::Q13, 2)]);
    let io_mix = Workload::compose(&t, &[(TpchQuery::Q4, 1), (TpchQuery::Q6, 1)]);
    let cpu_bound = profile_from_queries(&mut t.db, &cpu_mix.queries, machine, 4.0, 2.0)
        .expect("cpu-bound profile");
    let io_bound = profile_from_queries(&mut t.db, &io_mix.queries, machine, 2.0, 3.0)
        .expect("io-bound profile");
    println!(
        "Profiled mixes: {} at {:.3}s/query on the whole machine, {} at {:.3}s/query.",
        cpu_mix.name,
        cpu_bound.reference_seconds(&machine),
        io_mix.name,
        io_bound.reference_seconds(&machine),
    );

    let template = ProblemTemplate {
        machine,
        vms: vec![
            VmTemplate {
                name: "vm0".to_string(),
                db: &t.db,
                base_query: cpu_mix.queries[0].clone(),
            },
            VmTemplate {
                name: "vm1".to_string(),
                db: &t.db,
                base_query: io_mix.queries[0].clone(),
            },
        ],
    };
    let config = config();

    let mut rows = Vec::new();
    let mut scenario_objs = Vec::new();
    let mut fingerprints = Vec::new();
    for scenario in scenarios(machine, &cpu_bound, &io_bound) {
        let run_start = std::time::Instant::now();
        let (out, report) = run_one(&scenario, &template, &config);
        let run_secs = run_start.elapsed().as_secs_f64();
        let fp = out.trace_fingerprint();

        match scenario.name.as_str() {
            "stationary" => {
                assert!(
                    out.switches.is_empty(),
                    "stationary stream must never trigger a reconfiguration, got {}",
                    out.switches.len()
                );
            }
            "drifting" => {
                assert!(
                    report.relative_regret <= 0.15,
                    "drifting regret must stay within 15% of clairvoyant, got {:.1}%",
                    report.relative_regret * 100.0
                );
                assert!(
                    report.controller_cost < report.never_cost,
                    "reconfiguring must beat holding the placement: {:.3}s vs {:.3}s",
                    report.controller_cost,
                    report.never_cost
                );
            }
            "adversarial" => {
                assert!(
                    report.controller_cost <= report.never_cost * 1.05,
                    "thrash guard: adversarial alternation must not lose more than 5% \
                     to the held placement, got {:.3}s vs {:.3}s",
                    report.controller_cost,
                    report.never_cost
                );
            }
            _ => {}
        }

        rows.push(vec![
            scenario.name.clone(),
            format!("{}", scenario.total_epochs()),
            format!("{}", out.switches.len()),
            format!("{}", out.drift_detections),
            format!("{:.3}s", report.controller_cost),
            format!("{:.3}s", report.oracle_cost),
            format!("{:.3}s", report.never_cost),
            format!("{:.1}%", report.relative_regret * 100.0),
            format!("{}", report.suboptimal_epochs),
        ]);
        scenario_objs.push(
            JsonObj::new()
                .str("scenario", &scenario.name)
                .int("epochs", scenario.total_epochs() as u64)
                .int("decisions", out.decisions as u64)
                .int("switches", out.switches.len() as u64)
                .int("drift_detections", out.drift_detections as u64)
                .int("dropped_observations", out.dropped_observations as u64)
                .float("controller_cost_secs", report.controller_cost)
                .float("oracle_cost_secs", report.oracle_cost)
                .float("never_reconfigure_cost_secs", report.never_cost)
                .float("relative_regret", report.relative_regret)
                .int("oracle_switches", report.oracle_switches as u64)
                .int("suboptimal_epochs", report.suboptimal_epochs as u64)
                .float("suboptimal_seconds", report.suboptimal_seconds)
                .float("run_secs", run_secs)
                .str("fingerprint", &format!("{fp:016x}"))
                .render(),
        );
        fingerprints.push((scenario.name.clone(), fp));
    }

    print_table(
        "EXT-CONTROLLER: online control loop vs clairvoyant oracle vs never-reconfigure",
        &[
            "scenario",
            "epochs",
            "switches",
            "drifts",
            "controller",
            "oracle",
            "never",
            "regret",
            "subopt epochs",
        ],
        &rows,
    );
    println!(
        "\nShape check: stationary holds still, drifting catches the flip within a few \
         epochs of detection lag, and the adversarial alternation does not thrash away \
         its gains."
    );

    // Determinism: the full drifting decision trace must be bit-identical
    // across repeated runs and every search parallelism setting.
    let drifting = &scenarios(machine, &cpu_bound, &io_bound)[1];
    let baseline = run_controller(drifting, &template, &config)
        .expect("determinism baseline")
        .trace_fingerprint();
    for parallelism in [1usize, 2, 4, 0] {
        let cfg = ControllerConfig {
            search: config.search.with_parallelism(parallelism),
            ..config
        };
        let fp = run_controller(drifting, &template, &cfg)
            .expect("determinism sweep")
            .trace_fingerprint();
        assert_eq!(
            fp, baseline,
            "decision trace diverged at parallelism {parallelism}"
        );
    }
    println!("Determinism: drifting trace bit-identical at parallelism 1/2/4/auto.");

    // Chaos sweep (opt-in): noisy observations must degrade accuracy, not
    // crash the loop.
    let chaos = std::env::var("CONTROLLER_CHAOS").is_ok_and(|v| v == "1");
    if chaos {
        for seed in 0..8u64 {
            let noisy = scenarios(machine, &cpu_bound, &io_bound)
                .into_iter()
                .nth(1)
                .unwrap()
                .with_variability(0.1)
                .with_noise(FaultInjector::new(NoiseModel::realistic(0.05), seed));
            let out = run_controller(&noisy, &template, &config)
                .expect("the controller must survive noisy observations");
            println!(
                "  chaos seed {seed}: {} switches, {} dropped observations, total {:.3}s",
                out.switches.len(),
                out.dropped_observations,
                out.total_cost
            );
        }
        println!("Chaos: 8 noisy seeds completed without a panic.");
    }

    // One stable line per scenario for shell-level double-run diffing.
    for (name, fp) in &fingerprints {
        println!("CONTROLLER_FINGERPRINT {name}={fp:016x}");
    }

    let bench = JsonObj::new()
        .str("experiment", "ext_controller")
        .float("wall_secs", wall_start.elapsed().as_secs_f64())
        .int("scenarios", scenario_objs.len() as u64)
        .int("chaos_seeds", if chaos { 8 } else { 0 })
        .float("cpu_profile_reference_secs", cpu_bound.reference_seconds(&machine))
        .float("io_profile_reference_secs", io_bound.reference_seconds(&machine))
        .raw("per_scenario", json_array(&scenario_objs));
    write_bench_artifact("BENCH_controller.json", &bench.render());
}
