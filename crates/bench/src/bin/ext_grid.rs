//! EXT-GRID — reducing the number of calibration experiments (paper,
//! Section 7: "This cost modeling can be refined by developing techniques
//! to reduce the number of calibration experiments required, since cost
//! model calibration is a fairly lengthy process").
//!
//! Calibrates a dense CPU-axis grid as ground truth, then compares coarse
//! grids (with bilinear interpolation for off-grid allocations) on two
//! criteria: parameter error, and whether the interpolated what-if model
//! still ranks candidate CPU allocations for Q13 the same way.

use dbvirt_bench::{
    experiment_machine, json_array, print_table, write_bench_artifact, JsonObj,
};
use dbvirt_calibrate::CalibrationGrid;
use dbvirt_optimizer::whatif::estimate_query_seconds;
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery};
use dbvirt_vmm::ResourceVector;

/// The calibration probe-run count from the global telemetry registry.
fn probe_runs() -> u64 {
    dbvirt_telemetry::snapshot()
        .counter("calibrate.probe_runs")
        .unwrap_or(0)
}

fn cpu_axis(n: usize) -> Vec<f64> {
    // n points spanning 25%..75%.
    (0..n)
        .map(|i| 0.25 + 0.5 * i as f64 / (n - 1) as f64)
        .collect()
}

fn main() {
    dbvirt_telemetry::enable();
    let wall_start = std::time::Instant::now();
    let machine = experiment_machine();
    println!(
        "Generating TPC-H (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let t = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");
    let q13 = TpchQuery::Q13.plan(&t);

    let dense_n = 9;
    println!("Calibrating the dense reference grid ({dense_n} CPU points) ...");
    let probes_before_dense = probe_runs();
    let dense =
        CalibrationGrid::calibrate(machine, cpu_axis(dense_n), vec![0.5], 0.5).expect("dense grid");
    let dense_probe_runs = probe_runs() - probes_before_dense;

    // Probe allocations: every dense grid point.
    let probes: Vec<f64> = cpu_axis(dense_n);
    let reference: Vec<f64> = probes
        .iter()
        .map(|&cpu| {
            let shares = ResourceVector::from_fractions(cpu, 0.5, 0.5).expect("shares");
            let p = dense.params_for(shares).expect("dense lookup");
            estimate_query_seconds(&t.db, &q13, &p).expect("estimate")
        })
        .collect();

    let mut rows = Vec::new();
    let mut bench_grids = Vec::new();
    for coarse_n in [2usize, 3, 5, 9] {
        println!("Calibrating a {coarse_n}-point grid ...");
        let probes_before = probe_runs();
        let coarse = CalibrationGrid::calibrate(machine, cpu_axis(coarse_n), vec![0.5], 0.5)
            .expect("coarse grid");
        let grid_probe_runs = probe_runs() - probes_before;
        let mut max_param_err: f64 = 0.0;
        let mut max_est_err: f64 = 0.0;
        let mut estimates = Vec::new();
        for (i, &cpu) in probes.iter().enumerate() {
            let shares = ResourceVector::from_fractions(cpu, 0.5, 0.5).expect("shares");
            let pd = dense.params_for(shares).expect("dense lookup");
            let pc = coarse.params_for(shares).expect("coarse lookup");
            let param_err = ((pc.cpu_tuple_cost - pd.cpu_tuple_cost) / pd.cpu_tuple_cost).abs();
            max_param_err = max_param_err.max(param_err);
            let est = estimate_query_seconds(&t.db, &q13, &pc).expect("estimate");
            max_est_err = max_est_err.max(((est - reference[i]) / reference[i]).abs());
            estimates.push(est);
        }
        // Ranking fidelity: do the coarse estimates order the candidate
        // allocations exactly as the dense ones do?
        let rank = |v: &[f64]| {
            let mut idx: Vec<usize> = (0..v.len()).collect();
            idx.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
            idx
        };
        let ranking_ok = rank(&estimates) == rank(&reference);
        bench_grids.push(
            JsonObj::new()
                .int("grid_points", coarse_n as u64)
                .int("probe_runs", grid_probe_runs)
                .float("max_param_err", max_param_err)
                .float("max_estimate_err", max_est_err)
                .str("ranking_preserved", if ranking_ok { "yes" } else { "no" })
                .render(),
        );
        rows.push(vec![
            coarse_n.to_string(),
            format!("{:.1}%", max_param_err * 100.0),
            format!("{:.1}%", max_est_err * 100.0),
            if ranking_ok { "yes" } else { "NO" }.to_string(),
        ]);
    }

    print_table(
        "EXT-GRID: coarse calibration grids + interpolation vs a 9-point reference (Q13, CPU axis 25-75%)",
        &["grid points", "max cpu_tuple_cost err", "max estimate err", "ranking preserved"],
        &rows,
    );
    println!(
        "\nShape check: a 3-point grid (one third of the calibration work) already preserves \
         the allocation ranking, which is all the virtualization design search consumes — \
         the paper's 'only used to rank alternatives' observation carries to P(R) itself."
    );

    let snap = dbvirt_telemetry::snapshot();
    let bench = JsonObj::new()
        .str("experiment", "ext_grid")
        .float("wall_secs", wall_start.elapsed().as_secs_f64())
        .int("dense_grid_points", dense_n as u64)
        .int("dense_probe_runs", dense_probe_runs)
        .raw("grids", json_array(&bench_grids))
        .int("probe_runs_total", snap.counter("calibrate.probe_runs").unwrap_or(0))
        .int("retries_total", snap.counter("calibrate.retries").unwrap_or(0))
        .int(
            "outliers_dropped_total",
            snap.counter("calibrate.outliers_dropped").unwrap_or(0),
        );
    write_bench_artifact("BENCH_grid.json", &bench.render());
}
