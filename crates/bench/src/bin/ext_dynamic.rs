//! EXT-DYNAMIC — the paper's dynamic-reconfiguration next step (Section
//! 7: "consider the dynamic case and reconfigure the virtual machines on
//! the fly in response to changes in the workload").
//!
//! A day/night timeline over two persistent VMs: during the day VM 1
//! serves an interactive CPU-bound mix while VM 2 idles on light scans;
//! at night the mix flips to VM 2 running heavy batch reports. The
//! controller re-solves the design problem at each phase boundary with
//! switch-overhead hysteresis, and is compared against both static
//! baselines (equal split forever; day-optimal allocation forever).

use dbvirt_bench::{
    cache_counters, experiment_machine, json_array, print_table, write_bench_artifact, JsonObj,
};
use dbvirt_core::dynamic::{run_dynamic, DynamicTimeline, ReconfigPolicy};
use dbvirt_core::{
    CalibratedCostModel, DesignProblem, SearchConfig, VirtualizationAdvisor, WorkloadSpec,
};
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};

fn main() {
    dbvirt_telemetry::enable();
    let wall_start = std::time::Instant::now();
    let machine = experiment_machine();
    println!(
        "Generating TPC-H (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let t = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");

    let units = 8;
    println!("Calibrating the advisor grid ({units} units, 2 workloads) ...");
    let advisor = VirtualizationAdvisor::calibrate(machine, 2, units).expect("advisor calibration");
    let model = CalibratedCostModel::new(advisor.grid());

    // Day: VM1 interactive analytics (CPU-bound Q13 mix), VM2 light.
    let day_vm1 = Workload::compose(&t, &[(TpchQuery::Q13, 12)]);
    let day_vm2 = Workload::compose(&t, &[(TpchQuery::Q6, 1)]);
    // Night: VM1 light, VM2 heavy batch reports (I/O+CPU mixed).
    let night_vm1 = Workload::compose(&t, &[(TpchQuery::Q6, 1)]);
    let night_vm2 = Workload::compose(&t, &[(TpchQuery::Q1, 2), (TpchQuery::Q13, 8)]);

    let phase = |w1: &Workload, w2: &Workload| {
        DesignProblem::new(
            machine,
            vec![
                WorkloadSpec::new(w1.name.clone(), &t.db, w1.queries.clone()),
                WorkloadSpec::new(w2.name.clone(), &t.db, w2.queries.clone()),
            ],
        )
        .expect("phase problem")
    };
    // Two days of day/night alternation.
    let timeline = DynamicTimeline::new(vec![
        phase(&day_vm1, &day_vm2),
        phase(&night_vm1, &night_vm2),
        phase(&day_vm1, &day_vm2),
        phase(&night_vm1, &night_vm2),
    ])
    .expect("timeline");

    let policy = ReconfigPolicy {
        switch_overhead_seconds: 0.5,
        min_relative_gain: 0.05,
        ..ReconfigPolicy::new(SearchConfig::for_workloads(units, 2))
    };
    let (hits_before, misses_before) = cache_counters();
    let dynamic_start = std::time::Instant::now();
    let out = run_dynamic(&timeline, &model, policy).expect("dynamic run");
    let dynamic_secs = dynamic_start.elapsed().as_secs_f64();
    let (hits_after, misses_after) = cache_counters();
    let (hits, misses) = (hits_after - hits_before, misses_after - misses_before);

    let mut rows = Vec::new();
    for (i, p) in out.phases.iter().enumerate() {
        let label = if i % 2 == 0 { "day" } else { "night" };
        let r0 = p.allocation.row(0);
        let r1 = p.allocation.row(1);
        rows.push(vec![
            format!("{i} ({label})"),
            format!("cpu {:.0}/{:.0}%", r0.cpu().percent(), r1.cpu().percent()),
            format!(
                "mem {:.0}/{:.0}%",
                r0.memory().percent(),
                r1.memory().percent()
            ),
            format!("{:.3}s", p.cost),
            if p.reconfigured { "yes" } else { "-" }.to_string(),
        ]);
    }
    print_table(
        "EXT-DYNAMIC: day/night timeline, reconfiguration controller",
        &[
            "phase",
            "cpu split",
            "mem split",
            "phase cost",
            "reconfigured",
        ],
        &rows,
    );
    println!(
        "\nTotals: dynamic {:.3}s ({} reconfigurations, 0.5s overhead each) vs static \
         equal-split {:.3}s vs static day-optimal {:.3}s.",
        out.total_cost, out.reconfigurations, out.static_equal_cost, out.static_first_phase_cost
    );
    println!(
        "Shape check: the controller flips the allocation at each day/night boundary and \
         beats both static baselines; with a prohibitive switch overhead it would degrade \
         gracefully to the static day-optimal placement."
    );

    // Serial vs parallel what-if evaluation across the whole timeline
    // (both runs also share warm caches across repeated phases).
    println!("\nSerial vs parallel timeline re-solve:");
    let t0 = std::time::Instant::now();
    let serial = run_dynamic(&timeline, &model, policy).expect("serial dynamic run");
    let serial_s = t0.elapsed().as_secs_f64();
    let parallel_policy = ReconfigPolicy {
        config: policy.config.with_parallelism(0),
        ..policy
    };
    let t1 = std::time::Instant::now();
    let parallel = run_dynamic(&timeline, &model, parallel_policy).expect("parallel dynamic run");
    let parallel_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        serial.total_cost.to_bits(),
        parallel.total_cost.to_bits(),
        "parallel controller must book the serial total"
    );
    assert_eq!(serial.reconfigurations, parallel.reconfigurations);
    println!(
        "  EXT-DYNAMIC [{}]: serial {:.3}s vs parallel {:.3}s ({} workers) = {:.2}x, \
         identical decisions and totals",
        policy.algorithm.name(),
        serial_s,
        parallel_s,
        parallel_policy.config.effective_parallelism(),
        serial_s / parallel_s,
    );

    let phase_objs: Vec<String> = out
        .phases
        .iter()
        .enumerate()
        .map(|(i, p)| {
            JsonObj::new()
                .int("phase", i as u64)
                .str("label", if i % 2 == 0 { "day" } else { "night" })
                .float("cost_secs", p.cost)
                .int("reconfigured", p.reconfigured as u64)
                .render()
        })
        .collect();
    let lookups = hits + misses;
    let bench = JsonObj::new()
        .str("experiment", "ext_dynamic")
        .float("wall_secs", wall_start.elapsed().as_secs_f64())
        .float("dynamic_run_secs", dynamic_secs)
        .int("phases", out.phases.len() as u64)
        .int("reconfigurations", out.reconfigurations as u64)
        .float("switch_overhead_secs", policy.switch_overhead_seconds)
        .float("min_relative_gain", policy.min_relative_gain)
        .float("dynamic_total_secs", out.total_cost)
        .float("static_equal_secs", out.static_equal_cost)
        .float("static_first_phase_secs", out.static_first_phase_cost)
        .raw("phase_outcomes", json_array(&phase_objs))
        .int("cache_hits", hits)
        .int("cache_misses", misses)
        .float(
            "cache_hit_rate",
            if lookups > 0 {
                hits as f64 / lookups as f64
            } else {
                f64::NAN
            },
        )
        .float("serial_resolve_secs", serial_s)
        .float("parallel_resolve_secs", parallel_s);
    write_bench_artifact("BENCH_dynamic.json", &bench.render());
}
