//! EXT-SCHED — the incremental event-driven co-scheduler vs the reference
//! whole-fleet rescan loop.
//!
//! Runs the pinned 48-configuration sweep (6 VM counts × 4 stream lengths
//! × 2 scheduling modes) over deterministic synthetic fleets. For every
//! configuration *all three* event cores — the reference rescan loop, the
//! heap-backed incremental scheduler, and the calendar-queue incremental
//! scheduler — must report **identical** completions (the determinism
//! contract of `dbvirt_vmm::sched`); wall clock, event counts, and
//! per-event VM-touch locality are recorded to `BENCH_sched.json`, and
//! the sweep asserts two headline claims:
//!
//! * at 16 VMs the (mode-selected) incremental scheduler is at least 3×
//!   faster than the reference loop in capped mode, and
//! * at 32 VMs on the adversarial class-flipping mix in work-conserving
//!   mode — where nearly every event re-keys every member of both
//!   resource classes — the calendar core is at least 2× faster than the
//!   heap core it replaces.
//!
//! One `SCHED_FINGERPRINT` line per configuration (an FNV-1a hash of every
//! reported completion instant) lets `scripts/sched.sh` diff two
//! independent processes for bit-identical behaviour.

use std::time::Instant;

use dbvirt_bench::{experiment_machine, json_array, print_table, write_bench_artifact, JsonObj};
use dbvirt_vmm::sched::{
    co_schedule_reference, co_schedule_with_core, SchedCore, SchedMode, SchedStats, VmJob,
    VmOutcome,
};
use dbvirt_vmm::{AllocationMatrix, ResourceDemand};

const VM_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];
const QUERY_COUNTS: [usize; 4] = [4, 16, 64, 256];
const MODES: [(SchedMode, &str); 2] = [
    (SchedMode::Capped, "capped"),
    (SchedMode::WorkConserving, "wc"),
];
const TIMING_REPS: usize = 3;

/// Deterministic splitmix64 stream for demand synthesis (no external RNG:
/// the sweep must be pinned byte-for-byte across runs and machines).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A deterministic fleet: per-VM query streams mixing CPU-heavy, I/O-heavy,
/// balanced, and zero-demand queries so both resource classes stay
/// contended and phase kinds alternate (the work-conserving worst case).
fn fleet(vms: usize, queries: usize) -> Vec<VmJob> {
    let mut mix = Mix((vms as u64) << 32 | queries as u64);
    (0..vms)
        .map(|_| {
            let stream = (0..queries)
                .map(|_| {
                    let r = mix.next();
                    let cpu = (r >> 8) % 2_000_000_000;
                    let seq = (r >> 40) % 1_200;
                    let rand = (r >> 50) % 120;
                    match r % 10 {
                        0..=3 => ResourceDemand {
                            cpu_cycles: (cpu + 100_000_000) as f64,
                            seq_page_reads: 0,
                            random_page_reads: 0,
                            page_writes: 0,
                        },
                        4..=6 => ResourceDemand {
                            cpu_cycles: 0.0,
                            seq_page_reads: seq + 50,
                            random_page_reads: rand,
                            page_writes: r % 40,
                        },
                        7..=8 => ResourceDemand {
                            cpu_cycles: (cpu / 2) as f64,
                            seq_page_reads: seq,
                            random_page_reads: rand,
                            page_writes: 0,
                        },
                        _ => ResourceDemand::ZERO,
                    }
                })
                .collect();
            VmJob::new(stream)
        })
        .collect()
}

/// FNV-1a over every reported completion instant, query-by-query.
fn fingerprint(outcomes: &[VmOutcome]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for o in outcomes {
        eat(o.completion.as_micros());
        for t in &o.query_completions {
            eat(t.as_micros());
        }
    }
    h
}

struct ConfigResult {
    vms: usize,
    queries: usize,
    mode_name: &'static str,
    /// Mode-selected production core (heap for capped, calendar for wc).
    incr_secs: f64,
    heap_secs: f64,
    cal_secs: f64,
    ref_secs: f64,
    stats: SchedStats,
    fp: u64,
}

fn main() {
    // Telemetry stays disabled: production callers run with it off, and the
    // timing comparison must not charge the incremental path for the
    // instrumentation the reference loop does not carry.
    let wall_start = Instant::now();
    let spec = experiment_machine();

    let mut results: Vec<ConfigResult> = Vec::new();
    for vms in VM_COUNTS {
        let alloc = AllocationMatrix::equal_split(vms).unwrap();
        for queries in QUERY_COUNTS {
            let jobs = fleet(vms, queries);
            for (mode, mode_name) in MODES {
                // Identity first: all three event cores must agree on
                // every completion before their speeds are compared.
                let (heap_out, heap_stats) =
                    co_schedule_with_core(spec, &alloc, &jobs, mode, SchedCore::Heap)
                        .expect("heap-core run");
                let (cal_out, cal_stats) =
                    co_schedule_with_core(spec, &alloc, &jobs, mode, SchedCore::Calendar)
                        .expect("calendar-core run");
                let ref_out =
                    co_schedule_reference(spec, &alloc, &jobs, mode).expect("reference run");
                assert_eq!(
                    heap_out, ref_out,
                    "heap core diverged at {vms} VMs × {queries} queries ({mode_name})"
                );
                assert_eq!(
                    cal_out, ref_out,
                    "calendar core diverged at {vms} VMs × {queries} queries ({mode_name})"
                );

                // Best-of-N wall clock for each implementation.
                let mut heap_secs = f64::INFINITY;
                let mut cal_secs = f64::INFINITY;
                let mut ref_secs = f64::INFINITY;
                for _ in 0..TIMING_REPS {
                    let t = Instant::now();
                    let out =
                        co_schedule_with_core(spec, &alloc, &jobs, mode, SchedCore::Heap).unwrap();
                    heap_secs = heap_secs.min(t.elapsed().as_secs_f64());
                    assert_eq!(out.0, ref_out, "heap-core run is not deterministic");

                    let t = Instant::now();
                    let out = co_schedule_with_core(spec, &alloc, &jobs, mode, SchedCore::Calendar)
                        .unwrap();
                    cal_secs = cal_secs.min(t.elapsed().as_secs_f64());
                    assert_eq!(out.0, ref_out, "calendar-core run is not deterministic");

                    let t = Instant::now();
                    let out = co_schedule_reference(spec, &alloc, &jobs, mode).unwrap();
                    ref_secs = ref_secs.min(t.elapsed().as_secs_f64());
                    assert_eq!(out, ref_out, "reference run is not deterministic");
                }

                // The production path picks the core by mode; report its
                // numbers as "incremental".
                let (incr_secs, stats) = match SchedCore::for_mode(mode) {
                    SchedCore::Heap => (heap_secs, heap_stats),
                    SchedCore::Calendar => (cal_secs, cal_stats),
                };
                results.push(ConfigResult {
                    vms,
                    queries,
                    mode_name,
                    incr_secs,
                    heap_secs,
                    cal_secs,
                    ref_secs,
                    stats,
                    fp: fingerprint(&ref_out),
                });
            }
        }
    }

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.vms),
                format!("{}", r.queries),
                r.mode_name.to_string(),
                format!("{}", r.stats.events),
                format!(
                    "{:.2}",
                    r.stats.vms_touched as f64 / r.stats.events.max(1) as f64
                ),
                format!("{}", r.stats.heap_peak),
                format!("{:.1}µs", r.heap_secs * 1e6),
                format!("{:.1}µs", r.cal_secs * 1e6),
                format!("{:.1}µs", r.ref_secs * 1e6),
                format!("{:.2}x", r.ref_secs / r.incr_secs),
            ]
        })
        .collect();
    print_table(
        "EXT-SCHED: incremental event cores vs reference rescan loop",
        &[
            "vms",
            "queries",
            "mode",
            "events",
            "touch/evt",
            "peak",
            "heap-core",
            "cal-core",
            "reference",
            "speedup",
        ],
        &rows,
    );

    // Aggregate speedup per VM count and mode (total reference time /
    // total incremental time across that VM count's 4 stream lengths).
    // The headline gate runs on capped mode: it is what every production
    // caller (controller epochs, regret replays, measured oracles, fig5)
    // uses, and the mode where completions provably perturb nobody else.
    // Work-conserving mode is reported alongside as the adversarial case —
    // this sweep's demand mix flips resource classes on most phases, so
    // nearly every event legitimately touches all members of two classes.
    let mut speedup_rows = Vec::new();
    let mut speedup_16_capped = 0.0;
    for vms in VM_COUNTS {
        let mut per_mode = Vec::new();
        for (_, mode_name) in MODES {
            let (incr, refr) = results
                .iter()
                .filter(|r| r.vms == vms && r.mode_name == mode_name)
                .fold((0.0, 0.0), |(a, b), r| (a + r.incr_secs, b + r.ref_secs));
            let speedup = refr / incr;
            if vms == 16 && mode_name == "capped" {
                speedup_16_capped = speedup;
            }
            per_mode.push(format!("{speedup:.2}x"));
        }
        let mut row = vec![format!("{vms}")];
        row.extend(per_mode);
        speedup_rows.push(row);
    }
    print_table(
        "Aggregate speedup by fleet size",
        &["vms", "capped", "wc"],
        &speedup_rows,
    );
    assert!(
        speedup_16_capped >= 3.0,
        "headline claim violated: incremental must be >= 3x the reference at 16 VMs \
         in the production (capped) configuration, got {speedup_16_capped:.2}x"
    );

    // Second headline: the calendar queue vs the heap it replaces, in the
    // regime it was built for. This sweep's demand mix flips resource
    // classes on most phases, so in work-conserving mode nearly every
    // event re-keys every member of both classes — the heap degenerates
    // into O(V log V) pushes per event plus a tail of stale entries,
    // while the calendar re-keys in O(1) with no corpses.
    let (cal_32_wc, heap_32_wc) = results
        .iter()
        .filter(|r| r.vms == 32 && r.mode_name == "wc")
        .fold((0.0, 0.0), |(c, h), r| (c + r.cal_secs, h + r.heap_secs));
    let calendar_speedup_32_wc = heap_32_wc / cal_32_wc;
    assert!(
        calendar_speedup_32_wc >= 2.0,
        "headline claim violated: the calendar core must be >= 2x the heap core at \
         32 VMs on the adversarial class-flipping work-conserving mix, got \
         {calendar_speedup_32_wc:.2}x"
    );
    println!(
        "\nShape check: identity held across all three cores on all {} configurations; \
         capped speedup clears 3x at 16 VMs ({speedup_16_capped:.2}x); the calendar core \
         clears 2x over the heap at 32 VMs work-conserving ({calendar_speedup_32_wc:.2}x).",
        results.len()
    );

    // One stable line per configuration for shell-level double-run diffing.
    for r in &results {
        println!(
            "SCHED_FINGERPRINT {}vm_{}q_{}={:016x}",
            r.vms, r.queries, r.mode_name, r.fp
        );
    }

    let per_config: Vec<String> = results
        .iter()
        .map(|r| {
            JsonObj::new()
                .int("vms", r.vms as u64)
                .int("queries_per_vm", r.queries as u64)
                .str("mode", r.mode_name)
                .float("incremental_secs", r.incr_secs)
                .float("heap_core_secs", r.heap_secs)
                .float("calendar_core_secs", r.cal_secs)
                .float("reference_secs", r.ref_secs)
                .float("speedup", r.ref_secs / r.incr_secs)
                .int("events", r.stats.events)
                .int("phase_completions", r.stats.phase_completions)
                .int("vms_touched", r.stats.vms_touched)
                .float(
                    "vms_touched_per_event",
                    r.stats.vms_touched as f64 / r.stats.events.max(1) as f64,
                )
                .int("heap_pushes", r.stats.heap_pushes)
                .int("heap_peak", r.stats.heap_peak as u64)
                .str("fingerprint", &format!("{:016x}", r.fp))
                .render()
        })
        .collect();
    let bench = JsonObj::new()
        .str("experiment", "ext_sched")
        .float("wall_secs", wall_start.elapsed().as_secs_f64())
        .int("configurations", results.len() as u64)
        .int("timing_reps", TIMING_REPS as u64)
        .float("speedup_at_16_vms_capped", speedup_16_capped)
        .float("calendar_speedup_at_32_vms_wc", calendar_speedup_32_wc)
        .raw("per_config", json_array(&per_config));
    write_bench_artifact("BENCH_sched.json", &bench.render());
}
