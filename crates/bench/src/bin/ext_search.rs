//! EXT-SEARCH — the search-algorithm ablation the paper defers to future
//! work (Section 7: "standard techniques such as dynamic programming will
//! apply here").
//!
//! Runs exhaustive enumeration, greedy unit transfer, and exact dynamic
//! programming on the same two-workload design problem (an I/O-bound Q4
//! workload vs a CPU-bound Q13 workload), comparing solution quality and
//! the number of distinct what-if cost evaluations each needs.

use dbvirt_bench::{
    cache_counters, experiment_machine, json_array, print_table, report_parallel_speedup,
    write_bench_artifact, JsonObj,
};
use dbvirt_core::measure::measure_workload_seconds;
use dbvirt_core::{
    metrics, CalibratedCostModel, DesignProblem, SearchAlgorithm, VirtualizationAdvisor,
    WorkloadSpec,
};
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt_vmm::AllocationMatrix;

fn main() {
    dbvirt_telemetry::enable();
    let wall_start = std::time::Instant::now();
    let machine = experiment_machine();
    println!(
        "Generating TPC-H (SF {:.3}) ...",
        TpchConfig::experiment().scale
    );
    let t = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");
    // A second, identical instance (same seed) for the measured-validation
    // side, so the what-if problem can keep borrowing the first.
    let mut t_measure = TpchDb::generate(TpchConfig::experiment()).expect("tpch generation");

    let units = 8;
    println!("Calibrating the advisor grid ({units} units per resource, 2 workloads) ...");
    let advisor = VirtualizationAdvisor::calibrate(machine, 2, units).expect("advisor calibration");

    let w_io = Workload::compose(&t, &[(TpchQuery::Q4, 3)]);
    let w_cpu = Workload::compose(&t, &[(TpchQuery::Q13, 9)]);
    let problem = DesignProblem::new(
        machine,
        vec![
            WorkloadSpec::new(w_io.name.clone(), &t.db, w_io.queries.clone()),
            WorkloadSpec::new(w_cpu.name.clone(), &t.db, w_cpu.queries.clone()),
        ],
    )
    .expect("problem");

    let model = CalibratedCostModel::new(advisor.grid());
    let equal_total: f64 = metrics::equal_split_costs(&problem, &model)
        .expect("equal-split baseline")
        .iter()
        .sum();

    // Measured validation: run each workload solo under its recommended
    // shares and sum (the model's Cost(W, R) definition).
    let queries: [&[dbvirt_optimizer::LogicalPlan]; 2] = [&w_io.queries, &w_cpu.queries];
    let mut measure_total = |alloc: &AllocationMatrix| -> f64 {
        (0..2)
            .map(|i| {
                measure_workload_seconds(&mut t_measure.db, queries[i], machine, alloc.row(i))
                    .expect("measured validation")
            })
            .sum()
    };
    let equal_alloc = AllocationMatrix::equal_split(2).expect("equal split");
    let measured_equal = measure_total(&equal_alloc);

    let mut rows = Vec::new();
    let mut bench_algorithms = Vec::new();
    let mut optimum = f64::INFINITY;
    for alg in [
        SearchAlgorithm::Exhaustive,
        SearchAlgorithm::Greedy,
        SearchAlgorithm::DynamicProgramming,
    ] {
        let (hits_before, misses_before) = cache_counters();
        let alg_start = std::time::Instant::now();
        let rec = advisor.recommend(&problem, alg).expect("search");
        let alg_secs = alg_start.elapsed().as_secs_f64();
        let (hits_after, misses_after) = cache_counters();
        let (hits, misses) = (hits_after - hits_before, misses_after - misses_before);
        let lookups = hits + misses;
        bench_algorithms.push(
            JsonObj::new()
                .str("algorithm", rec.algorithm)
                .float("wall_secs", alg_secs)
                .float("predicted_total_secs", rec.total_cost)
                .int("evaluations", rec.evaluations as u64)
                .int("cache_hits", hits)
                .int("cache_misses", misses)
                .float(
                    "cache_hit_rate",
                    if lookups > 0 {
                        hits as f64 / lookups as f64
                    } else {
                        f64::NAN
                    },
                )
                .render(),
        );
        optimum = optimum.min(rec.total_cost);
        let measured = measure_total(&rec.allocation);
        let r0 = rec.allocation.row(0);
        let r1 = rec.allocation.row(1);
        rows.push(vec![
            rec.algorithm.to_string(),
            format!("{:.3}s", rec.total_cost),
            format!("{:.3}s", measured),
            format!("{:.2}x", measured_equal / measured),
            format!("cpu {:.0}/{:.0}%", r0.cpu().percent(), r1.cpu().percent()),
            format!(
                "mem {:.0}/{:.0}%",
                r0.memory().percent(),
                r1.memory().percent()
            ),
            rec.evaluations.to_string(),
        ]);
    }
    rows.push(vec![
        "equal split (baseline)".to_string(),
        format!("{equal_total:.3}s"),
        format!("{measured_equal:.3}s"),
        "1.00x".to_string(),
        "cpu 50/50%".to_string(),
        "mem 50/50%".to_string(),
        "2".to_string(),
    ]);

    print_table(
        &format!(
            "EXT-SEARCH: algorithms on W1={} vs W2={} ({} units/resource)",
            w_io.name, w_cpu.name, units
        ),
        &[
            "algorithm",
            "predicted total",
            "measured total",
            "measured vs equal",
            "cpu split",
            "mem split",
            "evaluations",
        ],
        &rows,
    );
    println!("\nSerial vs parallel what-if evaluation (cold caches each run):");
    for alg in [
        SearchAlgorithm::Exhaustive,
        SearchAlgorithm::Greedy,
        SearchAlgorithm::DynamicProgramming,
    ] {
        report_parallel_speedup("EXT-SEARCH", alg, &problem, &model, advisor.config());
    }

    println!(
        "\nShape check: DP and exhaustive agree on the optimum ({optimum:.3}s) and their \
         allocation wins on *measured* time too; greedy uses far fewer evaluations but can \
         stop at a local optimum when the gain requires crossing a cache threshold several \
         share-units away."
    );

    let (total_hits, total_misses) = cache_counters();
    let total_lookups = total_hits + total_misses;
    let bench = JsonObj::new()
        .str("experiment", "ext_search")
        .float("wall_secs", wall_start.elapsed().as_secs_f64())
        .int("units", units as u64)
        .int("workloads", 2)
        .raw("algorithms", json_array(&bench_algorithms))
        .int("cache_hits_total", total_hits)
        .int("cache_misses_total", total_misses)
        .float(
            "cache_hit_rate_total",
            if total_lookups > 0 {
                total_hits as f64 / total_lookups as f64
            } else {
                f64::NAN
            },
        );
    write_bench_artifact("BENCH_search.json", &bench.render());
}
