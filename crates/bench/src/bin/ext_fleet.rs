//! EXT-FLEET — datacenter-scale placement: the fleet advisor's solver
//! ladder (greedy bin-pack → local search → LP lower bound) over a
//! heterogeneous machine fleet, from 4 VMs / 1 machine (the degenerate
//! EXT-CONSOL case, checked bit-for-bit against the core DP) up to
//! 256 VMs / 32 machines.
//!
//! Pins enforced by this binary (and replayed by `scripts/fleet.sh`):
//!
//! * local search strictly improves the greedy seed on the pinned
//!   64-VM / 8-machine fleet;
//! * the LP optimality gap is ≤ 25% on every configuration;
//! * the M=1 placement equals the single-machine DP recommendation;
//! * placements are bit-identical at pre-warm parallelism 1 and 0
//!   (`FLEET_FINGERPRINT` lines, diffed across two process runs).

use dbvirt_bench::{experiment_machine, json_array, print_table, write_bench_artifact, JsonObj};
use dbvirt_calibrate::CalibrationGrid;
use dbvirt_core::search::{run_search_cached, CostCache, SearchAlgorithm, SearchConfig};
use dbvirt_core::{CalibratedCostModel, CostModel, DesignProblem, WorkloadSpec};
use dbvirt_fleet::{FleetAdvisor, FleetConfig, FleetProblem, FleetReport, FleetVm};
use dbvirt_tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt_vmm::MachineSpec;
use std::sync::Arc;

/// The fleet's second machine class: compute-optimized nodes — 35%
/// faster cores and 6x the sequential disk bandwidth of
/// [`experiment_machine`], but only a quarter of the memory. Every mix
/// spills out of this class's 1-unit memory share, yet the fast disk
/// keeps the penalty moderate, so the cross-class cost ratio varies
/// *continuously* with each mix's CPU:scan balance (~1.3-2.4x). That
/// non-collinearity is deliberate: demand-sorted greedy ranks VMs by
/// w*(c_small + c_fast) while the true cost of exiling a VM to this class
/// is w*(c_fast - c_small), so greedy misassigns some VMs and local
/// search has real swaps to find.
fn big_machine() -> MachineSpec {
    let mut m = experiment_machine();
    m.cycles_per_sec *= 1.35;
    m.memory_bytes /= 4;
    m.disk_seq_bytes_per_sec *= 6.0;
    m
}

struct FleetShape {
    name: &'static str,
    vms: usize,
    small_machines: usize,
    big_machines: usize,
    max_rounds: usize,
    lp_iterations: usize,
}

/// At `vms == machines × cap` a fleet is capacity-forced: every machine
/// hosts exactly `cap` VMs, every VM gets the 1-unit floor, and the
/// problem collapses to an assignment problem over per-class costs.
/// `large` (64 VMs / 8 machines, forced) is where the local-search pin
/// lives: greedy ranks VMs by total demand while the true cost of the
/// class boundary is the cross-class *difference*, and because the
/// compute-class ratio varies per mix (see [`big_machine`]) those
/// orderings disagree — greedy misassigns a handful of VMs and swaps
/// recover the optimum. `xl` doubles as the scale stress and stays in the
/// same forced regime.
const SHAPES: &[FleetShape] = &[
    FleetShape { name: "m1", vms: 4, small_machines: 1, big_machines: 0, max_rounds: 16, lp_iterations: 250 },
    FleetShape { name: "small", vms: 4, small_machines: 1, big_machines: 1, max_rounds: 16, lp_iterations: 250 },
    FleetShape { name: "mid", vms: 16, small_machines: 2, big_machines: 2, max_rounds: 24, lp_iterations: 300 },
    FleetShape { name: "large", vms: 64, small_machines: 4, big_machines: 4, max_rounds: 32, lp_iterations: 300 },
    FleetShape { name: "xl", vms: 256, small_machines: 16, big_machines: 16, max_rounds: 6, lp_iterations: 150 },
];

const UNITS: u32 = 8;

fn fleet_vms<'a>(t: &'a TpchDb, mixes: &'a [Workload], n: usize) -> Vec<FleetVm<'a>> {
    (0..n)
        .map(|i| {
            let mix = &mixes[i % mixes.len()];
            FleetVm::new(format!("vm{:03}-{}", i, mix.name), &t.db, mix.queries.clone())
                .with_weight(0.5 + (i % 5) as f64 * 0.45)
        })
        .collect()
}

fn place(
    machines: &[MachineSpec],
    models: &[&dyn CostModel],
    cfg: FleetConfig,
    problem: &FleetProblem<'_>,
) -> FleetReport {
    let advisor = FleetAdvisor::new(machines.to_vec(), models.to_vec(), cfg).expect("advisor");
    advisor.place(problem).expect("placement")
}

fn main() {
    dbvirt_telemetry::enable();
    let wall_start = std::time::Instant::now();
    println!("Generating TPC-H (SF {:.3}) ...", TpchConfig::tiny().scale);
    let t = TpchDb::generate(TpchConfig::tiny()).expect("tpch generation");

    // Cheap single-scan-dominated mixes: pre-warm evaluates up to
    // |classes| x N x 64 cells, so per-evaluation planning must stay light.
    let mixes: Vec<Workload> = vec![
        Workload::compose(&t, &[(TpchQuery::Q6, 1)]),
        Workload::compose(&t, &[(TpchQuery::Q1, 1)]),
        Workload::compose(&t, &[(TpchQuery::Q14, 1)]),
        Workload::compose(&t, &[(TpchQuery::Q4, 1)]),
        Workload::compose(&t, &[(TpchQuery::Q6, 2)]),
        Workload::compose(&t, &[(TpchQuery::Q1, 1), (TpchQuery::Q6, 1)]),
    ];

    let base_cfg = FleetConfig::new(UNITS);
    let small = experiment_machine();
    let big = big_machine();
    println!(
        "Calibrating both machine classes ({} grid points, disk share {:.3}) ...",
        UNITS, base_cfg.disk_share
    );
    let points: Vec<f64> = (1..=UNITS).map(|u| u as f64 / UNITS as f64).collect();
    let grid_small = CalibrationGrid::calibrate(small, points.clone(), points.clone(), base_cfg.disk_share)
        .expect("small-class calibration");
    let grid_big = CalibrationGrid::calibrate(big, points.clone(), points.clone(), base_cfg.disk_share)
        .expect("big-class calibration");
    let model_small = CalibratedCostModel::new(&grid_small);
    let model_big = CalibratedCostModel::new(&grid_big);

    let mut rows = Vec::new();
    let mut shape_objs = Vec::new();
    for shape in SHAPES {
        let machines: Vec<MachineSpec> = std::iter::repeat(small)
            .take(shape.small_machines)
            .chain(std::iter::repeat(big).take(shape.big_machines))
            .collect();
        let models: Vec<&dyn CostModel> = if shape.big_machines == 0 {
            vec![&model_small]
        } else {
            vec![&model_small, &model_big]
        };
        let mut cfg = base_cfg.with_parallelism(1);
        cfg.max_rounds = shape.max_rounds;
        cfg.lp_iterations = shape.lp_iterations;
        let vms = fleet_vms(&t, &mixes, shape.vms);
        let problem = FleetProblem::new(machines.clone(), vms).expect("fleet problem");

        let start = std::time::Instant::now();
        let report = place(&machines, &models, cfg, &problem);
        let serial_secs = start.elapsed().as_secs_f64();
        // Pin: pre-warm parallelism must be invisible in the answer.
        let start = std::time::Instant::now();
        let report_par = place(&machines, &models, cfg.with_parallelism(0), &problem);
        let parallel_secs = start.elapsed().as_secs_f64();
        assert_eq!(
            report.fingerprint(),
            report_par.fingerprint(),
            "{}: placement diverged between pre-warm parallelism 1 and 0",
            shape.name
        );

        let improvement =
            report.greedy_placement.total_objective - report.placement.total_objective;
        // Pin: the LP gap certifies every configuration within 25%.
        assert!(
            report.optimality_gap <= 0.25,
            "{}: optimality gap {:.1}% exceeds the 25% pin",
            shape.name,
            report.optimality_gap * 100.0
        );
        // Pin: local search strictly improves greedy on the 64/8 fleet.
        if shape.name == "large" {
            assert!(
                improvement > 0.0,
                "large: local search found no improvement over greedy"
            );
        }
        // Pin: M=1 is exactly the paper's single-machine problem.
        if shape.name == "m1" {
            assert_m1_matches_core_dp(&report, &problem, &model_small, cfg);
        }
        // Pin: the capacity-forced xl shape must actually search — moves
        // are structurally impossible there (every machine is full), so
        // the seeded swap sampler is what keeps candidates flowing.
        if shape.name == "xl" {
            assert!(
                report.local_search.candidates_evaluated > 0,
                "xl: local search evaluated no candidates (sampler broken?)"
            );
            assert!(
                report.local_search.swap_candidates_sampled > 0,
                "xl: swap sampler drew no candidates"
            );
        }

        println!(
            "FLEET_FINGERPRINT {}={:016x}",
            shape.name,
            report.fingerprint()
        );
        rows.push(vec![
            shape.name.to_string(),
            format!("{}", shape.vms),
            format!("{}", machines.len()),
            format!("{:.3}s", report.greedy_placement.total_objective),
            format!("{:.3}s", report.placement.total_objective),
            format!("{:.4}s", improvement),
            format!("{:.3}s", report.lp.bound),
            format!("{:.1}%", report.optimality_gap * 100.0),
            format!(
                "{}+{}",
                report.local_search.moves_applied, report.local_search.swaps_applied
            ),
            format!("{:.2}s", serial_secs),
        ]);
        shape_objs.push(
            JsonObj::new()
                .str("shape", shape.name)
                .int("vms", shape.vms as u64)
                .int("machines", machines.len() as u64)
                .float("greedy_total_secs", report.greedy_placement.total_objective)
                .float("final_total_secs", report.placement.total_objective)
                .float("ls_improvement_secs", improvement)
                .float("lp_bound_secs", report.lp.bound)
                .float("optimality_gap", report.optimality_gap)
                .int("lp_iterations", report.lp.iterations as u64)
                .int("ls_rounds", report.local_search.rounds as u64)
                .int("ls_moves", report.local_search.moves_applied as u64)
                .int("ls_swaps", report.local_search.swaps_applied as u64)
                .int(
                    "ls_candidates",
                    report.local_search.candidates_evaluated as u64,
                )
                .int(
                    "swaps_enumerated",
                    report.local_search.swaps_enumerated as u64,
                )
                .int(
                    "ls_swaps_sampled",
                    report.local_search.swap_candidates_sampled as u64,
                )
                .int("prewarm_cells", report.prewarm_cells as u64)
                .int("dp_solves", report.solves as u64)
                .int("memo_hits", report.memo_hits as u64)
                .float("serial_secs", serial_secs)
                .float("parallel_secs", parallel_secs)
                .str("fingerprint", &format!("{:016x}", report.fingerprint()))
                .render(),
        );
    }

    print_table(
        "EXT-FLEET: placement ladder (greedy -> local search, LP-certified)",
        &[
            "shape", "vms", "machines", "greedy", "final", "LS gain", "LP bound", "gap",
            "moves+swaps", "wall",
        ],
        &rows,
    );
    println!(
        "\nShape check: local search never worsens greedy, every gap is LP-certified ≤ 25%, \
         and the M=1 fleet reproduces the single-machine DP exactly."
    );

    let bench = JsonObj::new()
        .str("experiment", "ext_fleet")
        .float("wall_secs", wall_start.elapsed().as_secs_f64())
        .int("units", UNITS as u64)
        .float("disk_share", base_cfg.disk_share)
        .raw("shapes", json_array(&shape_objs));
    write_bench_artifact("BENCH_fleet.json", &bench.render());
}

/// The degenerate fleet (one machine) must return exactly what the core
/// dynamic program returns for the equivalent [`DesignProblem`].
fn assert_m1_matches_core_dp(
    report: &FleetReport,
    problem: &FleetProblem<'_>,
    model: &CalibratedCostModel<'_>,
    cfg: FleetConfig,
) {
    let workloads = problem
        .vms
        .iter()
        .map(|vm| {
            WorkloadSpec::new(vm.name.clone(), vm.db, vm.queries.clone()).with_weight(vm.weight)
        })
        .collect();
    let dp = DesignProblem::new(problem.machines[0], workloads).expect("m1 problem");
    let scfg = SearchConfig {
        units: cfg.units,
        disk_share: cfg.disk_share,
        min_units: cfg.min_units,
        parallelism: 1,
        cpu_budget: cfg.units,
        mem_budget: cfg.units,
    };
    let rec = run_search_cached(
        SearchAlgorithm::DynamicProgramming,
        &dp,
        model,
        scfg,
        &Arc::new(CostCache::new()),
    )
    .expect("m1 DP");
    assert!(
        report.placement.machine_of.iter().all(|&m| m == 0),
        "m1: some VM left the only machine"
    );
    assert_eq!(
        report.placement.steady_objective, rec.objective,
        "m1: fleet objective differs from the core DP objective"
    );
    for (i, row) in rec.allocation.rows().enumerate() {
        let c = (row.cpu().fraction() * cfg.units as f64).round() as u32;
        let mu = (row.memory().fraction() * cfg.units as f64).round() as u32;
        assert_eq!(
            report.placement.units_of[i],
            (c, mu),
            "m1: VM {i} units differ from the core DP recommendation"
        );
    }
    println!("m1 check OK: fleet placement == single-machine DP recommendation (bit-exact).");
}
