//! Scalar expressions with SQL three-valued semantics.

use dbvirt_storage::{DataType, Datum, Schema, Tuple};
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression over the columns of a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to column `i` of the input tuple.
    Column(usize),
    /// A constant.
    Literal(Datum),
    /// Comparison of two sub-expressions.
    Cmp {
        /// The operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical conjunction (three-valued).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction (three-valued).
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation (three-valued).
    Not(Box<Expr>),
    /// Arithmetic on numerics.
    Arith {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// SQL `LIKE` with `%` (any run) and `_` (any char) wildcards.
    Like {
        /// String operand.
        expr: Box<Expr>,
        /// The pattern.
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// `expr IN (list)` over constants.
    InList {
        /// Probe expression.
        expr: Box<Expr>,
        /// The constant list.
        list: Vec<Datum>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `CASE WHEN c1 THEN v1 ... ELSE e END`.
    Case {
        /// `(condition, value)` branches, tested in order.
        branches: Vec<(Expr, Expr)>,
        /// The `ELSE` value (`NULL` when absent).
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    /// Constant.
    pub fn lit(d: Datum) -> Expr {
        Expr::Literal(d)
    }

    /// Integer constant.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Datum::Int(v))
    }

    /// Float constant.
    pub fn float(v: f64) -> Expr {
        Expr::Literal(Datum::Float(v))
    }

    /// String constant.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Literal(Datum::Str(s.into()))
    }

    /// Date constant (days since epoch).
    pub fn date(d: i32) -> Expr {
        Expr::Literal(Datum::Date(d))
    }

    /// Comparison builder.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, lhs, rhs)
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Lt, lhs, rhs)
    }

    /// `lhs <= rhs`.
    pub fn le(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Le, lhs, rhs)
    }

    /// `lhs > rhs`.
    pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Gt, lhs, rhs)
    }

    /// `lhs >= rhs`.
    pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Ge, lhs, rhs)
    }

    /// Conjunction.
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::And(Box::new(lhs), Box::new(rhs))
    }

    /// Conjunction of many terms (`TRUE` for an empty list).
    pub fn and_all(terms: Vec<Expr>) -> Expr {
        terms
            .into_iter()
            .reduce(Expr::and)
            .unwrap_or(Expr::Literal(Datum::Bool(true)))
    }

    /// Disjunction.
    pub fn or(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Or(Box::new(lhs), Box::new(rhs))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)] // builder, not an operator impl
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Arithmetic builder.
    pub fn arith(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Arith {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs + rhs`.
    #[allow(clippy::should_implement_trait)] // builder, not an operator impl
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::arith(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    #[allow(clippy::should_implement_trait)] // builder, not an operator impl
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::arith(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    #[allow(clippy::should_implement_trait)] // builder, not an operator impl
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::arith(BinOp::Mul, lhs, rhs)
    }

    /// `LIKE` builder.
    pub fn like(expr: Expr, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(expr),
            pattern: pattern.into(),
            negated: false,
        }
    }

    /// `NOT LIKE` builder.
    pub fn not_like(expr: Expr, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(expr),
            pattern: pattern.into(),
            negated: true,
        }
    }

    /// `IN` builder.
    pub fn in_list(expr: Expr, list: Vec<Datum>) -> Expr {
        Expr::InList {
            expr: Box::new(expr),
            list,
        }
    }

    /// `BETWEEN lo AND hi` (inclusive), as sugar over two comparisons.
    pub fn between(expr: Expr, lo: Datum, hi: Datum) -> Expr {
        Expr::and(
            Expr::ge(expr.clone(), Expr::lit(lo)),
            Expr::le(expr, Expr::lit(hi)),
        )
    }

    /// Evaluates the expression against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Datum {
        match self {
            Expr::Column(i) => tuple.get(*i).clone(),
            Expr::Literal(d) => d.clone(),
            Expr::Cmp { op, lhs, rhs } => {
                let (a, b) = (lhs.eval(tuple), rhs.eval(tuple));
                match a.sql_cmp(&b) {
                    Some(ord) => Datum::Bool(op.test(ord)),
                    None => Datum::Null,
                }
            }
            Expr::And(l, r) => match (l.eval(tuple).as_bool(), r.eval(tuple).as_bool()) {
                (Some(false), _) | (_, Some(false)) => Datum::Bool(false),
                (Some(true), Some(true)) => Datum::Bool(true),
                _ => Datum::Null,
            },
            Expr::Or(l, r) => match (l.eval(tuple).as_bool(), r.eval(tuple).as_bool()) {
                (Some(true), _) | (_, Some(true)) => Datum::Bool(true),
                (Some(false), Some(false)) => Datum::Bool(false),
                _ => Datum::Null,
            },
            Expr::Not(e) => match e.eval(tuple).as_bool() {
                Some(b) => Datum::Bool(!b),
                None => Datum::Null,
            },
            Expr::Arith { op, lhs, rhs } => {
                let (a, b) = (lhs.eval(tuple), rhs.eval(tuple));
                if a.is_null() || b.is_null() {
                    return Datum::Null;
                }
                // Integer arithmetic stays integral except division.
                if let (Datum::Int(x), Datum::Int(y)) = (&a, &b) {
                    return match op {
                        BinOp::Add => Datum::Int(x.wrapping_add(*y)),
                        BinOp::Sub => Datum::Int(x.wrapping_sub(*y)),
                        BinOp::Mul => Datum::Int(x.wrapping_mul(*y)),
                        BinOp::Div => {
                            if *y == 0 {
                                Datum::Null
                            } else {
                                Datum::Float(*x as f64 / *y as f64)
                            }
                        }
                    };
                }
                match (a.as_float(), b.as_float()) {
                    (Some(x), Some(y)) => match op {
                        BinOp::Add => Datum::Float(x + y),
                        BinOp::Sub => Datum::Float(x - y),
                        BinOp::Mul => Datum::Float(x * y),
                        BinOp::Div => {
                            if y == 0.0 {
                                Datum::Null
                            } else {
                                Datum::Float(x / y)
                            }
                        }
                    },
                    _ => Datum::Null,
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => match expr.eval(tuple) {
                Datum::Str(s) => {
                    let m = like_match(pattern.as_bytes(), s.as_bytes());
                    Datum::Bool(m != *negated)
                }
                _ => Datum::Null,
            },
            Expr::InList { expr, list } => {
                let v = expr.eval(tuple);
                if v.is_null() {
                    return Datum::Null;
                }
                let mut saw_null = false;
                for item in list {
                    match v.sql_cmp(item) {
                        Some(std::cmp::Ordering::Equal) => return Datum::Bool(true),
                        None => saw_null = true,
                        _ => {}
                    }
                }
                if saw_null {
                    Datum::Null
                } else {
                    Datum::Bool(false)
                }
            }
            Expr::IsNull { expr, negated } => Datum::Bool(expr.eval(tuple).is_null() != *negated),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (cond, value) in branches {
                    if cond.eval(tuple).as_bool() == Some(true) {
                        return value.eval(tuple);
                    }
                }
                else_expr.as_ref().map_or(Datum::Null, |e| e.eval(tuple))
            }
        }
    }

    /// Evaluates as a filter predicate: `Some(true)` passes, anything else
    /// (false or NULL) filters the row out.
    pub fn eval_bool(&self, tuple: &Tuple) -> Option<bool> {
        self.eval(tuple).as_bool()
    }

    /// Number of operator applications in the expression tree — the unit
    /// PostgreSQL charges `cpu_operator_cost` for ("each WHERE clause
    /// item"). Columns and literals are free.
    pub fn num_operators(&self) -> u32 {
        match self {
            Expr::Column(_) | Expr::Literal(_) => 0,
            Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
                1 + lhs.num_operators() + rhs.num_operators()
            }
            Expr::And(l, r) | Expr::Or(l, r) => 1 + l.num_operators() + r.num_operators(),
            Expr::Not(e) => 1 + e.num_operators(),
            // Pattern matching walks the string: charge one operator per
            // few pattern characters, so LIKE-heavy queries (e.g. TPC-H
            // Q13's comment filter) are correctly CPU-expensive in both
            // the executor's accounting and the optimizer's model.
            Expr::Like { expr, pattern, .. } => {
                1 + (pattern.len() as u32) / 4 + expr.num_operators()
            }
            Expr::InList { expr, list } => 1 + list.len() as u32 / 2 + expr.num_operators(),
            Expr::IsNull { expr, .. } => 1 + expr.num_operators(),
            Expr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .map(|(c, v)| 1 + c.num_operators() + v.num_operators())
                    .sum::<u32>()
                    + else_expr.as_ref().map_or(0, |e| e.num_operators())
            }
        }
    }

    /// Best-effort output type against an input schema.
    pub fn data_type(&self, schema: &Schema) -> DataType {
        match self {
            Expr::Column(i) => schema.field(*i).data_type,
            Expr::Literal(d) => d.data_type().unwrap_or(DataType::Int),
            Expr::Cmp { .. }
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(_)
            | Expr::Like { .. }
            | Expr::InList { .. }
            | Expr::IsNull { .. } => DataType::Bool,
            Expr::Arith { op, lhs, rhs } => {
                let (a, b) = (lhs.data_type(schema), rhs.data_type(schema));
                if *op == BinOp::Div || a == DataType::Float || b == DataType::Float {
                    DataType::Float
                } else {
                    DataType::Int
                }
            }
            Expr::Case {
                branches,
                else_expr,
            } => branches
                .first()
                .map(|(_, v)| v.data_type(schema))
                .or_else(|| else_expr.as_ref().map(|e| e.data_type(schema)))
                .unwrap_or(DataType::Int),
        }
    }

    /// Column indexes referenced anywhere in the expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::Literal(_) => {}
            Expr::Cmp { lhs, rhs, .. } | Expr::Arith { lhs, rhs, .. } => {
                lhs.referenced_columns(out);
                rhs.referenced_columns(out);
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            Expr::Not(e) | Expr::Like { expr: e, .. } | Expr::IsNull { expr: e, .. } => {
                e.referenced_columns(out)
            }
            Expr::InList { expr, .. } => expr.referenced_columns(out),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.referenced_columns(out);
                    v.referenced_columns(out);
                }
                if let Some(e) = else_expr {
                    e.referenced_columns(out);
                }
            }
        }
    }

    /// Returns a copy with every column index shifted by `offset` (used
    /// when moving predicates above a join).
    pub fn shift_columns(&self, offset: usize) -> Expr {
        match self {
            Expr::Column(i) => Expr::Column(i + offset),
            Expr::Literal(d) => Expr::Literal(d.clone()),
            Expr::Cmp { op, lhs, rhs } => {
                Expr::cmp(*op, lhs.shift_columns(offset), rhs.shift_columns(offset))
            }
            Expr::And(l, r) => Expr::and(l.shift_columns(offset), r.shift_columns(offset)),
            Expr::Or(l, r) => Expr::or(l.shift_columns(offset), r.shift_columns(offset)),
            Expr::Not(e) => Expr::not(e.shift_columns(offset)),
            Expr::Arith { op, lhs, rhs } => {
                Expr::arith(*op, lhs.shift_columns(offset), rhs.shift_columns(offset))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.shift_columns(offset)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList { expr, list } => Expr::InList {
                expr: Box::new(expr.shift_columns(offset)),
                list: list.clone(),
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.shift_columns(offset)),
                negated: *negated,
            },
            Expr::Case {
                branches,
                else_expr,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.shift_columns(offset), v.shift_columns(offset)))
                    .collect(),
                else_expr: else_expr
                    .as_ref()
                    .map(|e| Box::new(e.shift_columns(offset))),
            },
        }
    }
}

/// SQL `LIKE` matcher with `%` and `_` wildcards (iterative backtracking).
pub(crate) fn like_match(pattern: &[u8], text: &[u8]) -> bool {
    let (mut p, mut t) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while t < text.len() {
        if p < pattern.len() && (pattern[p] == b'_' || pattern[p] == text[t]) {
            p += 1;
            t += 1;
        } else if p < pattern.len() && pattern[p] == b'%' {
            star_p = p;
            star_t = t;
            p += 1;
        } else if star_p != usize::MAX {
            p = star_p + 1;
            star_t += 1;
            t = star_t;
        } else {
            return false;
        }
    }
    while p < pattern.len() && pattern[p] == b'%' {
        p += 1;
    }
    p == pattern.len()
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(expr)` — non-null inputs.
    Count,
    /// `COUNT(*)` — all rows.
    CountStar,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

/// One aggregate in a `GROUP BY` output.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Its argument (absent for `COUNT(*)`).
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// `COUNT(*) AS name`.
    pub fn count_star(name: impl Into<String>) -> AggExpr {
        AggExpr {
            func: AggFunc::CountStar,
            arg: None,
            name: name.into(),
        }
    }

    /// `func(arg) AS name`.
    pub fn new(func: AggFunc, arg: Expr, name: impl Into<String>) -> AggExpr {
        AggExpr {
            func,
            arg: Some(arg),
            name: name.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(values: Vec<Datum>) -> Tuple {
        Tuple::new(values)
    }

    #[test]
    fn comparisons_and_nulls() {
        let row = t(vec![Datum::Int(5), Datum::Null]);
        assert_eq!(
            Expr::lt(Expr::col(0), Expr::int(10)).eval(&row),
            Datum::Bool(true)
        );
        assert_eq!(
            Expr::eq(Expr::col(1), Expr::int(10)).eval(&row),
            Datum::Null
        );
        assert_eq!(
            Expr::ge(Expr::col(0), Expr::int(5)).eval(&row),
            Datum::Bool(true)
        );
    }

    #[test]
    fn three_valued_logic() {
        let row = t(vec![Datum::Null]);
        let null_cmp = Expr::eq(Expr::col(0), Expr::int(1));
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NOT NULL = NULL.
        assert_eq!(
            Expr::and(null_cmp.clone(), Expr::lit(Datum::Bool(false))).eval(&row),
            Datum::Bool(false)
        );
        assert_eq!(
            Expr::or(null_cmp.clone(), Expr::lit(Datum::Bool(true))).eval(&row),
            Datum::Bool(true)
        );
        assert_eq!(Expr::not(null_cmp.clone()).eval(&row), Datum::Null);
        assert_eq!(
            Expr::and(null_cmp.clone(), Expr::lit(Datum::Bool(true))).eval(&row),
            Datum::Null
        );
        assert_eq!(null_cmp.eval_bool(&row), None);
    }

    #[test]
    fn arithmetic_coercion_and_div_by_zero() {
        let row = t(vec![Datum::Int(7), Datum::Float(2.0)]);
        assert_eq!(
            Expr::add(Expr::col(0), Expr::int(3)).eval(&row),
            Datum::Int(10)
        );
        assert_eq!(
            Expr::mul(Expr::col(0), Expr::col(1)).eval(&row),
            Datum::Float(14.0)
        );
        assert_eq!(
            Expr::arith(BinOp::Div, Expr::col(0), Expr::int(2)).eval(&row),
            Datum::Float(3.5)
        );
        assert_eq!(
            Expr::arith(BinOp::Div, Expr::col(0), Expr::int(0)).eval(&row),
            Datum::Null
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match(b"PROMO%", b"PROMO BURNISHED"));
        assert!(!like_match(b"PROMO%", b"STANDARD"));
        assert!(like_match(
            b"%special%requests%",
            b"the special deposit requests here"
        ));
        assert!(!like_match(b"%special%requests%", b"requests then special"));
        assert!(like_match(b"a_c", b"abc"));
        assert!(!like_match(b"a_c", b"abbc"));
        assert!(like_match(b"%", b""));
        assert!(like_match(b"", b""));
        assert!(!like_match(b"", b"x"));
        assert!(like_match(b"%%x%%", b"zzxzz"));
    }

    #[test]
    fn like_expr_and_negation() {
        let row = t(vec![Datum::str("hello special world requests end")]);
        let e = Expr::like(Expr::col(0), "%special%requests%");
        assert_eq!(e.eval(&row), Datum::Bool(true));
        let e = Expr::not_like(Expr::col(0), "%special%requests%");
        assert_eq!(e.eval(&row), Datum::Bool(false));
        let null_row = t(vec![Datum::Null]);
        assert_eq!(e.eval(&null_row), Datum::Null);
    }

    #[test]
    fn in_list_semantics() {
        let row = t(vec![Datum::Int(2)]);
        let e = Expr::in_list(Expr::col(0), vec![Datum::Int(1), Datum::Int(2)]);
        assert_eq!(e.eval(&row), Datum::Bool(true));
        let e = Expr::in_list(Expr::col(0), vec![Datum::Int(5), Datum::Null]);
        assert_eq!(e.eval(&row), Datum::Null, "no match + NULL in list = NULL");
        let e = Expr::in_list(Expr::col(0), vec![Datum::Int(5)]);
        assert_eq!(e.eval(&row), Datum::Bool(false));
    }

    #[test]
    fn is_null_and_case() {
        let row = t(vec![Datum::Null, Datum::Int(3)]);
        assert_eq!(
            Expr::IsNull {
                expr: Box::new(Expr::col(0)),
                negated: false
            }
            .eval(&row),
            Datum::Bool(true)
        );
        let case = Expr::Case {
            branches: vec![
                (Expr::gt(Expr::col(1), Expr::int(5)), Expr::str("big")),
                (Expr::gt(Expr::col(1), Expr::int(1)), Expr::str("mid")),
            ],
            else_expr: Some(Box::new(Expr::str("small"))),
        };
        assert_eq!(case.eval(&row), Datum::str("mid"));
    }

    #[test]
    fn between_sugar() {
        let row = t(vec![Datum::Float(0.05)]);
        let e = Expr::between(Expr::col(0), Datum::Float(0.04), Datum::Float(0.06));
        assert_eq!(e.eval(&row), Datum::Bool(true));
        let row = t(vec![Datum::Float(0.07)]);
        assert_eq!(e.eval(&row), Datum::Bool(false));
    }

    #[test]
    fn operator_counting() {
        // (a < 10) AND (b = 'x') : two comparisons + one AND = 3.
        let e = Expr::and(
            Expr::lt(Expr::col(0), Expr::int(10)),
            Expr::eq(Expr::col(1), Expr::str("x")),
        );
        assert_eq!(e.num_operators(), 3);
        assert_eq!(Expr::col(0).num_operators(), 0);
        // LIKE costs grow with pattern length (string matching is real
        // work per row).
        let short = Expr::like(Expr::col(0), "%x%");
        let long = Expr::like(Expr::col(0), "%special%requests%");
        assert!(long.num_operators() > short.num_operators());
    }

    #[test]
    fn referenced_columns_and_shift() {
        let e = Expr::and(
            Expr::lt(Expr::col(2), Expr::int(10)),
            Expr::eq(Expr::col(0), Expr::col(5)),
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 2, 5]);
        let shifted = e.shift_columns(10);
        let mut cols = Vec::new();
        shifted.referenced_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![10, 12, 15]);
    }

    #[test]
    fn data_types() {
        use dbvirt_storage::Field;
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
        ]);
        assert_eq!(Expr::col(0).data_type(&schema), DataType::Int);
        assert_eq!(
            Expr::add(Expr::col(0), Expr::col(1)).data_type(&schema),
            DataType::Float
        );
        assert_eq!(
            Expr::lt(Expr::col(0), Expr::int(1)).data_type(&schema),
            DataType::Bool
        );
    }
}
