//! Aggregation operators: hash aggregation and sorted-input aggregation.

use crate::runtime::ExecContext;
use crate::{AggExpr, AggFunc};
use dbvirt_storage::{Datum, Tuple};
use std::collections::HashMap;

/// Running state of one aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    /// `(integer sum, float sum, saw_float, saw_any)` — SUM of integers
    /// stays integral, mixed input widens to float.
    Sum(i64, f64, bool, bool),
    Avg(f64, i64),
    Min(Option<Datum>),
    Max(Option<Datum>),
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count | AggFunc::CountStar => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0, 0.0, false, false),
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, func: AggFunc, value: Option<Datum>) {
        match (self, func) {
            (AggState::Count(n), AggFunc::CountStar) => *n += 1,
            (AggState::Count(n), AggFunc::Count) => {
                if matches!(&value, Some(v) if !v.is_null()) {
                    *n += 1;
                }
            }
            (AggState::Sum(si, sf, saw_float, seen), _) => match value {
                Some(Datum::Int(v)) => {
                    *si += v;
                    *seen = true;
                }
                Some(Datum::Float(v)) => {
                    *sf += v;
                    *saw_float = true;
                    *seen = true;
                }
                _ => {}
            },
            (AggState::Avg(sum, n), _) => {
                if let Some(v) = value.as_ref().and_then(Datum::as_float) {
                    *sum += v;
                    *n += 1;
                }
            }
            (AggState::Min(cur), _) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    let replace = cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt());
                    if replace {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Max(cur), _) => {
                if let Some(v) = value.filter(|v| !v.is_null()) {
                    let replace = cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt());
                    if replace {
                        *cur = Some(v);
                    }
                }
            }
            (AggState::Count(_), _) => unreachable!("count state with non-count func"),
        }
    }

    fn finish(self) -> Datum {
        match self {
            AggState::Count(n) => Datum::Int(n),
            AggState::Sum(si, sf, saw_float, seen) => {
                if !seen {
                    Datum::Null
                } else if saw_float {
                    Datum::Float(sf + si as f64)
                } else {
                    Datum::Int(si)
                }
            }
            AggState::Avg(sum, n) => {
                if n == 0 {
                    Datum::Null
                } else {
                    Datum::Float(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Datum::Null),
        }
    }
}

fn make_states(aggs: &[AggExpr]) -> Vec<AggState> {
    aggs.iter().map(|a| AggState::new(a.func)).collect()
}

fn update_states(states: &mut [AggState], aggs: &[AggExpr], row: &Tuple) {
    for (state, agg) in states.iter_mut().zip(aggs) {
        let value = agg.arg.as_ref().map(|e| e.eval(row));
        state.update(agg.func, value);
    }
}

fn finish_group(group: Vec<Datum>, states: Vec<AggState>) -> Tuple {
    let mut values = group;
    values.extend(states.into_iter().map(AggState::finish));
    Tuple::new(values)
}

fn charge(ctx: &mut ExecContext<'_>, rows: usize, aggs: &[AggExpr], hashed: bool) {
    let costs = ctx.costs;
    let ops: f64 = aggs
        .iter()
        .map(|a| a.arg.as_ref().map_or(0.0, |e| e.num_operators() as f64))
        .sum();
    let per_row = aggs.len() as f64 * costs.per_agg
        + ops * costs.per_operator
        + if hashed { costs.per_hash } else { 0.0 };
    ctx.charge_cpu(per_row * rows as f64);
}

/// Hash aggregation: one group per distinct key, any input order.
pub fn hash_agg(
    ctx: &mut ExecContext<'_>,
    rows: Vec<Tuple>,
    group_by: &[usize],
    aggs: &[AggExpr],
) -> Vec<Tuple> {
    charge(ctx, rows.len(), aggs, !group_by.is_empty());

    if group_by.is_empty() {
        // Global aggregate: exactly one output row, even for empty input.
        let mut states = make_states(aggs);
        for row in &rows {
            update_states(&mut states, aggs, row);
        }
        return vec![finish_group(Vec::new(), states)];
    }

    let mut groups: HashMap<bytes::Bytes, (Vec<Datum>, Vec<AggState>)> = HashMap::new();
    let mut order: Vec<bytes::Bytes> = Vec::new();
    for row in &rows {
        let key_tuple = row.project(group_by);
        let key = key_tuple.encode();
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (key_tuple.into_values(), make_states(aggs))
        });
        update_states(&mut entry.1, aggs, row);
    }
    // Deterministic output: first-seen group order.
    //
    // Infallibility: `order` gains a key only inside the `or_insert_with`
    // above, i.e. exactly when that key is first inserted into `groups`,
    // and nothing removes from `groups` until this drain — so every
    // `remove` finds its entry. (The executor's materializing signatures
    // return plain `Vec<Tuple>`; a broken invariant here is a bug, not a
    // runtime condition worth an `EngineError` variant.)
    order
        .into_iter()
        .map(|k| {
            let (group, states) = groups.remove(&k).expect("group recorded on insert");
            finish_group(group, states)
        })
        .collect()
}

/// Aggregation over input sorted by the grouping columns: constant memory,
/// no hashing.
pub fn sort_agg(
    ctx: &mut ExecContext<'_>,
    rows: Vec<Tuple>,
    group_by: &[usize],
    aggs: &[AggExpr],
) -> Vec<Tuple> {
    charge(ctx, rows.len(), aggs, false);

    if group_by.is_empty() {
        let mut states = make_states(aggs);
        for row in &rows {
            update_states(&mut states, aggs, row);
        }
        return vec![finish_group(Vec::new(), states)];
    }

    let mut out = Vec::new();
    let mut current: Option<(Vec<Datum>, Vec<AggState>)> = None;
    for row in &rows {
        let key: Vec<Datum> = group_by.iter().map(|&c| row.get(c).clone()).collect();
        let same = current.as_ref().is_some_and(|(k, _)| {
            k.iter()
                .zip(&key)
                .all(|(a, b)| a.total_cmp(b) == std::cmp::Ordering::Equal)
        });
        if !same {
            if let Some((group, states)) = current.take() {
                out.push(finish_group(group, states));
            }
        }
        // On a group change `current` was just drained, so this inserts
        // the new group; otherwise it reuses the live one. Either way the
        // slot is occupied — no unwrap needed.
        let (_, states) = current.get_or_insert_with(|| (key, make_states(aggs)));
        update_states(states, aggs, row);
    }
    if let Some((group, states)) = current {
        out.push(finish_group(group, states));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::tests_support::{context, small_db};
    use crate::Expr;

    fn rows(data: &[(&str, i64)]) -> Vec<Tuple> {
        data.iter()
            .map(|(g, v)| Tuple::new(vec![Datum::str(*g), Datum::Int(*v)]))
            .collect()
    }

    fn aggs() -> Vec<AggExpr> {
        vec![
            AggExpr::count_star("n"),
            AggExpr::new(AggFunc::Sum, Expr::col(1), "total"),
            AggExpr::new(AggFunc::Avg, Expr::col(1), "mean"),
            AggExpr::new(AggFunc::Min, Expr::col(1), "lo"),
            AggExpr::new(AggFunc::Max, Expr::col(1), "hi"),
        ]
    }

    #[test]
    fn hash_agg_groups_correctly() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let input = rows(&[("a", 1), ("b", 10), ("a", 3), ("b", 20), ("a", 5)]);
        let mut out = hash_agg(&mut ctx, input, &[0], &aggs());
        out.sort_by(|x, y| x.get(0).total_cmp(y.get(0)));
        assert_eq!(out.len(), 2);
        let a = &out[0];
        assert_eq!(a.get(0).as_str(), Some("a"));
        assert_eq!(a.get(1), &Datum::Int(3)); // count
        assert_eq!(a.get(2), &Datum::Int(9)); // sum
        assert_eq!(a.get(3), &Datum::Float(3.0)); // avg
        assert_eq!(a.get(4), &Datum::Int(1)); // min
        assert_eq!(a.get(5), &Datum::Int(5)); // max
    }

    #[test]
    fn sort_agg_matches_hash_agg_on_sorted_input() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let mut input = rows(&[("a", 1), ("b", 10), ("a", 3), ("c", 7), ("b", 20)]);
        input.sort_by(|x, y| x.get(0).total_cmp(y.get(0)));
        let via_sort = sort_agg(&mut ctx, input.clone(), &[0], &aggs());
        let mut via_hash = hash_agg(&mut ctx, input, &[0], &aggs());
        via_hash.sort_by(|x, y| x.get(0).total_cmp(y.get(0)));
        assert_eq!(via_sort, via_hash);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let out = hash_agg(&mut ctx, vec![], &[], &aggs());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), &Datum::Int(0)); // count(*) = 0
        assert_eq!(out[0].get(1), &Datum::Null); // sum of nothing
        assert_eq!(out[0].get(2), &Datum::Null); // avg of nothing
    }

    #[test]
    fn grouped_aggregate_on_empty_input_is_empty() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        assert!(hash_agg(&mut ctx, vec![], &[0], &aggs()).is_empty());
        assert!(sort_agg(&mut ctx, vec![], &[0], &aggs()).is_empty());
    }

    #[test]
    fn count_ignores_nulls_but_count_star_does_not() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let input = vec![
            Tuple::new(vec![Datum::str("a"), Datum::Int(1)]),
            Tuple::new(vec![Datum::str("a"), Datum::Null]),
        ];
        let aggs = vec![
            AggExpr::count_star("all"),
            AggExpr::new(AggFunc::Count, Expr::col(1), "nonnull"),
            AggExpr::new(AggFunc::Sum, Expr::col(1), "sum"),
        ];
        let out = hash_agg(&mut ctx, input, &[0], &aggs);
        assert_eq!(out[0].get(1), &Datum::Int(2));
        assert_eq!(out[0].get(2), &Datum::Int(1));
        assert_eq!(out[0].get(3), &Datum::Int(1), "sum skips NULLs");
    }

    #[test]
    fn sum_widens_to_float_on_mixed_input() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let input = vec![
            Tuple::new(vec![Datum::str("a"), Datum::Int(1)]),
            Tuple::new(vec![Datum::str("a"), Datum::Float(0.5)]),
        ];
        let aggs = vec![AggExpr::new(AggFunc::Sum, Expr::col(1), "s")];
        let out = hash_agg(&mut ctx, input, &[0], &aggs);
        assert_eq!(out[0].get(1), &Datum::Float(1.5));
    }

    #[test]
    fn agg_over_expression_argument() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let input = rows(&[("a", 2), ("a", 3)]);
        // sum(v * 10)
        let aggs = vec![AggExpr::new(
            AggFunc::Sum,
            Expr::mul(Expr::col(1), Expr::int(10)),
            "s",
        )];
        let out = hash_agg(&mut ctx, input, &[0], &aggs);
        assert_eq!(out[0].get(1), &Datum::Int(50));
    }
}
