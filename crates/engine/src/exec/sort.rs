//! Sort operator with `work_mem`-aware external-sort accounting.

use crate::runtime::ExecContext;
use crate::SortKey;
use dbvirt_storage::Tuple;

/// Sorts `rows` by `keys` (major key first). When the input exceeds the
/// context's `work_mem`, the spill of one external-merge pass is charged:
/// every page written once and read back once (PostgreSQL's `tapes` model
/// with a single merge pass, which holds for the workload sizes here).
pub fn sort(ctx: &mut ExecContext<'_>, mut rows: Vec<Tuple>, keys: &[SortKey]) -> Vec<Tuple> {
    let n = rows.len() as f64;
    if n > 1.0 {
        let comparisons = n * n.log2();
        ctx.charge_cpu(comparisons * ctx.costs.per_sort_cmp * keys.len().max(1) as f64);
    }

    let bytes: usize = rows.iter().map(Tuple::encoded_len).sum();
    if bytes > ctx.work_mem_bytes {
        let pages = bytes.div_ceil(dbvirt_storage::PAGE_SIZE) as u64;
        ctx.charge_io_writes(pages);
        ctx.charge_io_seq_reads(pages);
    }

    rows.sort_by(|a, b| {
        for key in keys {
            let ord = a.get(key.column).total_cmp(b.get(key.column));
            let ord = if key.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::tests_support::{context, small_db};
    use dbvirt_storage::Datum;

    fn rows(data: &[(i64, &str)]) -> Vec<Tuple> {
        data.iter()
            .map(|(a, b)| Tuple::new(vec![Datum::Int(*a), Datum::str(*b)]))
            .collect()
    }

    #[test]
    fn single_key_ascending_and_descending() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let input = rows(&[(3, "c"), (1, "a"), (2, "b")]);
        let asc = sort(&mut ctx, input.clone(), &[SortKey::asc(0)]);
        let got: Vec<i64> = asc.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3]);
        let desc = sort(&mut ctx, input, &[SortKey::desc(0)]);
        let got: Vec<i64> = desc.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        assert_eq!(got, vec![3, 2, 1]);
    }

    #[test]
    fn multi_key_sort() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let input = rows(&[(1, "b"), (2, "a"), (1, "a"), (2, "b")]);
        let out = sort(&mut ctx, input, &[SortKey::asc(0), SortKey::desc(1)]);
        let got: Vec<(i64, String)> = out
            .iter()
            .map(|t| {
                (
                    t.get(0).as_int().unwrap(),
                    t.get(1).as_str().unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                (1, "b".to_string()),
                (1, "a".to_string()),
                (2, "b".to_string()),
                (2, "a".to_string())
            ]
        );
    }

    #[test]
    fn nulls_sort_first() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let input = vec![
            Tuple::new(vec![Datum::Int(1)]),
            Tuple::new(vec![Datum::Null]),
        ];
        let out = sort(&mut ctx, input, &[SortKey::asc(0)]);
        assert!(out[0].get(0).is_null());
    }

    #[test]
    fn small_sort_stays_in_memory_large_sort_spills() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        ctx.work_mem_bytes = 1 << 20;
        let small = rows(&[(2, "b"), (1, "a")]);
        sort(&mut ctx, small, &[SortKey::asc(0)]);
        assert_eq!(ctx.demand.page_writes, 0);

        ctx.work_mem_bytes = 512;
        let big: Vec<Tuple> = (0..500)
            .map(|i| Tuple::new(vec![Datum::Int(500 - i), Datum::str("pad pad pad")]))
            .collect();
        let out = sort(&mut ctx, big, &[SortKey::asc(0)]);
        assert!(ctx.demand.page_writes > 0, "external sort must spill");
        assert_eq!(ctx.demand.page_writes, ctx.demand.seq_page_reads);
        assert!(out
            .windows(2)
            .all(|w| w[0].get(0).total_cmp(w[1].get(0)).is_le()));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::runtime::tests_support::{context, small_db};
    use dbvirt_storage::Datum;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sort output is a correctly-ordered permutation of its input.
        #[test]
        fn prop_sort_is_ordered_permutation(
            values in prop::collection::vec((-100i64..100, -100i64..100), 0..200),
            desc in prop::bool::ANY,
        ) {
            let (mut db, mut pool) = small_db(1);
            let mut ctx = context(&mut db, &mut pool);
            let input: Vec<Tuple> = values
                .iter()
                .map(|(a, b)| Tuple::new(vec![Datum::Int(*a), Datum::Int(*b)]))
                .collect();
            let key = SortKey { column: 0, descending: desc };
            let out = sort(&mut ctx, input.clone(), &[key, SortKey::asc(1)]);
            // Permutation: same multiset.
            let project = |ts: &[Tuple]| {
                let mut v: Vec<(i64, i64)> = ts
                    .iter()
                    .map(|t| (t.get(0).as_int().unwrap(), t.get(1).as_int().unwrap()))
                    .collect();
                v.sort_unstable();
                v
            };
            prop_assert_eq!(project(&input), project(&out));
            // Ordered by (key0 dir, key1 asc).
            for w in out.windows(2) {
                let a = (w[0].get(0).as_int().unwrap(), w[0].get(1).as_int().unwrap());
                let b = (w[1].get(0).as_int().unwrap(), w[1].get(1).as_int().unwrap());
                if desc {
                    prop_assert!(a.0 > b.0 || (a.0 == b.0 && a.1 <= b.1));
                } else {
                    prop_assert!(a.0 < b.0 || (a.0 == b.0 && a.1 <= b.1));
                }
            }
        }
    }
}
