//! The executor: materializing physical operators with demand metering.
//!
//! Operators execute bottom-up, each returning a fully materialized
//! `Vec<Tuple>`. All physical work is charged as it happens: CPU cycles via
//! [`crate::ExecContext::charge_cpu`] and page I/O via the buffer pool the
//! context carries. This is what makes an execution a *measurement*: the
//! accumulated [`dbvirt_vmm::ResourceDemand`] is converted to simulated
//! time by a [`dbvirt_vmm::VirtualMachine`] under some resource allocation.

mod agg;
mod join;
mod scan;
mod sort;

use crate::runtime::{EngineError, ExecContext};
use crate::{Expr, PhysicalPlan};
use dbvirt_storage::Tuple;
use dbvirt_telemetry as telemetry;

/// The telemetry span name for a plan node (the `exec.*` taxonomy).
fn op_name(plan: &PhysicalPlan) -> &'static str {
    match plan {
        PhysicalPlan::SeqScan { .. } => "exec.seq_scan",
        PhysicalPlan::IndexScan { .. } => "exec.index_scan",
        PhysicalPlan::IndexAnd { .. } => "exec.index_and",
        PhysicalPlan::IndexOr { .. } => "exec.index_or",
        PhysicalPlan::Filter { .. } => "exec.filter",
        PhysicalPlan::Project { .. } => "exec.project",
        PhysicalPlan::Sort { .. } => "exec.sort",
        PhysicalPlan::Limit { .. } => "exec.limit",
        PhysicalPlan::HashJoin { .. } => "exec.hash_join",
        PhysicalPlan::MergeJoin { .. } => "exec.merge_join",
        PhysicalPlan::NestedLoopJoin { .. } => "exec.nested_loop_join",
        PhysicalPlan::HashAgg { .. } => "exec.hash_agg",
        PhysicalPlan::SortAgg { .. } => "exec.sort_agg",
    }
}

/// Executes a plan, returning its materialized output rows.
pub fn execute(ctx: &mut ExecContext<'_>, plan: &PhysicalPlan) -> Result<Vec<Tuple>, EngineError> {
    // One span per operator; recursion nests child operators under their
    // parents automatically (no-op guard while telemetry is disabled).
    let mut op_span = telemetry::span(op_name(plan));
    let result = execute_inner(ctx, plan);
    if let Ok(rows) = &result {
        op_span.set_attr("rows_out", rows.len());
    }
    result
}

fn execute_inner(
    ctx: &mut ExecContext<'_>,
    plan: &PhysicalPlan,
) -> Result<Vec<Tuple>, EngineError> {
    match plan {
        PhysicalPlan::SeqScan { table, filter } => scan::seq_scan(ctx, *table, filter.as_ref()),
        PhysicalPlan::IndexScan {
            table,
            index,
            lo,
            hi,
            filter,
        } => scan::index_scan(ctx, *table, *index, lo, hi, filter.as_ref()),
        PhysicalPlan::IndexAnd {
            table,
            arms,
            filter,
        } => scan::index_and_scan(ctx, *table, arms, filter.as_ref()),
        PhysicalPlan::IndexOr {
            table,
            arms,
            filter,
        } => scan::index_or_scan(ctx, *table, arms, filter.as_ref()),
        PhysicalPlan::Filter { input, predicate } => {
            let rows = execute(ctx, input)?;
            Ok(apply_filter(ctx, rows, predicate))
        }
        PhysicalPlan::Project { input, exprs } => {
            let rows = execute(ctx, input)?;
            Ok(project(ctx, rows, exprs))
        }
        PhysicalPlan::Sort { input, keys } => {
            let rows = execute(ctx, input)?;
            Ok(sort::sort(ctx, rows, keys))
        }
        PhysicalPlan::Limit { input, limit } => {
            let mut rows = execute(ctx, input)?;
            rows.truncate(*limit);
            Ok(rows)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
        } => {
            let left_rows = execute(ctx, left)?;
            let right_rows = execute(ctx, right)?;
            let right_arity = right.output_schema(ctx.db).len();
            Ok(join::hash_join(
                ctx,
                left_rows,
                right_rows,
                left_keys,
                right_keys,
                *join_type,
                right_arity,
            ))
        }
        PhysicalPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let left_rows = execute(ctx, left)?;
            let right_rows = execute(ctx, right)?;
            Ok(join::merge_join(
                ctx, left_rows, right_rows, *left_key, *right_key,
            ))
        }
        PhysicalPlan::NestedLoopJoin {
            left,
            right,
            predicate,
            join_type,
        } => {
            let left_rows = execute(ctx, left)?;
            let right_rows = execute(ctx, right)?;
            let right_arity = right.output_schema(ctx.db).len();
            Ok(join::nested_loop_join(
                ctx,
                left_rows,
                right_rows,
                predicate.as_ref(),
                *join_type,
                right_arity,
            ))
        }
        PhysicalPlan::HashAgg {
            input,
            group_by,
            aggs,
        } => {
            let rows = execute(ctx, input)?;
            Ok(agg::hash_agg(ctx, rows, group_by, aggs))
        }
        PhysicalPlan::SortAgg {
            input,
            group_by,
            aggs,
        } => {
            let rows = execute(ctx, input)?;
            Ok(agg::sort_agg(ctx, rows, group_by, aggs))
        }
    }
}

/// Applies a predicate, charging its operator evaluations.
pub(crate) fn apply_filter(
    ctx: &mut ExecContext<'_>,
    rows: Vec<Tuple>,
    predicate: &Expr,
) -> Vec<Tuple> {
    let ops = predicate.num_operators() as f64;
    let per_row = ops * ctx.costs.per_operator + ctx.costs.per_tuple;
    ctx.charge_cpu(per_row * rows.len() as f64);
    rows.into_iter()
        .filter(|t| predicate.eval_bool(t) == Some(true))
        .collect()
}

/// Evaluates a projection list, charging its operator evaluations.
pub(crate) fn project(
    ctx: &mut ExecContext<'_>,
    rows: Vec<Tuple>,
    exprs: &[(Expr, String)],
) -> Vec<Tuple> {
    let ops: f64 = exprs.iter().map(|(e, _)| e.num_operators() as f64).sum();
    let per_row = ops * ctx.costs.per_operator + ctx.costs.per_tuple;
    ctx.charge_cpu(per_row * rows.len() as f64);
    rows.into_iter()
        .map(|t| Tuple::new(exprs.iter().map(|(e, _)| e.eval(&t)).collect()))
        .collect()
}
