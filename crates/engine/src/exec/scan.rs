//! Scan operators: sequential heap scans and B+tree index scans.

use crate::runtime::{EngineError, ExecContext};
use crate::{Expr, IndexId, TableId};
use dbvirt_storage::{AccessPattern, Datum, Tuple};
use std::ops::Bound;

/// Full heap scan with an optional pushed-down filter.
pub fn seq_scan(
    ctx: &mut ExecContext<'_>,
    table: TableId,
    filter: Option<&Expr>,
) -> Result<Vec<Tuple>, EngineError> {
    let costs = ctx.costs;
    let filter_ops = filter.map_or(0.0, |f| f.num_operators() as f64);
    let mut out = Vec::new();
    let mut cpu = 0.0;

    let heap = ctx.db.table(table).heap;
    let n_pages = {
        let (disk, _, _) = ctx.db.disk_and_catalog();
        heap.num_pages(disk)
    };
    for page_no in 0..n_pages {
        let tuples = {
            let (disk, _, _) = ctx.db.disk_and_catalog();
            heap.read_page_tuples(disk, ctx.pool, page_no, AccessPattern::Sequential)?
        };
        cpu += costs.per_page;
        for tuple in tuples {
            cpu += costs.per_tuple + filter_ops * costs.per_operator;
            let keep = filter.is_none_or(|f| f.eval_bool(&tuple) == Some(true));
            if keep {
                out.push(tuple);
            }
        }
    }
    ctx.charge_cpu(cpu);
    Ok(out)
}

/// Index range scan: B+tree traversal, then heap fetches in index order,
/// then the residual filter.
pub fn index_scan(
    ctx: &mut ExecContext<'_>,
    table: TableId,
    index: IndexId,
    lo: &Bound<Datum>,
    hi: &Bound<Datum>,
    filter: Option<&Expr>,
) -> Result<Vec<Tuple>, EngineError> {
    let costs = ctx.costs;
    let filter_ops = filter.map_or(0.0, |f| f.num_operators() as f64);
    let heap = ctx.db.table(table).heap;

    let entries = {
        let (disk, _, trees) = ctx.db.disk_and_catalog();
        trees[index.0].range_metered(disk, ctx.pool, lo.as_ref(), hi.as_ref())?
    };
    let mut cpu = entries.len() as f64 * costs.per_index_tuple;
    let mut out = Vec::with_capacity(entries.len());
    for (_key, tid) in entries {
        let tuple = {
            let (disk, _, _) = ctx.db.disk_and_catalog();
            heap.fetch(disk, ctx.pool, tid)?
        };
        cpu += costs.per_tuple + filter_ops * costs.per_operator;
        let keep = filter.is_none_or(|f| f.eval_bool(&tuple) == Some(true));
        if keep {
            out.push(tuple);
        }
    }
    ctx.charge_cpu(cpu);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::tests_support::{context, small_db};

    #[test]
    fn seq_scan_reads_every_row_and_charges_io() {
        let (mut db, mut pool) = small_db(1000);
        let mut ctx = context(&mut db, &mut pool);
        let rows = seq_scan(&mut ctx, TableId(0), None).unwrap();
        assert_eq!(rows.len(), 1000);
        let io = ctx.pool.demand();
        assert!(io.seq_page_reads > 0, "cold scan must read pages");
        assert_eq!(io.random_page_reads, 0);
        assert!(ctx.demand.cpu_cycles > 0.0);
    }

    #[test]
    fn seq_scan_filter_reduces_output_but_not_io() {
        let (mut db, mut pool) = small_db(1000);
        let filter = Expr::lt(Expr::col(0), Expr::int(100));
        let io_all;
        {
            let mut ctx = context(&mut db, &mut pool);
            let rows = seq_scan(&mut ctx, TableId(0), Some(&filter)).unwrap();
            assert_eq!(rows.len(), 100);
            io_all = ctx.pool.demand().seq_page_reads;
        }
        // Fresh pool: same physical reads regardless of selectivity.
        let mut pool2 = dbvirt_storage::BufferPool::new(pool.capacity());
        let mut ctx = context(&mut db, &mut pool2);
        let rows = seq_scan(&mut ctx, TableId(0), None).unwrap();
        assert_eq!(rows.len(), 1000);
        assert_eq!(ctx.pool.demand().seq_page_reads, io_all);
    }

    #[test]
    fn index_scan_matches_filtered_seq_scan() {
        let (mut db, mut pool) = small_db(2000);
        let idx = db.create_index("t_a", TableId(0), 0).unwrap();
        let lo = Bound::Included(Datum::Int(500));
        let hi = Bound::Excluded(Datum::Int(600));
        let mut ctx = context(&mut db, &mut pool);
        let mut via_index = index_scan(&mut ctx, TableId(0), idx, &lo, &hi, None).unwrap();
        let filter = Expr::and(
            Expr::ge(Expr::col(0), Expr::int(500)),
            Expr::lt(Expr::col(0), Expr::int(600)),
        );
        let mut via_scan = seq_scan(&mut ctx, TableId(0), Some(&filter)).unwrap();
        let key = |t: &Tuple| t.get(0).as_int().unwrap();
        via_index.sort_by_key(key);
        via_scan.sort_by_key(key);
        assert_eq!(via_index, via_scan);
        assert_eq!(via_index.len(), 100);
        assert!(
            ctx.pool.demand().random_page_reads > 0,
            "index path is random I/O"
        );
    }

    #[test]
    fn index_scan_with_residual_filter() {
        let (mut db, mut pool) = small_db(500);
        let idx = db.create_index("t_a", TableId(0), 0).unwrap();
        let mut ctx = context(&mut db, &mut pool);
        // Ids ending in 0, within [100, 200): 100, 110, ..., 190.
        let residual = Expr::like(Expr::col(1), "%0");
        let rows = index_scan(
            &mut ctx,
            TableId(0),
            idx,
            &Bound::Included(Datum::Int(100)),
            &Bound::Excluded(Datum::Int(200)),
            Some(&residual),
        )
        .unwrap();
        assert_eq!(rows.len(), 10);
    }
}
