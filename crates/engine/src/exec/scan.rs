//! Scan operators: sequential heap scans, B+tree index scans, and
//! multi-index intersection/union scans.

use crate::runtime::{EngineError, ExecContext};
use crate::IndexArm;
use crate::{Expr, IndexId, TableId};
use dbvirt_storage::{AccessPattern, Datum, Tuple, TupleId};
use std::ops::Bound;

/// Full heap scan with an optional pushed-down filter.
pub fn seq_scan(
    ctx: &mut ExecContext<'_>,
    table: TableId,
    filter: Option<&Expr>,
) -> Result<Vec<Tuple>, EngineError> {
    let costs = ctx.costs;
    let filter_ops = filter.map_or(0.0, |f| f.num_operators() as f64);
    let mut out = Vec::new();
    let mut cpu = 0.0;

    let heap = ctx.db.table(table).heap;
    let n_pages = {
        let (disk, _, _) = ctx.db.disk_and_catalog();
        heap.num_pages(disk)
    };
    for page_no in 0..n_pages {
        let tuples = {
            let (disk, _, _) = ctx.db.disk_and_catalog();
            heap.read_page_tuples(disk, ctx.pool, page_no, AccessPattern::Sequential)?
        };
        cpu += costs.per_page;
        for tuple in tuples {
            cpu += costs.per_tuple + filter_ops * costs.per_operator;
            let keep = filter.is_none_or(|f| f.eval_bool(&tuple) == Some(true));
            if keep {
                out.push(tuple);
            }
        }
    }
    ctx.charge_cpu(cpu);
    Ok(out)
}

/// Index range scan: B+tree traversal, then heap fetches in **tuple-id
/// order** (so the output ordering — and therefore every downstream
/// float accumulation — is bit-identical to a filtered sequential scan),
/// then the residual filter.
pub fn index_scan(
    ctx: &mut ExecContext<'_>,
    table: TableId,
    index: IndexId,
    lo: &Bound<Datum>,
    hi: &Bound<Datum>,
    filter: Option<&Expr>,
) -> Result<Vec<Tuple>, EngineError> {
    let costs = ctx.costs;
    let filter_ops = filter.map_or(0.0, |f| f.num_operators() as f64);
    let heap = ctx.db.table(table).heap;

    let entries = {
        let (disk, _, trees) = ctx.db.disk_and_catalog();
        trees[index.0].range_metered(disk, ctx.pool, lo.as_ref(), hi.as_ref())?
    };
    let mut tids: Vec<TupleId> = entries.iter().map(|(_, tid)| *tid).collect();
    tids.sort_unstable();
    let mut cpu = entries.len() as f64 * costs.per_index_tuple;
    let mut out = Vec::with_capacity(tids.len());
    for tid in tids {
        let tuple = {
            let (disk, _, _) = ctx.db.disk_and_catalog();
            heap.fetch(disk, ctx.pool, tid)?
        };
        cpu += costs.per_tuple + filter_ops * costs.per_operator;
        let keep = filter.is_none_or(|f| f.eval_bool(&tuple) == Some(true));
        if keep {
            out.push(tuple);
        }
    }
    ctx.charge_cpu(cpu);
    Ok(out)
}

/// Index intersection scan: probe every arm's key range, intersect the
/// resulting TID sets, fetch each surviving heap tuple once (in TID
/// order), apply the residual filter.
pub fn index_and_scan(
    ctx: &mut ExecContext<'_>,
    table: TableId,
    arms: &[IndexArm],
    filter: Option<&Expr>,
) -> Result<Vec<Tuple>, EngineError> {
    multi_index_scan(ctx, table, arms, filter, true)
}

/// Index union scan: probe every arm's key range, union (dedup) the TID
/// sets, fetch each surviving heap tuple once (in TID order), apply the
/// residual filter.
pub fn index_or_scan(
    ctx: &mut ExecContext<'_>,
    table: TableId,
    arms: &[IndexArm],
    filter: Option<&Expr>,
) -> Result<Vec<Tuple>, EngineError> {
    multi_index_scan(ctx, table, arms, filter, false)
}

fn merge_tids(acc: Vec<TupleId>, arm: Vec<TupleId>, intersect: bool) -> Vec<TupleId> {
    // Both inputs sorted and deduped; linear merge keeps it that way.
    let mut out = Vec::with_capacity(if intersect {
        acc.len().min(arm.len())
    } else {
        acc.len() + arm.len()
    });
    let (mut i, mut j) = (0, 0);
    while i < acc.len() && j < arm.len() {
        match acc[i].cmp(&arm[j]) {
            std::cmp::Ordering::Less => {
                if !intersect {
                    out.push(acc[i]);
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if !intersect {
                    out.push(arm[j]);
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(acc[i]);
                i += 1;
                j += 1;
            }
        }
    }
    if !intersect {
        out.extend_from_slice(&acc[i..]);
        out.extend_from_slice(&arm[j..]);
    }
    out
}

fn multi_index_scan(
    ctx: &mut ExecContext<'_>,
    table: TableId,
    arms: &[IndexArm],
    filter: Option<&Expr>,
    intersect: bool,
) -> Result<Vec<Tuple>, EngineError> {
    let costs = ctx.costs;
    let filter_ops = filter.map_or(0.0, |f| f.num_operators() as f64);
    let heap = ctx.db.table(table).heap;

    let mut tids: Option<Vec<TupleId>> = None;
    let mut cpu = 0.0;
    for arm in arms {
        let entries = {
            let (disk, _, trees) = ctx.db.disk_and_catalog();
            trees[arm.index.0].range_metered(disk, ctx.pool, arm.lo.as_ref(), arm.hi.as_ref())?
        };
        cpu += entries.len() as f64 * costs.per_index_tuple;
        let mut arm_tids: Vec<TupleId> = entries.into_iter().map(|(_key, tid)| tid).collect();
        arm_tids.sort_unstable();
        arm_tids.dedup();
        // One comparison per merged entry for the TID-set combine.
        cpu += arm_tids.len() as f64 * costs.per_operator;
        tids = Some(match tids {
            None => arm_tids,
            Some(acc) => merge_tids(acc, arm_tids, intersect),
        });
    }

    let tids = tids.unwrap_or_default();
    let mut out = Vec::with_capacity(tids.len());
    for tid in tids {
        let tuple = {
            let (disk, _, _) = ctx.db.disk_and_catalog();
            heap.fetch(disk, ctx.pool, tid)?
        };
        cpu += costs.per_tuple + filter_ops * costs.per_operator;
        let keep = filter.is_none_or(|f| f.eval_bool(&tuple) == Some(true));
        if keep {
            out.push(tuple);
        }
    }
    ctx.charge_cpu(cpu);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::tests_support::{context, small_db};

    #[test]
    fn seq_scan_reads_every_row_and_charges_io() {
        let (mut db, mut pool) = small_db(1000);
        let mut ctx = context(&mut db, &mut pool);
        let rows = seq_scan(&mut ctx, TableId(0), None).unwrap();
        assert_eq!(rows.len(), 1000);
        let io = ctx.pool.demand();
        assert!(io.seq_page_reads > 0, "cold scan must read pages");
        assert_eq!(io.random_page_reads, 0);
        assert!(ctx.demand.cpu_cycles > 0.0);
    }

    #[test]
    fn seq_scan_filter_reduces_output_but_not_io() {
        let (mut db, mut pool) = small_db(1000);
        let filter = Expr::lt(Expr::col(0), Expr::int(100));
        let io_all;
        {
            let mut ctx = context(&mut db, &mut pool);
            let rows = seq_scan(&mut ctx, TableId(0), Some(&filter)).unwrap();
            assert_eq!(rows.len(), 100);
            io_all = ctx.pool.demand().seq_page_reads;
        }
        // Fresh pool: same physical reads regardless of selectivity.
        let mut pool2 = dbvirt_storage::BufferPool::new(pool.capacity());
        let mut ctx = context(&mut db, &mut pool2);
        let rows = seq_scan(&mut ctx, TableId(0), None).unwrap();
        assert_eq!(rows.len(), 1000);
        assert_eq!(ctx.pool.demand().seq_page_reads, io_all);
    }

    #[test]
    fn index_scan_matches_filtered_seq_scan() {
        let (mut db, mut pool) = small_db(2000);
        let idx = db.create_index("t_a", TableId(0), 0).unwrap();
        let lo = Bound::Included(Datum::Int(500));
        let hi = Bound::Excluded(Datum::Int(600));
        let mut ctx = context(&mut db, &mut pool);
        let mut via_index = index_scan(&mut ctx, TableId(0), idx, &lo, &hi, None).unwrap();
        let filter = Expr::and(
            Expr::ge(Expr::col(0), Expr::int(500)),
            Expr::lt(Expr::col(0), Expr::int(600)),
        );
        let mut via_scan = seq_scan(&mut ctx, TableId(0), Some(&filter)).unwrap();
        let key = |t: &Tuple| t.get(0).as_int().unwrap();
        via_index.sort_by_key(key);
        via_scan.sort_by_key(key);
        assert_eq!(via_index, via_scan);
        assert_eq!(via_index.len(), 100);
        assert!(
            ctx.pool.demand().random_page_reads > 0,
            "index path is random I/O"
        );
    }

    #[test]
    fn index_and_or_match_filtered_seq_scan() {
        let (mut db, mut pool) = small_db(1000);
        let ia = db.create_index("t_a", TableId(0), 0).unwrap();
        let ib = db.create_index("t_b", TableId(0), 1).unwrap();
        let arm_a = IndexArm {
            index: ia,
            lo: Bound::Included(Datum::Int(100)),
            hi: Bound::Excluded(Datum::Int(300)),
        };
        let arm_b = IndexArm {
            index: ib,
            lo: Bound::Included(Datum::str("row-1")),
            hi: Bound::Excluded(Datum::str("row-2")),
        };
        let pred_a = Expr::and(
            Expr::ge(Expr::col(0), Expr::int(100)),
            Expr::lt(Expr::col(0), Expr::int(300)),
        );
        let pred_b = Expr::and(
            Expr::ge(Expr::col(1), Expr::str("row-1")),
            Expr::lt(Expr::col(1), Expr::str("row-2")),
        );
        let mut ctx = context(&mut db, &mut pool);

        let arms = vec![arm_a.clone(), arm_b.clone()];
        let both = Expr::and(pred_a.clone(), pred_b.clone());
        let mut anded = index_and_scan(&mut ctx, TableId(0), &arms, Some(&both)).unwrap();
        let mut expect = seq_scan(&mut ctx, TableId(0), Some(&both)).unwrap();
        let key = |t: &Tuple| t.get(0).as_int().unwrap();
        anded.sort_by_key(key);
        expect.sort_by_key(key);
        assert_eq!(anded, expect);
        assert_eq!(anded.len(), 100, "a in 100..199 also has b prefix row-1");

        let either = Expr::or(pred_a, pred_b);
        let mut ored = index_or_scan(&mut ctx, TableId(0), &arms, Some(&either)).unwrap();
        let mut expect = seq_scan(&mut ctx, TableId(0), Some(&either)).unwrap();
        ored.sort_by_key(key);
        expect.sort_by_key(key);
        assert_eq!(ored, expect);
        assert_eq!(ored.len(), 211, "200 + 111 - 100 overlapping");
    }

    #[test]
    fn index_scan_with_residual_filter() {
        let (mut db, mut pool) = small_db(500);
        let idx = db.create_index("t_a", TableId(0), 0).unwrap();
        let mut ctx = context(&mut db, &mut pool);
        // Ids ending in 0, within [100, 200): 100, 110, ..., 190.
        let residual = Expr::like(Expr::col(1), "%0");
        let rows = index_scan(
            &mut ctx,
            TableId(0),
            idx,
            &Bound::Included(Datum::Int(100)),
            &Bound::Excluded(Datum::Int(200)),
            Some(&residual),
        )
        .unwrap();
        assert_eq!(rows.len(), 10);
    }
}
