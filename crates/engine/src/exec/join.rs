//! Join operators: hash, merge, and nested-loop.

use crate::runtime::ExecContext;
use crate::{Expr, JoinType};
use dbvirt_storage::{Datum, Tuple};
use std::collections::HashMap;

/// Hash key for a set of join columns; `None` when any key column is NULL
/// (NULL never matches in an equi-join).
fn join_key(tuple: &Tuple, keys: &[usize]) -> Option<bytes::Bytes> {
    if keys.iter().any(|&k| tuple.get(k).is_null()) {
        return None;
    }
    Some(tuple.project(keys).encode())
}

/// Charges the grace-hash spill I/O when the build side exceeds `work_mem`:
/// with `b > 1` batches, both inputs are written once and re-read once for
/// all but the in-memory batch (PostgreSQL's multi-batch hash join).
fn charge_hash_spill(ctx: &mut ExecContext<'_>, build_bytes: usize, probe_bytes: usize) {
    if build_bytes <= ctx.work_mem_bytes {
        return;
    }
    let batches = build_bytes.div_ceil(ctx.work_mem_bytes).max(2);
    let spilled_frac = (batches - 1) as f64 / batches as f64;
    let pages = |bytes: usize| {
        ((bytes as f64 * spilled_frac) / dbvirt_storage::PAGE_SIZE as f64).ceil() as u64
    };
    let spill_pages = pages(build_bytes) + pages(probe_bytes);
    ctx.charge_io_writes(spill_pages);
    ctx.charge_io_seq_reads(spill_pages);
}

/// Hash join: build on the right input, probe with the left.
pub fn hash_join(
    ctx: &mut ExecContext<'_>,
    left: Vec<Tuple>,
    right: Vec<Tuple>,
    left_keys: &[usize],
    right_keys: &[usize],
    join_type: JoinType,
    right_arity: usize,
) -> Vec<Tuple> {
    assert_eq!(
        left_keys.len(),
        right_keys.len(),
        "mismatched join key arity"
    );
    let costs = ctx.costs;

    let build_bytes: usize = right.iter().map(Tuple::encoded_len).sum();
    let probe_bytes: usize = left.iter().map(Tuple::encoded_len).sum();
    charge_hash_spill(ctx, build_bytes, probe_bytes);

    // Build.
    let mut table: HashMap<bytes::Bytes, Vec<&Tuple>> = HashMap::new();
    for t in &right {
        if let Some(k) = join_key(t, right_keys) {
            table.entry(k).or_default().push(t);
        }
    }
    ctx.charge_cpu(costs.per_hash * (right.len() + left.len()) as f64);

    // Probe.
    let null_pad = Tuple::new(vec![Datum::Null; right_arity]);
    let mut out = Vec::new();
    for l in &left {
        let matches = join_key(l, left_keys).and_then(|k| table.get(&k));
        match join_type {
            JoinType::Inner => {
                if let Some(ms) = matches {
                    for m in ms {
                        out.push(l.concat(m));
                    }
                }
            }
            JoinType::Left => match matches {
                Some(ms) => {
                    for m in ms {
                        out.push(l.concat(m));
                    }
                }
                None => out.push(l.concat(&null_pad)),
            },
            JoinType::Semi => {
                if matches.is_some() {
                    out.push(l.clone());
                }
            }
            JoinType::Anti => {
                if matches.is_none() {
                    out.push(l.clone());
                }
            }
        }
    }
    ctx.charge_cpu(costs.per_tuple * out.len() as f64);
    out
}

/// Merge join of inputs sorted on their join keys (inner join only).
/// Duplicate key groups produce the full cross product, as required.
pub fn merge_join(
    ctx: &mut ExecContext<'_>,
    left: Vec<Tuple>,
    right: Vec<Tuple>,
    left_key: usize,
    right_key: usize,
) -> Vec<Tuple> {
    let costs = ctx.costs;
    ctx.charge_cpu(costs.per_tuple * (left.len() + right.len()) as f64);

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let lk = left[i].get(left_key);
        let rk = right[j].get(right_key);
        match lk.sql_cmp(rk) {
            None => {
                // Incomparable keys never match. This covers NULL on either
                // side *and* NaN floats (`sql_cmp` is a partial order); the
                // incomparable side must be the one skipped, otherwise a
                // NaN/NULL left key would wrongly advance the right cursor
                // past rows that later left keys still match.
                let l_bad = lk.is_null() || lk.as_float().is_some_and(f64::is_nan);
                if l_bad {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            Some(std::cmp::Ordering::Less) => i += 1,
            Some(std::cmp::Ordering::Greater) => j += 1,
            Some(std::cmp::Ordering::Equal) => {
                // Find both duplicate groups. The scans start one past the
                // current row (`Equal` already proved row i / row j belong
                // to the group), so no `.last().unwrap()` on a
                // maybe-empty iterator is needed.
                let mut i_end = i + 1;
                while i_end < left.len()
                    && left[i_end].get(left_key).sql_cmp(lk) == Some(std::cmp::Ordering::Equal)
                {
                    i_end += 1;
                }
                let mut j_end = j + 1;
                while j_end < right.len()
                    && right[j_end].get(right_key).sql_cmp(rk) == Some(std::cmp::Ordering::Equal)
                {
                    j_end += 1;
                }
                for l in &left[i..i_end] {
                    for r in &right[j..j_end] {
                        out.push(l.concat(r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    ctx.charge_cpu(costs.per_tuple * out.len() as f64);
    out
}

/// Nested-loop join with an arbitrary predicate over the concatenated row.
pub fn nested_loop_join(
    ctx: &mut ExecContext<'_>,
    left: Vec<Tuple>,
    right: Vec<Tuple>,
    predicate: Option<&Expr>,
    join_type: JoinType,
    right_arity: usize,
) -> Vec<Tuple> {
    let costs = ctx.costs;
    let ops = predicate.map_or(0.0, |p| p.num_operators() as f64);
    let pairs = left.len() as f64 * right.len() as f64;
    ctx.charge_cpu(pairs * (costs.per_tuple + ops * costs.per_operator));

    let null_pad = Tuple::new(vec![Datum::Null; right_arity]);
    let mut out = Vec::new();
    for l in &left {
        let mut matched = false;
        for r in &right {
            let joined = l.concat(r);
            let pass = predicate.is_none_or(|p| p.eval_bool(&joined) == Some(true));
            if !pass {
                continue;
            }
            matched = true;
            match join_type {
                JoinType::Inner | JoinType::Left => out.push(joined),
                JoinType::Semi => {
                    out.push(l.clone());
                    break;
                }
                JoinType::Anti => break,
            }
        }
        if !matched {
            match join_type {
                JoinType::Left => out.push(l.concat(&null_pad)),
                JoinType::Anti => out.push(l.clone()),
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::tests_support::{context, small_db};

    fn rows(pairs: &[(i64, &str)]) -> Vec<Tuple> {
        pairs
            .iter()
            .map(|(k, v)| Tuple::new(vec![Datum::Int(*k), Datum::str(*v)]))
            .collect()
    }

    fn ints(t: &Tuple, idx: usize) -> i64 {
        t.get(idx).as_int().unwrap()
    }

    #[test]
    fn inner_hash_join_produces_matches() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let left = rows(&[(1, "a"), (2, "b"), (3, "c")]);
        let right = rows(&[(2, "x"), (3, "y"), (3, "z"), (4, "w")]);
        let mut out = hash_join(&mut ctx, left, right, &[0], &[0], JoinType::Inner, 2);
        out.sort_by_key(|t| (ints(t, 0), t.get(3).as_str().unwrap().to_string()));
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get(1).as_str(), Some("b"));
        assert_eq!(out[0].get(3).as_str(), Some("x"));
        assert_eq!(out[2].get(3).as_str(), Some("z"));
    }

    #[test]
    fn left_join_pads_nulls() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let left = rows(&[(1, "a"), (2, "b")]);
        let right = rows(&[(2, "x")]);
        let mut out = hash_join(&mut ctx, left, right, &[0], &[0], JoinType::Left, 2);
        out.sort_by_key(|t| ints(t, 0));
        assert_eq!(out.len(), 2);
        assert!(out[0].get(2).is_null() && out[0].get(3).is_null());
        assert_eq!(out[1].get(3).as_str(), Some("x"));
    }

    #[test]
    fn semi_and_anti_joins() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let left = rows(&[(1, "a"), (2, "b"), (3, "c")]);
        let right = rows(&[(2, "x"), (2, "y")]);
        let semi = hash_join(
            &mut ctx,
            left.clone(),
            right.clone(),
            &[0],
            &[0],
            JoinType::Semi,
            2,
        );
        assert_eq!(semi.len(), 1, "semi join emits each matching left row once");
        assert_eq!(ints(&semi[0], 0), 2);
        let anti = hash_join(&mut ctx, left, right, &[0], &[0], JoinType::Anti, 2);
        let keys: Vec<i64> = anti.iter().map(|t| ints(t, 0)).collect();
        assert_eq!(keys, vec![1, 3]);
    }

    #[test]
    fn null_keys_never_match() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let left = vec![Tuple::new(vec![Datum::Null, Datum::str("l")])];
        let right = vec![Tuple::new(vec![Datum::Null, Datum::str("r")])];
        let inner = hash_join(
            &mut ctx,
            left.clone(),
            right.clone(),
            &[0],
            &[0],
            JoinType::Inner,
            2,
        );
        assert!(inner.is_empty());
        let anti = hash_join(&mut ctx, left, right, &[0], &[0], JoinType::Anti, 2);
        assert_eq!(anti.len(), 1, "NULL key has no match, so anti emits it");
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let mut left = rows(&[(1, "a"), (2, "b"), (2, "c"), (5, "d")]);
        let mut right = rows(&[(2, "x"), (2, "y"), (5, "z"), (6, "w")]);
        left.sort_by_key(|t| ints(t, 0));
        right.sort_by_key(|t| ints(t, 0));
        let mut merged = merge_join(&mut ctx, left.clone(), right.clone(), 0, 0);
        let mut hashed = hash_join(&mut ctx, left, right, &[0], &[0], JoinType::Inner, 2);
        let key = |t: &Tuple| {
            (
                ints(t, 0),
                t.get(1).as_str().unwrap().to_string(),
                t.get(3).as_str().unwrap().to_string(),
            )
        };
        merged.sort_by_key(key);
        hashed.sort_by_key(key);
        assert_eq!(merged, hashed);
        assert_eq!(merged.len(), 5); // 2x2 cross for key 2 + one for key 5.
    }

    #[test]
    fn merge_join_nan_keys_never_match_and_never_skip_real_matches() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        // Regression: `sql_cmp` is a partial order, so a NaN float key
        // compares as `None` against everything. The old skip logic only
        // recognized NULL on the left and advanced the *right* cursor for
        // any other incomparable pair — a leading NaN left key would
        // consume right-side rows that later left keys still match,
        // silently dropping the (2.0, 2.0) pair below.
        let left = vec![
            Tuple::new(vec![Datum::Float(f64::NAN), Datum::str("bad")]),
            Tuple::new(vec![Datum::Float(2.0), Datum::str("good")]),
        ];
        let right = vec![Tuple::new(vec![Datum::Float(2.0), Datum::str("r")])];
        let out = merge_join(&mut ctx, left.clone(), right.clone(), 0, 0);
        assert_eq!(out.len(), 1, "the real 2.0 = 2.0 match must survive");
        assert_eq!(out[0].get(1).as_str(), Some("good"));
        // NaN on the right is skipped the same way (mirror case).
        let out = merge_join(&mut ctx, right, left, 0, 0);
        assert_eq!(out.len(), 1);
        // NaN never joins with NaN.
        let nan_row = vec![Tuple::new(vec![Datum::Float(f64::NAN), Datum::str("x")])];
        let out = merge_join(&mut ctx, nan_row.clone(), nan_row, 0, 0);
        assert!(out.is_empty(), "NaN keys must never match each other");
    }

    #[test]
    fn nested_loop_supports_inequality() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        let left = rows(&[(1, "a"), (5, "b")]);
        let right = rows(&[(3, "x"), (7, "y")]);
        // left.key < right.key (columns 0 and 2 of the concatenated row).
        let pred = Expr::lt(Expr::col(0), Expr::col(2));
        let out = nested_loop_join(&mut ctx, left, right, Some(&pred), JoinType::Inner, 2);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn spill_charged_when_build_exceeds_work_mem() {
        let (mut db, mut pool) = small_db(1);
        let mut ctx = context(&mut db, &mut pool);
        ctx.work_mem_bytes = 256; // force spilling
        let big: Vec<Tuple> = (0..200)
            .map(|i| Tuple::new(vec![Datum::Int(i), Datum::str("payload payload")]))
            .collect();
        let before = ctx.io_demand().page_writes;
        let out = hash_join(&mut ctx, big.clone(), big, &[0], &[0], JoinType::Inner, 2);
        assert_eq!(out.len(), 200);
        assert!(ctx.io_demand().page_writes > before, "spill writes charged");
    }
}
