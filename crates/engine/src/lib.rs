//! # dbvirt-engine — the relational engine substrate
//!
//! A small but real SQL-style execution engine in the PostgreSQL mold,
//! standing in for the PostgreSQL 8.1 instance the paper runs inside each
//! virtual machine. It executes physical plans over data stored in
//! `dbvirt-storage`, charging every unit of physical work (CPU cycles and
//! buffer-pool I/O) to a [`dbvirt_vmm::ResourceDemand`], which the VMM
//! simulator converts into "actual" execution time under a given resource
//! allocation.
//!
//! Components:
//!
//! * [`Database`] / [`catalog`] — tables, B+tree indexes, statistics;
//! * [`Expr`] — scalar expressions (comparisons, boolean logic, arithmetic,
//!   `LIKE`, `IN`, `CASE`) with three-valued SQL semantics;
//! * [`PhysicalPlan`] — the physical algebra (sequential and index scans,
//!   filter, project, sort, limit, hash/merge/nested-loop joins with
//!   inner/left/semi/anti variants, hash and sorted aggregation);
//! * [`exec`] — the executor: materializing operators that do the physical
//!   work and meter it;
//! * [`ExecContext`] / [`run_plan`] — the runtime tying a database, a
//!   buffer pool (sized from the VM's memory share), a `work_mem` budget,
//!   and the CPU cost constants together.
//!
//! The CPU constants in [`CpuCosts`] are the engine's ground truth; the
//! paper's calibration process exists precisely to recover their effect on
//! runtime (scaled by the VM's CPU share) without being told them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod cpu;
pub mod exec;
mod expr;
mod plan;
mod runtime;

pub use catalog::{Database, IndexId, IndexMeta, TableId, TableMeta};
pub use cpu::CpuCosts;
pub use expr::{AggExpr, AggFunc, BinOp, CmpOp, Expr};
pub use plan::{IndexArm, JoinType, PhysicalPlan, SortKey};
pub use runtime::{run_plan, EngineError, ExecContext, QueryOutput};
