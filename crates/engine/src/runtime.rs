//! The execution runtime: context, errors, and the `run_plan` entry point.

use crate::{exec, CpuCosts, Database, PhysicalPlan};
use dbvirt_storage::{BufferPool, Schema, StorageError, Tuple};
use dbvirt_vmm::ResourceDemand;
use std::error::Error;
use std::fmt;

/// Errors surfaced by plan execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A storage operation failed.
    Storage(StorageError),
    /// The plan was malformed (e.g. referenced a missing index).
    Plan(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Plan(msg) => write!(f, "bad plan: {msg}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Plan(_) => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> EngineError {
        EngineError::Storage(e)
    }
}

/// Everything an operator needs while executing: the database, the buffer
/// pool (sized from the VM's memory share), the `work_mem` budget, the CPU
/// cost constants, and the demand accumulated so far.
pub struct ExecContext<'a> {
    /// The database being queried.
    pub db: &'a mut Database,
    /// Page cache; all heap/index I/O is charged through it.
    pub pool: &'a mut BufferPool,
    /// Memory budget for sorts and hash tables, in bytes.
    pub work_mem_bytes: usize,
    /// CPU cost constants (the engine's ground truth).
    pub costs: CpuCosts,
    /// CPU cycles and spill I/O charged directly by operators (buffer-pool
    /// I/O accumulates separately inside `pool`).
    pub demand: ResourceDemand,
}

impl<'a> ExecContext<'a> {
    /// Creates a context with default CPU costs.
    pub fn new(
        db: &'a mut Database,
        pool: &'a mut BufferPool,
        work_mem_bytes: usize,
    ) -> ExecContext<'a> {
        ExecContext {
            db,
            pool,
            work_mem_bytes,
            costs: CpuCosts::default(),
            demand: ResourceDemand::ZERO,
        }
    }

    /// Charges CPU cycles.
    pub fn charge_cpu(&mut self, cycles: f64) {
        self.demand.add_cpu(cycles);
    }

    /// Charges spill page writes (sorts, multi-batch hash joins).
    pub fn charge_io_writes(&mut self, pages: u64) {
        self.demand.add_writes(pages);
    }

    /// Charges spill sequential page reads.
    pub fn charge_io_seq_reads(&mut self, pages: u64) {
        self.demand.add_seq_reads(pages);
    }

    /// The demand charged directly by operators so far (spills + CPU).
    pub fn io_demand(&self) -> &ResourceDemand {
        &self.demand
    }
}

/// Result of running one plan.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Output column layout.
    pub schema: Schema,
    /// Materialized result rows.
    pub rows: Vec<Tuple>,
    /// Total physical work: executor CPU + spill I/O + buffer-pool I/O.
    pub demand: ResourceDemand,
}

/// Executes `plan` against `db` using `pool`, returning rows plus the total
/// [`ResourceDemand`] the execution generated. The pool's pre-existing
/// demand is preserved (only the delta is attributed to this query), so a
/// long-lived pool can serve many queries while each gets its own bill.
pub fn run_plan(
    db: &mut Database,
    pool: &mut BufferPool,
    plan: &PhysicalPlan,
    work_mem_bytes: usize,
    costs: CpuCosts,
) -> Result<QueryOutput, EngineError> {
    let mut plan_span = dbvirt_telemetry::span("engine.run_plan");
    let metrics_before = pool.metrics();
    let io_before = *pool.demand();
    let schema = plan.output_schema(db);
    let mut ctx = ExecContext {
        db,
        pool,
        work_mem_bytes,
        costs,
        demand: ResourceDemand::ZERO,
    };
    let rows = exec::execute(&mut ctx, plan)?;
    let direct = ctx.demand;
    let io_delta = pool.demand().delta_since(&io_before);
    if dbvirt_telemetry::is_enabled() {
        let m = pool.metrics();
        let (hits, misses) = (m.hits - metrics_before.hits, m.misses - metrics_before.misses);
        plan_span.set_attr("rows", rows.len());
        plan_span.set_attr("pool_hits", hits);
        plan_span.set_attr("pool_misses", misses);
        if hits + misses > 0 {
            BUFPOOL_HIT_RATIO.set(hits as f64 / (hits + misses) as f64);
        }
    }
    Ok(QueryOutput {
        schema,
        rows,
        demand: direct + io_delta,
    })
}

/// Buffer-pool hit ratio of the most recent telemetry-enabled `run_plan`.
static BUFPOOL_HIT_RATIO: dbvirt_telemetry::Gauge =
    dbvirt_telemetry::Gauge::new("bufpool.hit_ratio");

#[cfg(test)]
pub(crate) mod tests_support {
    //! Shared fixtures for executor unit tests.

    use super::*;
    use dbvirt_storage::{DataType, Datum, Field};

    /// A database with one table `t(a INT, b STR)` holding `n` rows
    /// (`a = 0..n`), and a modest buffer pool.
    pub fn small_db(n: i64) -> (Database, BufferPool) {
        let mut db = Database::new();
        let t = db.create_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Str),
            ]),
        );
        db.insert_rows(
            t,
            (0..n).map(|i| Tuple::new(vec![Datum::Int(i), Datum::str(format!("row-{i}"))])),
        )
        .unwrap();
        (db, BufferPool::new(64))
    }

    /// A context over the fixtures with 1 MiB of `work_mem`.
    pub fn context<'a>(db: &'a mut Database, pool: &'a mut BufferPool) -> ExecContext<'a> {
        ExecContext::new(db, pool, 1 << 20)
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::small_db;
    use super::*;
    use crate::{AggExpr, Expr, SortKey, TableId};

    #[test]
    fn run_plan_end_to_end() {
        let (mut db, mut pool) = small_db(500);
        let plan = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::HashAgg {
                input: Box::new(PhysicalPlan::SeqScan {
                    table: TableId(0),
                    filter: Some(Expr::lt(Expr::col(0), Expr::int(100))),
                }),
                group_by: vec![],
                aggs: vec![AggExpr::count_star("n")],
            }),
            keys: vec![SortKey::asc(0)],
        };
        let out = run_plan(&mut db, &mut pool, &plan, 1 << 20, CpuCosts::default()).unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0].get(0).as_int(), Some(100));
        assert!(out.demand.cpu_cycles > 0.0);
        assert!(out.demand.seq_page_reads > 0);
        assert_eq!(out.schema.field(0).name, "n");
    }

    #[test]
    fn demand_is_per_query_delta() {
        let (mut db, mut pool) = small_db(500);
        let plan = PhysicalPlan::SeqScan {
            table: TableId(0),
            filter: None,
        };
        let first = run_plan(&mut db, &mut pool, &plan, 1 << 20, CpuCosts::default()).unwrap();
        let second = run_plan(&mut db, &mut pool, &plan, 1 << 20, CpuCosts::default()).unwrap();
        assert!(first.demand.seq_page_reads > 0);
        // The table fits in the 64-page pool, so the second run is all hits.
        assert_eq!(
            second.demand.seq_page_reads, 0,
            "warm rescan charges no reads"
        );
        assert!(second.demand.cpu_cycles > 0.0);
    }

    #[test]
    fn warm_vs_cold_depends_on_pool_size() {
        let (mut db, _) = small_db(20_000);
        let n_pages = db.table(TableId(0)).heap.num_pages(db.disk());
        assert!(n_pages > 64);
        let plan = PhysicalPlan::SeqScan {
            table: TableId(0),
            filter: None,
        };
        // Tiny pool: every scan is cold.
        let mut small_pool = BufferPool::new(8);
        run_plan(
            &mut db,
            &mut small_pool,
            &plan,
            1 << 20,
            CpuCosts::default(),
        )
        .unwrap();
        let rescan = run_plan(
            &mut db,
            &mut small_pool,
            &plan,
            1 << 20,
            CpuCosts::default(),
        )
        .unwrap();
        assert_eq!(rescan.demand.seq_page_reads as u32, n_pages);
        // Big pool: rescan is warm.
        let mut big_pool = BufferPool::new(n_pages as usize + 8);
        run_plan(&mut db, &mut big_pool, &plan, 1 << 20, CpuCosts::default()).unwrap();
        let rescan = run_plan(&mut db, &mut big_pool, &plan, 1 << 20, CpuCosts::default()).unwrap();
        assert_eq!(rescan.demand.seq_page_reads, 0);
    }

    #[test]
    fn error_display_chains() {
        let e = EngineError::Storage(StorageError::FileNotFound { file: 3 });
        assert!(e.to_string().contains("file 3"));
        assert!(e.source().is_some());
        let e = EngineError::Plan("no such index".into());
        assert!(e.to_string().contains("no such index"));
    }
}
