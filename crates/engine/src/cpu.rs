//! CPU cost constants — the engine's physical ground truth.
//!
//! Every executor operation charges cycles according to these constants.
//! They play the role of the real machine's instruction counts: the paper's
//! calibration process measures probe-query runtimes and solves for the
//! *optimizer's* cost parameters, which should end up reflecting these
//! values (divided by the VM's CPU rate). Tests verify that calibration
//! recovers them without ever reading them.

/// Cycles charged per unit of executor work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCosts {
    /// Per tuple emitted or consumed by a scan.
    pub per_tuple: f64,
    /// Per expression operator evaluated, per tuple (the engine analogue of
    /// PostgreSQL's `cpu_operator_cost` unit of work).
    pub per_operator: f64,
    /// Per index entry traversed by an index scan.
    pub per_index_tuple: f64,
    /// Per tuple hashed (build or probe side of a hash join / hash agg).
    pub per_hash: f64,
    /// Per comparison performed by sort (`n log2 n` comparisons charged).
    pub per_sort_cmp: f64,
    /// Per tuple folded into an aggregate state.
    pub per_agg: f64,
    /// Per page processed (header decode, slot walk).
    pub per_page: f64,
}

impl Default for CpuCosts {
    fn default() -> CpuCosts {
        // Chosen so that, on the paper-testbed machine, per-tuple CPU work
        // is a few hundred nanoseconds and a full scan of a ~100-page table
        // is I/O-bound cold and CPU-bound hot — the regime the paper's
        // Q4-vs-Q13 contrast depends on.
        CpuCosts {
            per_tuple: 1500.0,
            per_operator: 350.0,
            per_index_tuple: 700.0,
            per_hash: 900.0,
            per_sort_cmp: 450.0,
            per_agg: 400.0,
            per_page: 2500.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_ordered_sensibly() {
        let c = CpuCosts::default();
        for v in [
            c.per_tuple,
            c.per_operator,
            c.per_index_tuple,
            c.per_hash,
            c.per_sort_cmp,
            c.per_agg,
            c.per_page,
        ] {
            assert!(v > 0.0);
        }
        // Touching a tuple costs more than evaluating one operator on it.
        assert!(c.per_tuple > c.per_operator);
    }
}
