//! The catalog: tables, indexes, statistics, and the [`Database`] that owns
//! all storage-level objects.

use dbvirt_storage::{
    stats, BPlusTree, DiskManager, HeapFile, Schema, StorageError, TableStats, Tuple,
};
use std::fmt;

/// Identifier of a table within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub usize);

/// Identifier of an index within a [`Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub usize);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "table#{}", self.0)
    }
}

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "index#{}", self.0)
    }
}

/// Catalog entry for a table.
#[derive(Debug)]
pub struct TableMeta {
    /// Table name (unique within the database).
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// Backing heap file.
    pub heap: HeapFile,
    /// `ANALYZE` output, if collected.
    pub stats: Option<TableStats>,
    /// Indexes defined on this table.
    pub indexes: Vec<IndexId>,
}

/// Catalog entry for an index.
#[derive(Debug)]
pub struct IndexMeta {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: TableId,
    /// Indexed columns (positions in the table schema). Single-column
    /// indexes key the B+tree with the raw column [`Datum`]; composite
    /// indexes key it with the order-preserving encoding from
    /// [`dbvirt_storage::keyenc`].
    pub columns: Vec<usize>,
}

impl IndexMeta {
    /// The leading indexed column.
    pub fn column(&self) -> usize {
        self.columns[0]
    }

    /// True for multi-column indexes (encoded composite keys).
    pub fn is_composite(&self) -> bool {
        self.columns.len() > 1
    }

    /// The B+tree key for one table row: the raw datum for single-column
    /// indexes, the memcomparable encoding for composites.
    pub fn key_for(&self, tuple: &Tuple) -> dbvirt_storage::Datum {
        if self.columns.len() == 1 {
            tuple.get(self.columns[0]).clone()
        } else {
            let values: Vec<dbvirt_storage::Datum> =
                self.columns.iter().map(|&c| tuple.get(c).clone()).collect();
            dbvirt_storage::keyenc::encode_key(&values)
        }
    }
}

/// A database: disk, catalog, heaps, and indexes, all owned together.
#[derive(Debug, Default)]
pub struct Database {
    disk: DiskManager,
    tables: Vec<TableMeta>,
    index_meta: Vec<IndexMeta>,
    index_trees: Vec<BPlusTree>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table.
    ///
    /// # Panics
    /// Panics if the name is already taken (a programming error in the
    /// deterministic workloads this engine serves).
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> TableId {
        let name = name.into();
        assert!(
            self.table_id(&name).is_none(),
            "table {name:?} already exists"
        );
        let heap = HeapFile::create(&mut self.disk);
        self.tables.push(TableMeta {
            name,
            schema,
            heap,
            stats: None,
            indexes: Vec::new(),
        });
        TableId(self.tables.len() - 1)
    }

    /// Bulk-inserts rows into a table (offline, unmetered).
    pub fn insert_rows(
        &mut self,
        table: TableId,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> Result<u64, StorageError> {
        let heap = self.tables[table.0].heap;
        let mut n = 0;
        for row in rows {
            heap.insert(&mut self.disk, &row)?;
            n += 1;
        }
        // Any previous statistics are stale now.
        self.tables[table.0].stats = None;
        Ok(n)
    }

    /// Builds a B+tree index on one column, bulk-loading from the heap.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        table: TableId,
        column: usize,
    ) -> Result<IndexId, StorageError> {
        self.create_index_multi(name, table, &[column])
    }

    /// Builds a B+tree index on one or more columns, bulk-loading from
    /// the heap. Composite indexes (two or more columns) store
    /// memcomparable encoded keys ([`dbvirt_storage::keyenc`]), so a key
    /// *prefix* maps to one contiguous tree range.
    pub fn create_index_multi(
        &mut self,
        name: impl Into<String>,
        table: TableId,
        columns: &[usize],
    ) -> Result<IndexId, StorageError> {
        let meta = &self.tables[table.0];
        assert!(!columns.is_empty(), "index needs at least one column");
        for &column in columns {
            assert!(
                column < meta.schema.len(),
                "column {column} out of range for {}",
                meta.name
            );
        }
        let index_meta = IndexMeta {
            name: name.into(),
            table,
            columns: columns.to_vec(),
        };
        let heap = meta.heap;
        let mut entries = Vec::new();
        for page_no in 0..heap.num_pages(&self.disk) {
            let pid = dbvirt_storage::PageId {
                file: heap.file_id(),
                page_no,
            };
            let page = self.disk.read_page(pid)?;
            for (slot, bytes) in page.records() {
                let tuple = Tuple::decode(bytes)?;
                entries.push((
                    index_meta.key_for(&tuple),
                    dbvirt_storage::TupleId { page_no, slot },
                ));
            }
        }
        let tree = BPlusTree::bulk_load(&mut self.disk, entries)?;
        self.index_trees.push(tree);
        self.index_meta.push(index_meta);
        let id = IndexId(self.index_meta.len() - 1);
        self.tables[table.0].indexes.push(id);
        Ok(id)
    }

    /// Runs an `ANALYZE` pass over one table.
    pub fn analyze_table(&mut self, table: TableId) -> Result<(), StorageError> {
        let heap = self.tables[table.0].heap;
        let arity = self.tables[table.0].schema.len();
        let mut tuples = Vec::new();
        for page_no in 0..heap.num_pages(&self.disk) {
            let pid = dbvirt_storage::PageId {
                file: heap.file_id(),
                page_no,
            };
            for (_, bytes) in self.disk.read_page(pid)?.records() {
                tuples.push(Tuple::decode(bytes)?);
            }
        }
        let table_stats = stats::analyze(tuples.iter(), arity, heap.num_pages(&self.disk));
        self.tables[table.0].stats = Some(table_stats);
        Ok(())
    }

    /// Runs `ANALYZE` over every table.
    pub fn analyze_all(&mut self) -> Result<(), StorageError> {
        for t in 0..self.tables.len() {
            self.analyze_table(TableId(t))?;
        }
        Ok(())
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Catalog entry for a table.
    pub fn table(&self, id: TableId) -> &TableMeta {
        &self.tables[id.0]
    }

    /// Looks a table up by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.tables.iter().position(|t| t.name == name).map(TableId)
    }

    /// Catalog entry for an index.
    #[allow(clippy::should_implement_trait)] // catalog accessor, not std::ops::Index
    pub fn index(&self, id: IndexId) -> &IndexMeta {
        &self.index_meta[id.0]
    }

    /// The B+tree behind an index.
    pub fn index_tree(&self, id: IndexId) -> &BPlusTree {
        &self.index_trees[id.0]
    }

    /// Finds a single-column index on `(table, column)`, if one exists.
    pub fn index_on(&self, table: TableId, column: usize) -> Option<IndexId> {
        self.index_meta
            .iter()
            .position(|m| m.table == table && m.columns == [column])
            .map(IndexId)
    }

    /// Finds an index on exactly `(table, columns)`, if one exists.
    pub fn index_on_columns(&self, table: TableId, columns: &[usize]) -> Option<IndexId> {
        self.index_meta
            .iter()
            .position(|m| m.table == table && m.columns == columns)
            .map(IndexId)
    }

    /// Number of indexes in the catalog.
    pub fn num_indexes(&self) -> usize {
        self.index_meta.len()
    }

    /// All indexes, with ids.
    pub fn indexes(&self) -> impl Iterator<Item = (IndexId, &IndexMeta)> {
        self.index_meta
            .iter()
            .enumerate()
            .map(|(i, m)| (IndexId(i), m))
    }

    /// The disk manager (shared by the executor and the buffer pool).
    pub fn disk_mut(&mut self) -> &mut DiskManager {
        &mut self.disk
    }

    /// Read-only disk access.
    pub fn disk(&self) -> &DiskManager {
        &self.disk
    }

    /// Split borrow used by the executor: the disk mutably plus the catalog
    /// immutably.
    pub fn disk_and_catalog(&mut self) -> (&mut DiskManager, &[TableMeta], &[BPlusTree]) {
        (&mut self.disk, &self.tables, &self.index_trees)
    }

    /// Total size of the database in pages (heaps + indexes).
    pub fn total_pages(&self) -> usize {
        self.disk.total_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbvirt_storage::{DataType, Datum, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("val", DataType::Str),
        ])
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Datum::Int(i), Datum::str(format!("v{i}"))])
    }

    #[test]
    fn create_insert_analyze() {
        let mut db = Database::new();
        let t = db.create_table("t", schema());
        db.insert_rows(t, (0..100).map(row)).unwrap();
        assert!(db.table(t).stats.is_none());
        db.analyze_table(t).unwrap();
        let stats = db.table(t).stats.as_ref().unwrap();
        assert_eq!(stats.n_rows, 100);
        assert_eq!(stats.columns[0].n_distinct, 100);
    }

    #[test]
    fn insert_invalidates_stats() {
        let mut db = Database::new();
        let t = db.create_table("t", schema());
        db.insert_rows(t, (0..10).map(row)).unwrap();
        db.analyze_table(t).unwrap();
        db.insert_rows(t, (10..20).map(row)).unwrap();
        assert!(db.table(t).stats.is_none(), "stats must go stale");
    }

    #[test]
    fn index_lookup_matches_heap() {
        let mut db = Database::new();
        let t = db.create_table("t", schema());
        db.insert_rows(t, (0..1000).map(row)).unwrap();
        let idx = db.create_index("t_id", t, 0).unwrap();
        assert_eq!(db.index_on(t, 0), Some(idx));
        assert_eq!(db.index_on(t, 1), None);
        assert_eq!(db.index_tree(idx).len(), 1000);
        assert_eq!(db.index(idx).columns, vec![0]);
    }

    #[test]
    fn composite_index_keys_are_prefix_rangeable() {
        let mut db = Database::new();
        let t = db.create_table("t", schema());
        // (id % 10, val) so the leading composite column has duplicates.
        let rows = (0..500).map(|i| Tuple::new(vec![Datum::Int(i % 10), Datum::str(format!("v{i}"))]));
        db.insert_rows(t, rows).unwrap();
        let idx = db.create_index_multi("t_id_val", t, &[0, 1]).unwrap();
        assert!(db.index(idx).is_composite());
        assert_eq!(db.index_on_columns(t, &[0, 1]), Some(idx));
        assert_eq!(db.index_on(t, 0), None, "no single-column index exists");
        // All 50 rows with leading value 3 fall inside the encoded prefix
        // range, and nothing else does.
        let lo = dbvirt_storage::keyenc::encode_key(&[Datum::Int(3)]);
        let hi = dbvirt_storage::keyenc::encode_prefix_upper(&[Datum::Int(3)]);
        let hits = db.index_tree(idx).range(
            std::ops::Bound::Included(&lo),
            std::ops::Bound::Excluded(&hi),
        );
        assert_eq!(hits.len(), 50);
    }

    #[test]
    fn table_lookup_by_name() {
        let mut db = Database::new();
        let a = db.create_table("alpha", schema());
        let b = db.create_table("beta", schema());
        assert_eq!(db.table_id("alpha"), Some(a));
        assert_eq!(db.table_id("beta"), Some(b));
        assert_eq!(db.table_id("gamma"), None);
        assert_eq!(db.num_tables(), 2);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_table_name_panics() {
        let mut db = Database::new();
        db.create_table("t", schema());
        db.create_table("t", schema());
    }
}
