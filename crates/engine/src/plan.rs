//! The physical plan algebra.
//!
//! Physical plans are produced by the optimizer (`dbvirt-optimizer`) and
//! consumed by the executor ([`crate::exec`]). Keeping the type here lets
//! both crates share it without a dependency cycle.

use crate::{AggExpr, AggFunc, Expr};
use crate::{IndexId, TableId};
use dbvirt_storage::{DataType, Datum, Field, Schema};
use std::fmt::Write as _;
use std::ops::Bound;

/// Join variants supported by the join operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Matching pairs only.
    Inner,
    /// All left rows; unmatched ones padded with NULLs.
    Left,
    /// Left rows with at least one match (`EXISTS`).
    Semi,
    /// Left rows with no match (`NOT EXISTS`).
    Anti,
}

impl JoinType {
    /// True if the join output carries the right side's columns.
    pub fn emits_right(self) -> bool {
        matches!(self, JoinType::Inner | JoinType::Left)
    }
}

/// One sort key: a column and a direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column position in the input schema.
    pub column: usize,
    /// Sort descending when true.
    pub descending: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(column: usize) -> SortKey {
        SortKey {
            column,
            descending: false,
        }
    }

    /// Descending key.
    pub fn desc(column: usize) -> SortKey {
        SortKey {
            column,
            descending: true,
        }
    }
}

/// One index range probed by a multi-index scan ([`PhysicalPlan::IndexAnd`]
/// / [`PhysicalPlan::IndexOr`]): an index plus a key range over it.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexArm {
    /// The index probed by this arm.
    pub index: IndexId,
    /// Lower key bound.
    pub lo: Bound<Datum>,
    /// Upper key bound.
    pub hi: Bound<Datum>,
}

/// A physical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Full heap scan with an optional pushed-down filter.
    SeqScan {
        /// Scanned table.
        table: TableId,
        /// Residual predicate applied to each tuple.
        filter: Option<Expr>,
    },
    /// B+tree range scan plus heap fetches, with an optional residual
    /// filter.
    IndexScan {
        /// Scanned table.
        table: TableId,
        /// The index used.
        index: IndexId,
        /// Lower key bound.
        lo: Bound<Datum>,
        /// Upper key bound.
        hi: Bound<Datum>,
        /// Residual predicate applied to fetched tuples.
        filter: Option<Expr>,
    },
    /// Index intersection: probe every arm, intersect the TID sets, fetch
    /// the surviving heap tuples once, apply the residual filter.
    IndexAnd {
        /// Scanned table.
        table: TableId,
        /// Index ranges intersected (two or more).
        arms: Vec<IndexArm>,
        /// Residual predicate applied to fetched tuples.
        filter: Option<Expr>,
    },
    /// Index union: probe every arm, union (dedup) the TID sets, fetch each
    /// surviving heap tuple once, apply the residual filter.
    IndexOr {
        /// Scanned table.
        table: TableId,
        /// Index ranges unioned (two or more).
        arms: Vec<IndexArm>,
        /// Residual predicate applied to fetched tuples.
        filter: Option<Expr>,
    },
    /// Standalone filter (e.g. `HAVING`).
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// The predicate.
        predicate: Expr,
    },
    /// Expression projection.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Sort (in-memory or external, decided by `work_mem` at run time).
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// First `limit` rows of the input.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Row budget.
        limit: usize,
    },
    /// Hash join on equality keys.
    HashJoin {
        /// Probe (outer) side.
        left: Box<PhysicalPlan>,
        /// Build (inner) side.
        right: Box<PhysicalPlan>,
        /// Equality key columns on the left schema.
        left_keys: Vec<usize>,
        /// Equality key columns on the right schema.
        right_keys: Vec<usize>,
        /// Join variant.
        join_type: JoinType,
    },
    /// Merge join of two inputs already sorted on the join key (inner
    /// only).
    MergeJoin {
        /// Left input, sorted on `left_key`.
        left: Box<PhysicalPlan>,
        /// Right input, sorted on `right_key`.
        right: Box<PhysicalPlan>,
        /// Left key column.
        left_key: usize,
        /// Right key column.
        right_key: usize,
    },
    /// Nested-loop join with an arbitrary predicate.
    NestedLoopJoin {
        /// Outer input.
        left: Box<PhysicalPlan>,
        /// Inner input (rescanned per outer row; materialized once).
        right: Box<PhysicalPlan>,
        /// Join predicate over the concatenated row (`None` = cross join).
        predicate: Option<Expr>,
        /// Join variant.
        join_type: JoinType,
    },
    /// Hash aggregation.
    HashAgg {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping columns (empty = one global group).
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
    /// Aggregation over input sorted by the grouping columns.
    SortAgg {
        /// Input plan, sorted by `group_by`.
        input: Box<PhysicalPlan>,
        /// Grouping columns.
        group_by: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggExpr>,
    },
}

fn agg_output_type(agg: &AggExpr, input: &Schema) -> DataType {
    match agg.func {
        AggFunc::Count | AggFunc::CountStar => DataType::Int,
        AggFunc::Avg => DataType::Float,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => agg
            .arg
            .as_ref()
            .map(|e| e.data_type(input))
            .unwrap_or(DataType::Float),
    }
}

fn agg_schema(input: &Schema, group_by: &[usize], aggs: &[AggExpr]) -> Schema {
    let mut fields: Vec<Field> = group_by.iter().map(|&c| input.field(c).clone()).collect();
    for a in aggs {
        fields.push(Field::new(a.name.clone(), agg_output_type(a, input)));
    }
    Schema::new(fields)
}

impl PhysicalPlan {
    /// The output schema, resolved against a database catalog.
    pub fn output_schema(&self, db: &crate::Database) -> Schema {
        match self {
            PhysicalPlan::SeqScan { table, .. }
            | PhysicalPlan::IndexScan { table, .. }
            | PhysicalPlan::IndexAnd { table, .. }
            | PhysicalPlan::IndexOr { table, .. } => db.table(*table).schema.clone(),
            PhysicalPlan::Filter { input, .. } | PhysicalPlan::Limit { input, .. } => {
                input.output_schema(db)
            }
            PhysicalPlan::Sort { input, .. } => input.output_schema(db),
            PhysicalPlan::Project { input, exprs } => {
                let in_schema = input.output_schema(db);
                Schema::new(
                    exprs
                        .iter()
                        .map(|(e, name)| Field::new(name.clone(), e.data_type(&in_schema)))
                        .collect(),
                )
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                join_type,
                ..
            }
            | PhysicalPlan::NestedLoopJoin {
                left,
                right,
                join_type,
                ..
            } => {
                let l = left.output_schema(db);
                if join_type.emits_right() {
                    l.join(&right.output_schema(db))
                } else {
                    l
                }
            }
            PhysicalPlan::MergeJoin { left, right, .. } => {
                left.output_schema(db).join(&right.output_schema(db))
            }
            PhysicalPlan::HashAgg {
                input,
                group_by,
                aggs,
            }
            | PhysicalPlan::SortAgg {
                input,
                group_by,
                aggs,
            } => agg_schema(&input.output_schema(db), group_by, aggs),
        }
    }

    /// One-word operator name (for EXPLAIN output and tests).
    pub fn node_name(&self) -> &'static str {
        match self {
            PhysicalPlan::SeqScan { .. } => "SeqScan",
            PhysicalPlan::IndexScan { .. } => "IndexScan",
            PhysicalPlan::IndexAnd { .. } => "IndexAnd",
            PhysicalPlan::IndexOr { .. } => "IndexOr",
            PhysicalPlan::Filter { .. } => "Filter",
            PhysicalPlan::Project { .. } => "Project",
            PhysicalPlan::Sort { .. } => "Sort",
            PhysicalPlan::Limit { .. } => "Limit",
            PhysicalPlan::HashJoin { .. } => "HashJoin",
            PhysicalPlan::MergeJoin { .. } => "MergeJoin",
            PhysicalPlan::NestedLoopJoin { .. } => "NestedLoopJoin",
            PhysicalPlan::HashAgg { .. } => "HashAgg",
            PhysicalPlan::SortAgg { .. } => "SortAgg",
        }
    }

    /// Child plans, for tree walks.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match self {
            PhysicalPlan::SeqScan { .. }
            | PhysicalPlan::IndexScan { .. }
            | PhysicalPlan::IndexAnd { .. }
            | PhysicalPlan::IndexOr { .. } => vec![],
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. }
            | PhysicalPlan::HashAgg { input, .. }
            | PhysicalPlan::SortAgg { input, .. } => vec![input],
            PhysicalPlan::HashJoin { left, right, .. }
            | PhysicalPlan::MergeJoin { left, right, .. }
            | PhysicalPlan::NestedLoopJoin { left, right, .. } => vec![left, right],
        }
    }

    /// An indented EXPLAIN-style rendering of the plan tree.
    pub fn explain(&self) -> String {
        fn walk(plan: &PhysicalPlan, depth: usize, out: &mut String) {
            let _ = writeln!(
                out,
                "{:indent$}-> {}",
                "",
                plan.node_name(),
                indent = depth * 2
            );
            for child in plan.children() {
                walk(child, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }

    /// Number of operators in the plan tree.
    pub fn num_nodes(&self) -> usize {
        1 + self.children().iter().map(|c| c.num_nodes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;
    use dbvirt_storage::Field;

    fn db_with_table() -> (Database, TableId) {
        let mut db = Database::new();
        let t = db.create_table(
            "t",
            Schema::new(vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Str),
            ]),
        );
        (db, t)
    }

    #[test]
    fn scan_schema_is_table_schema() {
        let (db, t) = db_with_table();
        let plan = PhysicalPlan::SeqScan {
            table: t,
            filter: None,
        };
        assert_eq!(plan.output_schema(&db).len(), 2);
        assert_eq!(plan.node_name(), "SeqScan");
    }

    #[test]
    fn project_schema_uses_expr_types() {
        let (db, t) = db_with_table();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                filter: None,
            }),
            exprs: vec![
                (Expr::add(Expr::col(0), Expr::int(1)), "a1".into()),
                (Expr::lt(Expr::col(0), Expr::int(5)), "flag".into()),
            ],
        };
        let s = plan.output_schema(&db);
        assert_eq!(s.field(0).name, "a1");
        assert_eq!(s.field(0).data_type, DataType::Int);
        assert_eq!(s.field(1).data_type, DataType::Bool);
    }

    #[test]
    fn join_schema_depends_on_join_type() {
        let (db, t) = db_with_table();
        let scan = || {
            Box::new(PhysicalPlan::SeqScan {
                table: t,
                filter: None,
            })
        };
        let inner = PhysicalPlan::HashJoin {
            left: scan(),
            right: scan(),
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
        };
        assert_eq!(inner.output_schema(&db).len(), 4);
        let semi = PhysicalPlan::HashJoin {
            left: scan(),
            right: scan(),
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Semi,
        };
        assert_eq!(semi.output_schema(&db).len(), 2);
    }

    #[test]
    fn agg_schema_groups_then_aggs() {
        let (db, t) = db_with_table();
        let plan = PhysicalPlan::HashAgg {
            input: Box::new(PhysicalPlan::SeqScan {
                table: t,
                filter: None,
            }),
            group_by: vec![1],
            aggs: vec![
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Sum, Expr::col(0), "total"),
                AggExpr::new(AggFunc::Avg, Expr::col(0), "mean"),
            ],
        };
        let s = plan.output_schema(&db);
        assert_eq!(s.field(0).name, "b");
        assert_eq!(s.field(1).data_type, DataType::Int);
        assert_eq!(s.field(2).name, "total");
        assert_eq!(s.field(2).data_type, DataType::Int);
        assert_eq!(s.field(3).data_type, DataType::Float);
    }

    #[test]
    fn explain_renders_tree() {
        let (_, t) = db_with_table();
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::SeqScan {
                    table: t,
                    filter: None,
                }),
                keys: vec![SortKey::asc(0)],
            }),
            limit: 10,
        };
        let text = plan.explain();
        assert!(text.contains("Limit"));
        assert!(text.contains("Sort"));
        assert!(text.contains("SeqScan"));
        assert_eq!(plan.num_nodes(), 3);
    }
}
