//! In-tree shim for the `proptest` crate (offline build environment).
//!
//! Implements the subset dbvirt's tests use: the [`proptest!`] macro
//! (deterministic case loop, no shrinking), [`Strategy`] for ranges,
//! tuples, `collection::vec`, `bool::ANY`, simple `[charset]{lo,hi}`
//! string patterns, and `prop_map`. Cases are seeded deterministically
//! from the test name, so failures reproduce exactly.

use std::ops::{Range, RangeInclusive};

/// Per-test deterministic generator (xorshift-based).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator for `case` of the test whose name hashes to `seed`.
    pub fn deterministic(seed: u64, case: u64) -> TestRng {
        // Never zero: xorshift has a zero fixed point.
        TestRng(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn uniform_u64(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        (self.next_u64() as u128) % span
    }
}

/// FNV-1a hash of a test name, used to seed its generator.
pub fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run configuration; only the case count is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Element types samplable from a plain range; one generic `Strategy`
/// impl per range shape keeps unsuffixed literals inferable from use.
pub trait RangeValue: Sized {
    /// Uniform sample from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self;
}

macro_rules! impl_int_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_range(lo: $t, hi: $t, inclusive: bool, rng: &mut TestRng) -> $t {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = if inclusive {
                    assert!(lo <= hi, "empty strategy range");
                    (hi - lo) as u128 + 1
                } else {
                    assert!(lo < hi, "empty strategy range");
                    (hi - lo) as u128
                };
                (lo + rng.uniform_u64(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_value!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl RangeValue for f64 {
    fn sample_range(lo: f64, hi: f64, inclusive: bool, rng: &mut TestRng) -> f64 {
        if inclusive {
            assert!(lo <= hi, "empty strategy range");
        } else {
            assert!(lo < hi, "empty strategy range");
        }
        lo + (hi - lo) * rng.unit_f64()
    }
}

impl<T: RangeValue + Copy> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: RangeValue + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Simple string patterns: `[charset]{lo,hi}` with `a-z` style ranges in
/// the charset (the only pattern shape used in this repo).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (charset, lo, hi) = parse_pattern(self);
        let len = lo + rng.uniform_u64((hi - lo + 1) as u128) as usize;
        (0..len)
            .map(|_| charset[rng.uniform_u64(charset.len() as u128) as usize])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let inner = pat
        .strip_prefix('[')
        .and_then(|r| r.split_once(']'))
        .unwrap_or_else(|| panic!("unsupported string pattern {pat:?} (want [set]{{lo,hi}})"));
    let (set, rest) = inner;
    let mut charset = Vec::new();
    let chars: Vec<char> = set.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                charset.push(c);
            }
            i += 3;
        } else {
            charset.push(chars[i]);
            i += 1;
        }
    }
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pat:?}"));
    let (lo, hi) = counts
        .split_once(',')
        .map(|(a, b)| (a.trim().parse().unwrap(), b.trim().parse().unwrap()))
        .unwrap_or_else(|| {
            let n = counts.trim().parse().unwrap();
            (n, n)
        });
    assert!(!charset.is_empty() && lo <= hi, "bad pattern {pat:?}");
    (charset, lo, hi)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A vector of values from `element`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Short-path names, mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a property holds (panics on failure, like a failed test case).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Only valid directly inside a [`proptest!`] body (it continues the
/// enclosing case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Defines property tests: each `fn` runs its body for a number of
/// deterministic pseudo-random cases, with the `name in strategy`
/// bindings freshly sampled per case.
#[macro_export]
macro_rules! proptest {
    (@impl $cases:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: usize = $cases;
                for case in 0..cases {
                    let mut __proptest_rng = $crate::TestRng::deterministic(
                        $crate::fnv(stringify!($name)),
                        case as u64,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg).cases as usize; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl 32usize; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_parsing_generates_members() {
        let mut rng = crate::TestRng::deterministic(1, 0);
        for _ in 0..200 {
            let s = crate::Strategy::sample(&"[a-c0-1 ]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| "abc01 ".contains(c)), "{s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_binds_and_loops(
            xs in prop::collection::vec(0i64..10, 1..5),
            flag in prop::bool::ANY,
            (a, b) in (0u32..4, 0.0f64..1.0),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| (0..10).contains(&x)));
            prop_assert_eq!(flag || !flag, true);
            prop_assert!(a < 4 && (0.0..1.0).contains(&b));
        }
    }
}
