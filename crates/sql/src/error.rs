//! SQL front-end errors.

use std::error::Error;
use std::fmt;

/// Errors from lexing, parsing, or binding SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The lexer hit an unexpected character.
    Lex {
        /// Byte offset in the input.
        position: usize,
        /// Description.
        message: String,
    },
    /// The parser hit an unexpected token.
    Parse {
        /// Description, including what was expected.
        message: String,
    },
    /// Name resolution failed (unknown table/column, ambiguity, …).
    Bind {
        /// Description.
        message: String,
    },
}

impl SqlError {
    pub(crate) fn parse(message: impl Into<String>) -> SqlError {
        SqlError::Parse {
            message: message.into(),
        }
    }

    pub(crate) fn bind(message: impl Into<String>) -> SqlError {
        SqlError::Bind {
            message: message.into(),
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { position, message } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            SqlError::Parse { message } => write!(f, "parse error: {message}"),
            SqlError::Bind { message } => write!(f, "bind error: {message}"),
        }
    }
}

impl Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = SqlError::Lex {
            position: 5,
            message: "bad char".into(),
        };
        assert!(e.to_string().contains("byte 5"));
        assert!(SqlError::parse("x").to_string().contains("parse"));
        assert!(SqlError::bind("y").to_string().contains("bind"));
    }
}
