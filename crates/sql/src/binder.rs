//! The binder: names → catalog objects, AST → logical plan.
//!
//! Binding follows the textbook pipeline:
//!
//! 1. resolve the `FROM` tables and assign each a column-offset range in
//!    the (left-to-right) join output;
//! 2. classify `WHERE` conjuncts into per-table pushdown filters,
//!    equi-join conditions, and residual predicates (filters are *not*
//!    pushed below the nullable side of a `LEFT JOIN`, which would change
//!    the query's meaning);
//! 3. build the left-deep join tree, attach residual filters;
//! 4. lower `GROUP BY`/aggregates, `HAVING`, the projection, `ORDER BY`
//!    (by output name or 1-based position), and `LIMIT`.

use crate::ast::{ExprAst, FromItem, JoinKind, OrderKey, SelectItem, SelectStmt};
use crate::SqlError;
use dbvirt_engine::{AggExpr, AggFunc, CmpOp, Database, Expr, JoinType, SortKey, TableId};
use dbvirt_optimizer::{JoinCondition, LogicalPlan};
use dbvirt_storage::Datum;

/// One resolved `FROM` entry.
struct BoundTable {
    alias: String,
    table: TableId,
    /// Global column offset of this table in the join output.
    offset: usize,
    arity: usize,
    /// True if this table is the nullable side of a LEFT JOIN (no filter
    /// pushdown, no join-condition hoisting past it).
    nullable_side: bool,
    join_kind: JoinKind,
    /// Bound equality conditions from this table's ON clause.
    on_conditions: Vec<(usize, usize)>, // (prefix global col, this-table global col)
    /// Pushdown filter (table-local column indexes).
    pushdown: Option<Expr>,
}

/// Parses `YYYY-MM-DD` into days since the Unix epoch.
fn parse_date(s: &str) -> Result<i32, SqlError> {
    let parts: Vec<&str> = s.split('-').collect();
    let bad = || SqlError::bind(format!("bad date literal {s:?} (expected YYYY-MM-DD)"));
    if parts.len() != 3 {
        return Err(bad());
    }
    let year: i32 = parts[0].parse().map_err(|_| bad())?;
    let month: u32 = parts[1].parse().map_err(|_| bad())?;
    let day: u32 = parts[2].parse().map_err(|_| bad())?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(bad());
    }
    // Howard Hinnant's days_from_civil.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let m = month as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Ok((era as i64 * 146_097 + doe - 719_468) as i32)
}

struct Binder<'a> {
    db: &'a Database,
    tables: Vec<BoundTable>,
    /// Set when the `FROM` clause is a derived table: `(alias, output
    /// column names of the subquery)`. Columns then resolve against the
    /// subquery's output schema instead of the catalog.
    derived: Option<(String, Vec<String>)>,
}

impl<'a> Binder<'a> {
    /// Resolves `[qualifier.]name` to a global column index.
    fn resolve_column(&self, qualifier: Option<&str>, name: &str) -> Result<usize, SqlError> {
        if let Some((alias, names)) = &self.derived {
            if let Some(q) = qualifier {
                if q != alias {
                    return Err(SqlError::bind(format!("unknown table alias {q:?}")));
                }
            }
            let mut hits = names.iter().enumerate().filter(|(_, n)| *n == name);
            let first = hits.next();
            if hits.next().is_some() {
                return Err(SqlError::bind(format!("ambiguous column {name:?}")));
            }
            return first
                .map(|(i, _)| i)
                .ok_or_else(|| SqlError::bind(format!("unknown column {name}")));
        }
        let mut found: Option<usize> = None;
        for t in &self.tables {
            if let Some(q) = qualifier {
                if t.alias != q {
                    continue;
                }
            }
            let schema = &self.db.table(t.table).schema;
            if let Some(local) = schema.index_of(name) {
                if found.is_some() {
                    return Err(SqlError::bind(format!("ambiguous column {name:?}")));
                }
                found = Some(t.offset + local);
                if qualifier.is_some() {
                    break;
                }
            }
        }
        found.ok_or_else(|| {
            let q = qualifier.map(|q| format!("{q}.")).unwrap_or_default();
            SqlError::bind(format!("unknown column {q}{name}"))
        })
    }

    /// Lowers a scalar AST expression against the full join schema.
    /// Aggregates are rejected here (they are handled by the aggregation
    /// path).
    fn lower(&self, ast: &ExprAst) -> Result<Expr, SqlError> {
        match ast {
            ExprAst::Column { qualifier, name } => {
                Ok(Expr::col(self.resolve_column(qualifier.as_deref(), name)?))
            }
            ExprAst::Int(v) => Ok(Expr::int(*v)),
            ExprAst::Float(v) => Ok(Expr::float(*v)),
            ExprAst::Str(s) => Ok(Expr::str(s.clone())),
            ExprAst::Date(s) => Ok(Expr::date(parse_date(s)?)),
            ExprAst::Bool(b) => Ok(Expr::lit(Datum::Bool(*b))),
            ExprAst::Null => Ok(Expr::lit(Datum::Null)),
            ExprAst::Neg(e) => Ok(Expr::sub(Expr::int(0), self.lower(e)?)),
            ExprAst::Not(e) => Ok(Expr::not(self.lower(e)?)),
            ExprAst::Binary { op, lhs, rhs } => {
                let (l, r) = (self.lower(lhs)?, self.lower(rhs)?);
                Ok(match op.as_str() {
                    "AND" => Expr::and(l, r),
                    "OR" => Expr::or(l, r),
                    "=" => Expr::eq(l, r),
                    "<>" => Expr::cmp(CmpOp::Ne, l, r),
                    "<" => Expr::lt(l, r),
                    "<=" => Expr::le(l, r),
                    ">" => Expr::gt(l, r),
                    ">=" => Expr::ge(l, r),
                    "+" => Expr::add(l, r),
                    "-" => Expr::sub(l, r),
                    "*" => Expr::mul(l, r),
                    "/" => Expr::arith(dbvirt_engine::BinOp::Div, l, r),
                    other => return Err(SqlError::bind(format!("unknown operator {other}"))),
                })
            }
            ExprAst::Like {
                expr,
                pattern,
                negated,
            } => {
                let e = self.lower(expr)?;
                Ok(if *negated {
                    Expr::not_like(e, pattern.clone())
                } else {
                    Expr::like(e, pattern.clone())
                })
            }
            ExprAst::InList {
                expr,
                list,
                negated,
            } => {
                let e = self.lower(expr)?;
                let items: Vec<Datum> = list
                    .iter()
                    .map(|item| match self.lower(item)? {
                        Expr::Literal(d) => Ok(d),
                        _ => Err(SqlError::bind("IN list items must be literals")),
                    })
                    .collect::<Result<_, _>>()?;
                let in_expr = Expr::in_list(e, items);
                Ok(if *negated {
                    Expr::not(in_expr)
                } else {
                    in_expr
                })
            }
            ExprAst::Between { expr, lo, hi } => {
                let e = self.lower(expr)?;
                let (lo, hi) = (self.lower(lo)?, self.lower(hi)?);
                Ok(Expr::and(Expr::ge(e.clone(), lo), Expr::le(e, hi)))
            }
            ExprAst::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.lower(expr)?),
                negated: *negated,
            }),
            ExprAst::Case {
                branches,
                else_expr,
            } => Ok(Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((self.lower(c)?, self.lower(v)?)))
                    .collect::<Result<_, SqlError>>()?,
                else_expr: else_expr
                    .as_ref()
                    .map(|e| Ok::<_, SqlError>(Box::new(self.lower(e)?)))
                    .transpose()?,
            }),
            ExprAst::Agg { .. } => Err(SqlError::bind(
                "aggregate used where a scalar expression is required",
            )),
            ExprAst::Exists { .. } | ExprAst::InSelect { .. } => Err(SqlError::bind(
                "subqueries are only supported as top-level WHERE conjuncts",
            )),
        }
    }

    /// The table (index into `self.tables`) that owns global column `g`.
    fn owner_of(&self, g: usize) -> usize {
        self.tables
            .iter()
            .position(|t| g >= t.offset && g < t.offset + t.arity)
            .expect("global column out of range")
    }

    /// Tables referenced by a lowered expression.
    fn tables_of(&self, e: &Expr) -> Vec<usize> {
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        let mut out: Vec<usize> = cols.into_iter().map(|g| self.owner_of(g)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn split_conjuncts_ast(e: &ExprAst, out: &mut Vec<ExprAst>) {
    match e {
        ExprAst::Binary { op, lhs, rhs } if op == "AND" => {
            split_conjuncts_ast(lhs, out);
            split_conjuncts_ast(rhs, out);
        }
        other => out.push(other.clone()),
    }
}

/// An equality between two columns of different tables, as global indexes.
fn as_equi_edge(binder: &Binder<'_>, e: &Expr) -> Option<(usize, usize)> {
    if let Expr::Cmp {
        op: CmpOp::Eq,
        lhs,
        rhs,
    } = e
    {
        if let (Expr::Column(a), Expr::Column(b)) = (lhs.as_ref(), rhs.as_ref()) {
            if binder.owner_of(*a) != binder.owner_of(*b) {
                return Some((*a, *b));
            }
        }
    }
    None
}

fn agg_func(name: &str, has_arg: bool) -> Result<AggFunc, SqlError> {
    Ok(match (name, has_arg) {
        ("COUNT", false) => AggFunc::CountStar,
        ("COUNT", true) => AggFunc::Count,
        ("SUM", true) => AggFunc::Sum,
        ("AVG", true) => AggFunc::Avg,
        ("MIN", true) => AggFunc::Min,
        ("MAX", true) => AggFunc::Max,
        _ => return Err(SqlError::bind(format!("unsupported aggregate {name}"))),
    })
}

/// Collects every aggregate call in an AST expression.
fn collect_aggs(e: &ExprAst, out: &mut Vec<ExprAst>) {
    match e {
        ExprAst::Agg { .. }
            if !out.contains(e) => {
                out.push(e.clone());
            }
        ExprAst::Binary { lhs, rhs, .. } => {
            collect_aggs(lhs, out);
            collect_aggs(rhs, out);
        }
        ExprAst::Not(x) | ExprAst::Neg(x) => collect_aggs(x, out),
        ExprAst::Like { expr, .. } | ExprAst::IsNull { expr, .. } => collect_aggs(expr, out),
        ExprAst::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for item in list {
                collect_aggs(item, out);
            }
        }
        ExprAst::Between { expr, lo, hi } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        ExprAst::Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                collect_aggs(c, out);
                collect_aggs(v, out);
            }
            if let Some(e) = else_expr {
                collect_aggs(e, out);
            }
        }
        _ => {}
    }
}

/// Rewrites an AST expression over the aggregate output schema: group
/// columns map to their group position, aggregate calls to their slot.
fn lower_over_agg(
    binder: &Binder<'_>,
    e: &ExprAst,
    group_cols: &[usize],
    aggs: &[ExprAst],
) -> Result<Expr, SqlError> {
    if let Some(pos) = aggs.iter().position(|a| a == e) {
        return Ok(Expr::col(group_cols.len() + pos));
    }
    match e {
        ExprAst::Column { qualifier, name } => {
            let g = binder.resolve_column(qualifier.as_deref(), name)?;
            let pos = group_cols.iter().position(|&c| c == g).ok_or_else(|| {
                SqlError::bind(format!(
                    "column {name:?} must appear in GROUP BY or an aggregate"
                ))
            })?;
            Ok(Expr::col(pos))
        }
        ExprAst::Int(v) => Ok(Expr::int(*v)),
        ExprAst::Float(v) => Ok(Expr::float(*v)),
        ExprAst::Str(s) => Ok(Expr::str(s.clone())),
        ExprAst::Date(s) => Ok(Expr::date(parse_date(s)?)),
        ExprAst::Bool(b) => Ok(Expr::lit(Datum::Bool(*b))),
        ExprAst::Null => Ok(Expr::lit(Datum::Null)),
        ExprAst::Neg(x) => Ok(Expr::sub(
            Expr::int(0),
            lower_over_agg(binder, x, group_cols, aggs)?,
        )),
        ExprAst::Not(x) => Ok(Expr::not(lower_over_agg(binder, x, group_cols, aggs)?)),
        ExprAst::Binary { op, lhs, rhs } => {
            let l = lower_over_agg(binder, lhs, group_cols, aggs)?;
            let r = lower_over_agg(binder, rhs, group_cols, aggs)?;
            Ok(match op.as_str() {
                "AND" => Expr::and(l, r),
                "OR" => Expr::or(l, r),
                "=" => Expr::eq(l, r),
                "<>" => Expr::cmp(CmpOp::Ne, l, r),
                "<" => Expr::lt(l, r),
                "<=" => Expr::le(l, r),
                ">" => Expr::gt(l, r),
                ">=" => Expr::ge(l, r),
                "+" => Expr::add(l, r),
                "-" => Expr::sub(l, r),
                "*" => Expr::mul(l, r),
                "/" => Expr::arith(dbvirt_engine::BinOp::Div, l, r),
                other => return Err(SqlError::bind(format!("unknown operator {other}"))),
            })
        }
        other => Err(SqlError::bind(format!(
            "unsupported expression over aggregate output: {other:?}"
        ))),
    }
}

/// Binds a parsed statement against the catalog, producing a logical plan.
pub fn bind(stmt: &SelectStmt, db: &Database) -> Result<LogicalPlan, SqlError> {
    Ok(bind_with_names(stmt, db)?.0)
}

/// One `EXISTS` / `IN (SELECT ...)` conjunct, lowered to a semi/anti join
/// to be appended after the main join tree.
struct SemiJoinSpec {
    plan: LogicalPlan,
    conditions: Vec<JoinCondition>,
    join_type: JoinType,
}

/// Binds a statement, also returning its output column names (needed when
/// the statement is used as a derived table or a subquery).
pub(crate) fn bind_with_names(
    stmt: &SelectStmt,
    db: &Database,
) -> Result<(LogicalPlan, Vec<String>), SqlError> {
    // --- 1. Resolve the FROM clause. ---
    let mut binder = Binder {
        db,
        tables: Vec::new(),
        derived: None,
    };
    // Set when FROM is a derived table: the bound subquery plan.
    let mut derived_plan: Option<LogicalPlan> = None;
    let mut offset = 0usize;
    let mut add_table = |binder: &mut Binder<'_>,
                         name: &str,
                         alias: &str,
                         kind: JoinKind|
     -> Result<(), SqlError> {
        let table = db
            .table_id(name)
            .ok_or_else(|| SqlError::bind(format!("unknown table {name:?}")))?;
        if binder.tables.iter().any(|t| t.alias == alias) {
            return Err(SqlError::bind(format!("duplicate table alias {alias:?}")));
        }
        let arity = db.table(table).schema.len();
        binder.tables.push(BoundTable {
            alias: alias.to_string(),
            table,
            offset,
            arity,
            nullable_side: kind == JoinKind::Left,
            join_kind: kind,
            on_conditions: Vec::new(),
            pushdown: None,
        });
        offset += arity;
        Ok(())
    };
    match &stmt.from {
        FromItem::Table(t) => {
            add_table(&mut binder, &t.table, &t.alias, JoinKind::Inner)?;
            for j in &stmt.joins {
                add_table(&mut binder, &j.table.table, &j.table.alias, j.kind)?;
            }
        }
        FromItem::Derived { query, alias } => {
            if !stmt.joins.is_empty() {
                return Err(SqlError::bind(
                    "derived tables are only supported as the sole FROM entry",
                ));
            }
            let (inner, names) = bind_with_names(query, db)?;
            binder.derived = Some((alias.clone(), names));
            derived_plan = Some(inner);
        }
    }

    // --- 2. Bind ON clauses (each may only reference its prefix).
    // Equality conjuncts become join conditions; any other conjunct that
    // touches only the joined table is pushed into that table's scan
    // (which, for a LEFT JOIN, is the only meaning-preserving placement).
    for (i, j) in stmt.joins.iter().enumerate() {
        let table_idx = i + 1;
        let Some(on) = &j.on else { continue };
        let mut conjuncts = Vec::new();
        split_conjuncts_ast(on, &mut conjuncts);
        for c in conjuncts {
            let lowered = binder.lower(&c)?;
            if let Some((a, b)) = as_equi_edge(&binder, &lowered) {
                let (oa, ob) = (binder.owner_of(a), binder.owner_of(b));
                let (prefix_col, new_col) = if ob == table_idx && oa < table_idx {
                    (a, b)
                } else if oa == table_idx && ob < table_idx {
                    (b, a)
                } else {
                    return Err(SqlError::bind(
                        "ON condition must relate the joined table to an earlier one",
                    ));
                };
                binder.tables[table_idx]
                    .on_conditions
                    .push((prefix_col, new_col));
                continue;
            }
            let owners = binder.tables_of(&lowered);
            if owners.as_slice() == [table_idx] {
                let t = &mut binder.tables[table_idx];
                let rebased = rebase(&lowered, t.offset);
                t.pushdown = Some(match t.pushdown.take() {
                    Some(existing) => Expr::and(existing, rebased),
                    None => rebased,
                });
                continue;
            }
            return Err(SqlError::bind(
                "ON clauses must be conjunctions of column equalities \
                 (plus filters on the joined table)",
            ));
        }
        if binder.tables[table_idx].on_conditions.is_empty() {
            return Err(SqlError::bind("JOIN ... ON needs at least one equality"));
        }
    }

    // --- 3. Classify WHERE conjuncts. ---
    let mut residual: Vec<Expr> = Vec::new();
    let mut where_edges: Vec<(usize, usize)> = Vec::new();
    let mut semi_joins: Vec<SemiJoinSpec> = Vec::new();
    if let Some(w) = &stmt.where_clause {
        if w.contains_aggregate() {
            return Err(SqlError::bind("aggregates are not allowed in WHERE"));
        }
        let mut conjuncts = Vec::new();
        split_conjuncts_ast(w, &mut conjuncts);
        for c in conjuncts {
            match &c {
                ExprAst::Exists { query, negated } => {
                    semi_joins.push(bind_exists(&binder, query, *negated)?);
                    continue;
                }
                ExprAst::InSelect {
                    expr,
                    query,
                    negated,
                } => {
                    semi_joins.push(bind_in_select(&binder, expr, query, *negated)?);
                    continue;
                }
                _ => {}
            }
            let lowered = binder.lower(&c)?;
            if binder.derived.is_some() {
                // Derived-table FROM: no pushdown bookkeeping, just filter.
                residual.push(lowered);
                continue;
            }
            if let Some(edge) = as_equi_edge(&binder, &lowered) {
                where_edges.push(edge);
                continue;
            }
            let owners = binder.tables_of(&lowered);
            match owners.as_slice() {
                [one] if !binder.tables[*one].nullable_side => {
                    let t = &mut binder.tables[*one];
                    let rebased = rebase(&lowered, t.offset);
                    t.pushdown = Some(match t.pushdown.take() {
                        Some(existing) => Expr::and(existing, rebased),
                        None => rebased,
                    });
                }
                _ => residual.push(lowered),
            }
        }
    }

    // --- 4. Build the left-deep join tree. ---
    let mut plan = match derived_plan {
        Some(inner) => inner,
        None => {
            let mut plan = LogicalPlan::Scan {
                table: binder.tables[0].table,
                filter: binder.tables[0].pushdown.clone(),
            };
            for i in 1..binder.tables.len() {
                let t = &binder.tables[i];
                let scan = LogicalPlan::Scan {
                    table: t.table,
                    filter: t.pushdown.clone(),
                };
                // Conditions: the table's ON edges plus any WHERE edge
                // touching it and the prefix.
                let mut conditions: Vec<JoinCondition> = t
                    .on_conditions
                    .iter()
                    .map(|&(p, n)| JoinCondition {
                        left_col: p,
                        right_col: n - t.offset,
                    })
                    .collect();
                for &(a, b) in &where_edges {
                    let (oa, ob) = (binder.owner_of(a), binder.owner_of(b));
                    let (prefix_col, new_col) = if ob == i && oa < i {
                        (a, b)
                    } else if oa == i && ob < i {
                        (b, a)
                    } else {
                        continue;
                    };
                    if t.join_kind == JoinKind::Left {
                        return Err(SqlError::bind(
                            "LEFT JOIN conditions must be written in the ON clause",
                        ));
                    }
                    conditions.push(JoinCondition {
                        left_col: prefix_col,
                        right_col: new_col - t.offset,
                    });
                }
                if conditions.is_empty() {
                    return Err(SqlError::bind(format!(
                        "no join condition relates table {:?} to the preceding tables \
                         (cross joins are not supported)",
                        t.alias
                    )));
                }
                let join_type = match t.join_kind {
                    JoinKind::Inner => JoinType::Inner,
                    JoinKind::Left => JoinType::Left,
                };
                plan = plan.join_as(scan, conditions, join_type);
            }
            plan
        }
    };

    // Semi/anti joins from EXISTS / IN (SELECT ...): they only filter the
    // left side, so appending them after the inner-join tree is sound.
    for s in semi_joins {
        plan = plan.join_as(s.plan, s.conditions, s.join_type);
    }

    if !residual.is_empty() {
        plan = plan.filter(Expr::and_all(residual));
    }

    // --- 5. Aggregation. ---
    let has_aggs = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => false,
    }) || stmt
        .having
        .as_ref()
        .is_some_and(ExprAst::contains_aggregate)
        || !stmt.group_by.is_empty();

    let mut output_names: Vec<String> = Vec::new();
    if has_aggs {
        if stmt.items.iter().any(|i| {
            matches!(
                i,
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)
            )
        }) {
            return Err(SqlError::bind("SELECT * cannot be combined with GROUP BY"));
        }
        // Group columns must be plain columns.
        let group_cols: Vec<usize> = stmt
            .group_by
            .iter()
            .map(|g| match g {
                ExprAst::Column { qualifier, name } => {
                    binder.resolve_column(qualifier.as_deref(), name)
                }
                other => Err(SqlError::bind(format!(
                    "GROUP BY supports plain columns only, got {other:?}"
                ))),
            })
            .collect::<Result<_, _>>()?;

        // Collect aggregates across SELECT, HAVING and ORDER BY.
        let mut agg_asts: Vec<ExprAst> = Vec::new();
        for item in &stmt.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggs(expr, &mut agg_asts);
            }
        }
        if let Some(h) = &stmt.having {
            collect_aggs(h, &mut agg_asts);
        }
        for k in &stmt.order_by {
            collect_aggs(&k.expr, &mut agg_asts);
        }
        let agg_exprs: Vec<AggExpr> = agg_asts
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let ExprAst::Agg { func, arg } = a else {
                    unreachable!("collect_aggs only yields Agg nodes")
                };
                let f = agg_func(func, arg.is_some())?;
                let lowered_arg = arg.as_ref().map(|e| binder.lower(e)).transpose()?;
                Ok(AggExpr {
                    func: f,
                    arg: lowered_arg,
                    name: format!("{}_{i}", func.to_ascii_lowercase()),
                })
            })
            .collect::<Result<_, SqlError>>()?;

        plan = plan.aggregate(group_cols.clone(), agg_exprs);

        if let Some(h) = &stmt.having {
            let pred = lower_over_agg(&binder, h, &group_cols, &agg_asts)?;
            plan = plan.filter(pred);
        }

        // Projection over the aggregate output.
        let mut proj: Vec<(Expr, String)> = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                unreachable!("wildcards rejected above")
            };
            let lowered = lower_over_agg(&binder, expr, &group_cols, &agg_asts)?;
            let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
            output_names.push(name.clone());
            proj.push((lowered, name));
        }
        plan = plan.project(proj);
    } else {
        // Plain projection.
        let wildcard_only = stmt.items.len() == 1 && matches!(stmt.items[0], SelectItem::Wildcard);
        if wildcard_only {
            if let Some((_, names)) = &binder.derived {
                output_names.extend(names.iter().cloned());
            } else {
                for t in &binder.tables {
                    let schema = &db.table(t.table).schema;
                    for f in schema.fields() {
                        output_names.push(f.name.clone());
                    }
                }
            }
        } else {
            let mut proj: Vec<(Expr, String)> = Vec::new();
            for (i, item) in stmt.items.iter().enumerate() {
                match item {
                    SelectItem::Wildcard => {
                        return Err(SqlError::bind(
                            "`*` mixed with other select items is not supported",
                        ))
                    }
                    SelectItem::QualifiedWildcard(q) => {
                        if let Some((alias, names)) = &binder.derived {
                            if q != alias {
                                return Err(SqlError::bind(format!(
                                    "unknown table alias {q:?}"
                                )));
                            }
                            for (i, n) in names.iter().enumerate() {
                                output_names.push(n.clone());
                                proj.push((Expr::col(i), n.clone()));
                            }
                            continue;
                        }
                        let t = binder
                            .tables
                            .iter()
                            .find(|t| &t.alias == q)
                            .ok_or_else(|| {
                                SqlError::bind(format!("unknown table alias {q:?}"))
                            })?;
                        let schema = &db.table(t.table).schema;
                        for (i, f) in schema.fields().iter().enumerate() {
                            output_names.push(f.name.clone());
                            proj.push((Expr::col(t.offset + i), f.name.clone()));
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let lowered = binder.lower(expr)?;
                        let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
                        output_names.push(name.clone());
                        proj.push((lowered, name));
                    }
                }
            }
            plan = plan.project(proj);
        }
    }

    // --- 6. ORDER BY (over the output schema) and LIMIT. ---
    if !stmt.order_by.is_empty() {
        let keys = stmt
            .order_by
            .iter()
            .map(|k| resolve_order_key(k, &output_names, &stmt.items))
            .collect::<Result<Vec<SortKey>, _>>()?;
        plan = plan.sort(keys);
    }
    if let Some(n) = stmt.limit {
        plan = plan.limit(n);
    }
    Ok((plan, output_names))
}

/// Lowers a correlated `EXISTS (SELECT ... FROM one_table WHERE ...)`
/// conjunct to a semi (or anti) join against the outer plan. Inner-only
/// conjuncts become the scan's filter; equalities between an inner and an
/// outer column become the join conditions.
fn bind_exists(
    outer: &Binder<'_>,
    query: &SelectStmt,
    negated: bool,
) -> Result<SemiJoinSpec, SqlError> {
    let FromItem::Table(tref) = &query.from else {
        return Err(SqlError::bind(
            "EXISTS subqueries must select from a single base table",
        ));
    };
    if !query.joins.is_empty() || !query.group_by.is_empty() || query.having.is_some() {
        return Err(SqlError::bind(
            "EXISTS subqueries support a single table with a WHERE clause only",
        ));
    }
    let table = outer
        .db
        .table_id(&tref.table)
        .ok_or_else(|| SqlError::bind(format!("unknown table {:?}", tref.table)))?;
    let arity = outer.db.table(table).schema.len();
    let inner = Binder {
        db: outer.db,
        tables: vec![BoundTable {
            alias: tref.alias.clone(),
            table,
            offset: 0,
            arity,
            nullable_side: false,
            join_kind: JoinKind::Inner,
            on_conditions: Vec::new(),
            pushdown: None,
        }],
        derived: None,
    };
    let mut pushdown: Option<Expr> = None;
    let mut conditions: Vec<JoinCondition> = Vec::new();
    if let Some(w) = &query.where_clause {
        let mut conjuncts = Vec::new();
        split_conjuncts_ast(w, &mut conjuncts);
        for c in conjuncts {
            // Inner-only conjunct?
            if let Ok(lowered) = inner.lower(&c) {
                pushdown = Some(match pushdown.take() {
                    Some(existing) => Expr::and(existing, lowered),
                    None => lowered,
                });
                continue;
            }
            // Correlation: an equality between an inner and an outer column.
            let ExprAst::Binary { op, lhs, rhs } = &c else {
                return Err(SqlError::bind(
                    "unsupported correlated predicate in EXISTS (need inner = outer)",
                ));
            };
            let col = |side: &ExprAst| -> Option<(Option<String>, String)> {
                match side {
                    ExprAst::Column { qualifier, name } => {
                        Some((qualifier.clone(), name.clone()))
                    }
                    _ => None,
                }
            };
            let pair = (op.as_str(), col(lhs), col(rhs));
            let ("=", Some((lq, ln)), Some((rq, rn))) = pair else {
                return Err(SqlError::bind(
                    "correlated EXISTS predicates must be column equalities",
                ));
            };
            let sides = [(lq, ln), (rq, rn)];
            let mut resolved: Option<(usize, usize)> = None; // (outer global, inner local)
            for (a, b) in [(0, 1), (1, 0)] {
                let (aq, an) = &sides[a];
                let (bq, bn) = &sides[b];
                if let (Ok(o), Ok(i)) = (
                    outer.resolve_column(aq.as_deref(), an),
                    inner.resolve_column(bq.as_deref(), bn),
                ) {
                    resolved = Some((o, i));
                    break;
                }
            }
            let Some((outer_col, inner_col)) = resolved else {
                return Err(SqlError::bind(format!(
                    "cannot resolve correlated EXISTS equality {} = {}",
                    sides[0].1, sides[1].1
                )));
            };
            conditions.push(JoinCondition {
                left_col: outer_col,
                right_col: inner_col,
            });
        }
    }
    if conditions.is_empty() {
        return Err(SqlError::bind(
            "EXISTS subqueries must be correlated with the outer query",
        ));
    }
    Ok(SemiJoinSpec {
        plan: LogicalPlan::Scan {
            table,
            filter: pushdown,
        },
        conditions,
        join_type: if negated {
            JoinType::Anti
        } else {
            JoinType::Semi
        },
    })
}

/// Lowers an uncorrelated `expr IN (SELECT ...)` conjunct to a semi (or
/// anti) join against the subquery's single output column.
fn bind_in_select(
    outer: &Binder<'_>,
    expr: &ExprAst,
    query: &SelectStmt,
    negated: bool,
) -> Result<SemiJoinSpec, SqlError> {
    let lowered = outer.lower(expr)?;
    let Expr::Column(outer_col) = lowered else {
        return Err(SqlError::bind(
            "the IN (SELECT ...) operand must be a plain column",
        ));
    };
    let (inner_plan, names) = bind_with_names(query, outer.db)?;
    if names.len() != 1 {
        return Err(SqlError::bind(format!(
            "IN subqueries must return exactly one column, got {}",
            names.len()
        )));
    }
    Ok(SemiJoinSpec {
        plan: inner_plan,
        conditions: vec![JoinCondition {
            left_col: outer_col,
            right_col: 0,
        }],
        join_type: if negated {
            JoinType::Anti
        } else {
            JoinType::Semi
        },
    })
}

/// Rebases global column indexes to table-local ones (subtract `offset`).
fn rebase(e: &Expr, offset: usize) -> Expr {
    if offset == 0 {
        return e.clone();
    }
    // shift_columns only adds; emulate subtraction by rebuilding through a
    // map over referenced columns. Since Expr has no generic visitor, we
    // reuse shift_columns' structure via a local recursion.
    fn go(e: &Expr, offset: usize) -> Expr {
        match e {
            Expr::Column(i) => Expr::Column(i - offset),
            other => {
                // Rebuild one level down using shift_columns(0) as a clone
                // then recurse manually for each variant.
                match other {
                    Expr::Literal(d) => Expr::Literal(d.clone()),
                    Expr::Cmp { op, lhs, rhs } => Expr::cmp(*op, go(lhs, offset), go(rhs, offset)),
                    Expr::And(l, r) => Expr::and(go(l, offset), go(r, offset)),
                    Expr::Or(l, r) => Expr::or(go(l, offset), go(r, offset)),
                    Expr::Not(x) => Expr::not(go(x, offset)),
                    Expr::Arith { op, lhs, rhs } => {
                        Expr::arith(*op, go(lhs, offset), go(rhs, offset))
                    }
                    Expr::Like {
                        expr,
                        pattern,
                        negated,
                    } => Expr::Like {
                        expr: Box::new(go(expr, offset)),
                        pattern: pattern.clone(),
                        negated: *negated,
                    },
                    Expr::InList { expr, list } => Expr::InList {
                        expr: Box::new(go(expr, offset)),
                        list: list.clone(),
                    },
                    Expr::IsNull { expr, negated } => Expr::IsNull {
                        expr: Box::new(go(expr, offset)),
                        negated: *negated,
                    },
                    Expr::Case {
                        branches,
                        else_expr,
                    } => Expr::Case {
                        branches: branches
                            .iter()
                            .map(|(c, v)| (go(c, offset), go(v, offset)))
                            .collect(),
                        else_expr: else_expr.as_ref().map(|x| Box::new(go(x, offset))),
                    },
                    Expr::Column(_) => unreachable!("handled above"),
                }
            }
        }
    }
    go(e, offset)
}

fn default_name(expr: &ExprAst, position: usize) -> String {
    match expr {
        ExprAst::Column { name, .. } => name.clone(),
        ExprAst::Agg { func, .. } => func.to_ascii_lowercase(),
        _ => format!("col{position}"),
    }
}

fn resolve_order_key(
    key: &OrderKey,
    output_names: &[String],
    items: &[SelectItem],
) -> Result<SortKey, SqlError> {
    let column = match &key.expr {
        // 1-based output position.
        ExprAst::Int(n) if *n >= 1 && (*n as usize) <= output_names.len() => *n as usize - 1,
        ExprAst::Int(n) => {
            return Err(SqlError::bind(format!(
                "ORDER BY position {n} out of range (1..={})",
                output_names.len()
            )))
        }
        // Output name / alias.
        ExprAst::Column {
            qualifier: None,
            name,
        } if output_names.contains(name) => output_names
            .iter()
            .position(|n| n == name)
            .expect("contains"),
        // An expression textually matching a select item.
        other => items
            .iter()
            .position(|i| matches!(i, SelectItem::Expr { expr, .. } if expr == other))
            .ok_or_else(|| {
                SqlError::bind(
                    "ORDER BY keys must be output columns, aliases, positions, \
                     or select-list expressions",
                )
            })?,
    };
    Ok(SortKey {
        column,
        descending: key.descending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use dbvirt_engine::{run_plan, CpuCosts};
    use dbvirt_optimizer::{plan_query, OptimizerParams};
    use dbvirt_storage::{BufferPool, DataType, Field, Schema, Tuple};

    /// `users(id, name, city_id)` and `cities(id, city)`.
    fn db() -> Database {
        let mut db = Database::new();
        let users = db.create_table(
            "users",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("name", DataType::Str),
                Field::new("city_id", DataType::Int),
                Field::new("age", DataType::Int),
            ]),
        );
        db.insert_rows(
            users,
            (0..500).map(|i| {
                Tuple::new(vec![
                    Datum::Int(i),
                    Datum::str(format!("user{i}")),
                    Datum::Int(i % 10),
                    Datum::Int(18 + (i % 60)),
                ])
            }),
        )
        .unwrap();
        let cities = db.create_table(
            "cities",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("city", DataType::Str),
            ]),
        );
        db.insert_rows(
            cities,
            (0..10).map(|i| Tuple::new(vec![Datum::Int(i), Datum::str(format!("city{i}"))])),
        )
        .unwrap();
        db.analyze_all().unwrap();
        db
    }

    fn run(sql: &str) -> (Vec<Tuple>, Vec<String>) {
        let mut database = db();
        let logical = parse_query(sql, &database).unwrap();
        let planned = plan_query(&database, &logical, &OptimizerParams::default()).unwrap();
        let schema = planned.physical.output_schema(&database);
        let mut pool = BufferPool::new(256);
        let out = run_plan(
            &mut database,
            &mut pool,
            &planned.physical,
            1 << 20,
            CpuCosts::default(),
        )
        .unwrap();
        let names = schema.fields().iter().map(|f| f.name.clone()).collect();
        (out.rows, names)
    }

    #[test]
    fn select_star() {
        let (rows, _) = run("SELECT * FROM users");
        assert_eq!(rows.len(), 500);
        assert_eq!(rows[0].arity(), 4);
    }

    #[test]
    fn projection_filter_and_order() {
        let (rows, names) = run(
            "SELECT name, age + 1 AS next_age FROM users WHERE age >= 70 ORDER BY next_age DESC, name LIMIT 5",
        );
        assert_eq!(names, vec!["name", "next_age"]);
        assert_eq!(rows.len(), 5);
        let ages: Vec<i64> = rows.iter().map(|r| r.get(1).as_int().unwrap()).collect();
        assert!(ages.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(ages[0], 78);
    }

    #[test]
    fn join_with_on_and_where_pushdown() {
        let (rows, _) = run(
            "SELECT u.name, c.city FROM users u JOIN cities c ON u.city_id = c.id \
             WHERE c.city = 'city3' AND u.age < 30",
        );
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r.get(1).as_str(), Some("city3"));
        }
    }

    #[test]
    fn comma_join_with_where_condition() {
        let (rows, _) =
            run("SELECT u.id FROM users u, cities c WHERE u.city_id = c.id AND c.id = 0");
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn group_by_having_and_aggregates() {
        let (rows, names) = run(
            "SELECT city_id, COUNT(*) AS n, AVG(age) AS avg_age FROM users \
             GROUP BY city_id HAVING COUNT(*) >= 50 ORDER BY city_id",
        );
        assert_eq!(names, vec!["city_id", "n", "avg_age"]);
        assert_eq!(rows.len(), 10, "all groups have exactly 50 members");
        for r in &rows {
            assert_eq!(r.get(1).as_int(), Some(50));
        }
    }

    #[test]
    fn global_aggregate_with_arithmetic_over_aggs() {
        let (rows, _) = run(
            "SELECT 100 * SUM(age) / COUNT(*) AS centi_avg FROM users WHERE age BETWEEN 20 AND 40",
        );
        assert_eq!(rows.len(), 1);
        let v = rows[0].get(0).as_float().unwrap();
        assert!(v > 2000.0 && v < 4100.0, "centi-average {v}");
    }

    #[test]
    fn left_join_preserves_unmatched() {
        let mut database = db();
        // Add a user with an unknown city.
        let users = database.table_id("users").unwrap();
        database
            .insert_rows(
                users,
                [Tuple::new(vec![
                    Datum::Int(999),
                    Datum::str("orphan"),
                    Datum::Int(77),
                    Datum::Int(30),
                ])],
            )
            .unwrap();
        database.analyze_all().unwrap();
        let logical = parse_query(
            "SELECT u.name, c.city FROM users u LEFT JOIN cities c ON u.city_id = c.id",
            &database,
        )
        .unwrap();
        let planned = plan_query(&database, &logical, &OptimizerParams::default()).unwrap();
        let mut pool = BufferPool::new(256);
        let out = run_plan(
            &mut database,
            &mut pool,
            &planned.physical,
            1 << 20,
            CpuCosts::default(),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 501);
        let orphan = out
            .rows
            .iter()
            .find(|r| r.get(0).as_str() == Some("orphan"))
            .unwrap();
        assert!(orphan.get(1).is_null());
    }

    #[test]
    fn like_in_between_and_not() {
        let (rows, _) = run(
            "SELECT id FROM users WHERE name LIKE 'user1%' AND id IN (1, 10, 11, 200) \
             AND NOT id = 200",
        );
        let ids: Vec<i64> = rows.iter().map(|r| r.get(0).as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 10, 11]);
    }

    #[test]
    fn qualified_star_expands() {
        let (rows, names) = run(
            "SELECT c.*, u.name FROM users u JOIN cities c ON u.city_id = c.id WHERE c.id = 0",
        );
        assert_eq!(names, vec!["id", "city", "name"]);
        assert_eq!(rows.len(), 50);
        for r in &rows {
            assert_eq!(r.get(1).as_str(), Some("city0"));
        }
    }

    #[test]
    fn case_expression_evaluates() {
        // Ages are 18 + (i % 60); >= 50 means i % 60 >= 32, i.e. 28 of
        // every 60 users across 8 full cycles (480 users), none in the
        // 20-user tail.
        let (rows, _) =
            run("SELECT SUM(CASE WHEN age >= 50 THEN 1 ELSE 0 END) AS n FROM users");
        assert_eq!(rows[0].get(0).as_int(), Some(224));
    }

    #[test]
    fn exists_becomes_semi_join() {
        // age > 70 means i % 60 in 53..=59, whose i % 10 is always 3..=9.
        let (rows, _) = run(
            "SELECT id FROM cities c WHERE EXISTS \
             (SELECT * FROM users u WHERE u.city_id = c.id AND u.age > 70) ORDER BY id",
        );
        let ids: Vec<i64> = rows.iter().map(|r| r.get(0).as_int().unwrap()).collect();
        assert_eq!(ids, vec![3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn not_exists_becomes_anti_join() {
        let (rows, _) = run(
            "SELECT id FROM cities c WHERE NOT EXISTS \
             (SELECT * FROM users u WHERE u.city_id = c.id AND u.age > 70) ORDER BY id",
        );
        let ids: Vec<i64> = rows.iter().map(|r| r.get(0).as_int().unwrap()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn in_select_becomes_semi_join() {
        let (rows, _) = run(
            "SELECT city FROM cities WHERE id IN \
             (SELECT city_id FROM users WHERE age > 70) ORDER BY city",
        );
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].get(0).as_str(), Some("city3"));
    }

    #[test]
    fn derived_table_as_sole_from() {
        let (rows, names) = run(
            "SELECT n, COUNT(*) AS cnt FROM \
             (SELECT city_id, COUNT(*) AS n FROM users GROUP BY city_id) d GROUP BY n",
        );
        assert_eq!(names, vec!["n", "cnt"]);
        assert_eq!(rows.len(), 1, "every city has exactly 50 users");
        assert_eq!(rows[0].get(0).as_int(), Some(50));
        assert_eq!(rows[0].get(1).as_int(), Some(10));
    }

    #[test]
    fn left_join_on_filter_pushes_to_right_side() {
        let (rows, _) = run(
            "SELECT u.name, c.city FROM users u \
             LEFT JOIN cities c ON u.city_id = c.id AND c.id < 3",
        );
        assert_eq!(rows.len(), 500, "left side preserved");
        let matched = rows.iter().filter(|r| !r.get(1).is_null()).count();
        assert_eq!(matched, 150, "only cities 0-2 match");
    }

    #[test]
    fn order_by_position() {
        let (rows, _) = run("SELECT id, age FROM users ORDER BY 2 DESC, 1 ASC LIMIT 3");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(1).as_int(), Some(77));
    }

    #[test]
    fn date_literals_bind() {
        let database = db();
        // No date column in this schema; just ensure the literal lowers.
        let err = parse_query(
            "SELECT id FROM users WHERE missing >= DATE '1994-01-01'",
            &database,
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Bind { .. }));
        assert_eq!(parse_date("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date("1992-01-01").unwrap(), 8035);
        assert!(parse_date("1992-13-01").is_err());
        assert!(parse_date("nope").is_err());
    }

    #[test]
    fn bind_errors() {
        let database = db();
        for (sql, needle) in [
            ("SELECT * FROM missing", "unknown table"),
            ("SELECT nope FROM users", "unknown column"),
            (
                "SELECT id FROM users u, cities u WHERE u.id = 0",
                "duplicate table alias",
            ),
            ("SELECT u.id FROM users u, cities c", "no join condition"),
            ("SELECT id FROM users GROUP BY id + 1", "plain columns"),
            (
                "SELECT name FROM users GROUP BY city_id",
                "must appear in GROUP BY",
            ),
            ("SELECT * FROM users GROUP BY city_id", "SELECT *"),
            ("SELECT id FROM users ORDER BY nope", "ORDER BY"),
            (
                "SELECT id FROM users WHERE COUNT(*) > 1",
                "aggregates are not allowed",
            ),
            (
                "SELECT u.id FROM users u LEFT JOIN cities c ON u.city_id = c.id WHERE u.id = c.id",
                "LEFT JOIN conditions",
            ),
        ] {
            let err = parse_query(sql, &database).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{sql:?} -> {err} (expected {needle:?})"
            );
        }
    }

    #[test]
    fn ambiguous_bare_column_is_rejected() {
        let database = db();
        let err = parse_query(
            "SELECT id FROM users u JOIN cities c ON u.city_id = c.id",
            &database,
        )
        .unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }
}
