//! The binder: names → catalog objects, AST → logical plan.
//!
//! Binding follows the textbook pipeline:
//!
//! 1. resolve the `FROM` tables and assign each a column-offset range in
//!    the (left-to-right) join output;
//! 2. classify `WHERE` conjuncts into per-table pushdown filters,
//!    equi-join conditions, and residual predicates (filters are *not*
//!    pushed below the nullable side of a `LEFT JOIN`, which would change
//!    the query's meaning);
//! 3. build the left-deep join tree, attach residual filters;
//! 4. lower `GROUP BY`/aggregates, `HAVING`, the projection, `ORDER BY`
//!    (by output name or 1-based position), and `LIMIT`.

use crate::ast::{ExprAst, JoinKind, OrderKey, SelectItem, SelectStmt};
use crate::SqlError;
use dbvirt_engine::{AggExpr, AggFunc, CmpOp, Database, Expr, JoinType, SortKey, TableId};
use dbvirt_optimizer::{JoinCondition, LogicalPlan};
use dbvirt_storage::Datum;

/// One resolved `FROM` entry.
struct BoundTable {
    alias: String,
    table: TableId,
    /// Global column offset of this table in the join output.
    offset: usize,
    arity: usize,
    /// True if this table is the nullable side of a LEFT JOIN (no filter
    /// pushdown, no join-condition hoisting past it).
    nullable_side: bool,
    join_kind: JoinKind,
    /// Bound equality conditions from this table's ON clause.
    on_conditions: Vec<(usize, usize)>, // (prefix global col, this-table global col)
    /// Pushdown filter (table-local column indexes).
    pushdown: Option<Expr>,
}

/// Parses `YYYY-MM-DD` into days since the Unix epoch.
fn parse_date(s: &str) -> Result<i32, SqlError> {
    let parts: Vec<&str> = s.split('-').collect();
    let bad = || SqlError::bind(format!("bad date literal {s:?} (expected YYYY-MM-DD)"));
    if parts.len() != 3 {
        return Err(bad());
    }
    let year: i32 = parts[0].parse().map_err(|_| bad())?;
    let month: u32 = parts[1].parse().map_err(|_| bad())?;
    let day: u32 = parts[2].parse().map_err(|_| bad())?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(bad());
    }
    // Howard Hinnant's days_from_civil.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let m = month as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Ok((era as i64 * 146_097 + doe - 719_468) as i32)
}

struct Binder<'a> {
    db: &'a Database,
    tables: Vec<BoundTable>,
}

impl<'a> Binder<'a> {
    /// Resolves `[qualifier.]name` to a global column index.
    fn resolve_column(&self, qualifier: Option<&str>, name: &str) -> Result<usize, SqlError> {
        let mut found: Option<usize> = None;
        for t in &self.tables {
            if let Some(q) = qualifier {
                if t.alias != q {
                    continue;
                }
            }
            let schema = &self.db.table(t.table).schema;
            if let Some(local) = schema.index_of(name) {
                if found.is_some() {
                    return Err(SqlError::bind(format!("ambiguous column {name:?}")));
                }
                found = Some(t.offset + local);
                if qualifier.is_some() {
                    break;
                }
            }
        }
        found.ok_or_else(|| {
            let q = qualifier.map(|q| format!("{q}.")).unwrap_or_default();
            SqlError::bind(format!("unknown column {q}{name}"))
        })
    }

    /// Lowers a scalar AST expression against the full join schema.
    /// Aggregates are rejected here (they are handled by the aggregation
    /// path).
    fn lower(&self, ast: &ExprAst) -> Result<Expr, SqlError> {
        match ast {
            ExprAst::Column { qualifier, name } => {
                Ok(Expr::col(self.resolve_column(qualifier.as_deref(), name)?))
            }
            ExprAst::Int(v) => Ok(Expr::int(*v)),
            ExprAst::Float(v) => Ok(Expr::float(*v)),
            ExprAst::Str(s) => Ok(Expr::str(s.clone())),
            ExprAst::Date(s) => Ok(Expr::date(parse_date(s)?)),
            ExprAst::Bool(b) => Ok(Expr::lit(Datum::Bool(*b))),
            ExprAst::Null => Ok(Expr::lit(Datum::Null)),
            ExprAst::Neg(e) => Ok(Expr::sub(Expr::int(0), self.lower(e)?)),
            ExprAst::Not(e) => Ok(Expr::not(self.lower(e)?)),
            ExprAst::Binary { op, lhs, rhs } => {
                let (l, r) = (self.lower(lhs)?, self.lower(rhs)?);
                Ok(match op.as_str() {
                    "AND" => Expr::and(l, r),
                    "OR" => Expr::or(l, r),
                    "=" => Expr::eq(l, r),
                    "<>" => Expr::cmp(CmpOp::Ne, l, r),
                    "<" => Expr::lt(l, r),
                    "<=" => Expr::le(l, r),
                    ">" => Expr::gt(l, r),
                    ">=" => Expr::ge(l, r),
                    "+" => Expr::add(l, r),
                    "-" => Expr::sub(l, r),
                    "*" => Expr::mul(l, r),
                    "/" => Expr::arith(dbvirt_engine::BinOp::Div, l, r),
                    other => return Err(SqlError::bind(format!("unknown operator {other}"))),
                })
            }
            ExprAst::Like {
                expr,
                pattern,
                negated,
            } => {
                let e = self.lower(expr)?;
                Ok(if *negated {
                    Expr::not_like(e, pattern.clone())
                } else {
                    Expr::like(e, pattern.clone())
                })
            }
            ExprAst::InList {
                expr,
                list,
                negated,
            } => {
                let e = self.lower(expr)?;
                let items: Vec<Datum> = list
                    .iter()
                    .map(|item| match self.lower(item)? {
                        Expr::Literal(d) => Ok(d),
                        _ => Err(SqlError::bind("IN list items must be literals")),
                    })
                    .collect::<Result<_, _>>()?;
                let in_expr = Expr::in_list(e, items);
                Ok(if *negated {
                    Expr::not(in_expr)
                } else {
                    in_expr
                })
            }
            ExprAst::Between { expr, lo, hi } => {
                let e = self.lower(expr)?;
                let (lo, hi) = (self.lower(lo)?, self.lower(hi)?);
                Ok(Expr::and(Expr::ge(e.clone(), lo), Expr::le(e, hi)))
            }
            ExprAst::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.lower(expr)?),
                negated: *negated,
            }),
            ExprAst::Agg { .. } => Err(SqlError::bind(
                "aggregate used where a scalar expression is required",
            )),
        }
    }

    /// The table (index into `self.tables`) that owns global column `g`.
    fn owner_of(&self, g: usize) -> usize {
        self.tables
            .iter()
            .position(|t| g >= t.offset && g < t.offset + t.arity)
            .expect("global column out of range")
    }

    /// Tables referenced by a lowered expression.
    fn tables_of(&self, e: &Expr) -> Vec<usize> {
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        let mut out: Vec<usize> = cols.into_iter().map(|g| self.owner_of(g)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn split_conjuncts_ast(e: &ExprAst, out: &mut Vec<ExprAst>) {
    match e {
        ExprAst::Binary { op, lhs, rhs } if op == "AND" => {
            split_conjuncts_ast(lhs, out);
            split_conjuncts_ast(rhs, out);
        }
        other => out.push(other.clone()),
    }
}

/// An equality between two columns of different tables, as global indexes.
fn as_equi_edge(binder: &Binder<'_>, e: &Expr) -> Option<(usize, usize)> {
    if let Expr::Cmp {
        op: CmpOp::Eq,
        lhs,
        rhs,
    } = e
    {
        if let (Expr::Column(a), Expr::Column(b)) = (lhs.as_ref(), rhs.as_ref()) {
            if binder.owner_of(*a) != binder.owner_of(*b) {
                return Some((*a, *b));
            }
        }
    }
    None
}

fn agg_func(name: &str, has_arg: bool) -> Result<AggFunc, SqlError> {
    Ok(match (name, has_arg) {
        ("COUNT", false) => AggFunc::CountStar,
        ("COUNT", true) => AggFunc::Count,
        ("SUM", true) => AggFunc::Sum,
        ("AVG", true) => AggFunc::Avg,
        ("MIN", true) => AggFunc::Min,
        ("MAX", true) => AggFunc::Max,
        _ => return Err(SqlError::bind(format!("unsupported aggregate {name}"))),
    })
}

/// Collects every aggregate call in an AST expression.
fn collect_aggs(e: &ExprAst, out: &mut Vec<ExprAst>) {
    match e {
        ExprAst::Agg { .. }
            if !out.contains(e) => {
                out.push(e.clone());
            }
        ExprAst::Binary { lhs, rhs, .. } => {
            collect_aggs(lhs, out);
            collect_aggs(rhs, out);
        }
        ExprAst::Not(x) | ExprAst::Neg(x) => collect_aggs(x, out),
        ExprAst::Like { expr, .. } | ExprAst::IsNull { expr, .. } => collect_aggs(expr, out),
        ExprAst::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for item in list {
                collect_aggs(item, out);
            }
        }
        ExprAst::Between { expr, lo, hi } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        _ => {}
    }
}

/// Rewrites an AST expression over the aggregate output schema: group
/// columns map to their group position, aggregate calls to their slot.
fn lower_over_agg(
    binder: &Binder<'_>,
    e: &ExprAst,
    group_cols: &[usize],
    aggs: &[ExprAst],
) -> Result<Expr, SqlError> {
    if let Some(pos) = aggs.iter().position(|a| a == e) {
        return Ok(Expr::col(group_cols.len() + pos));
    }
    match e {
        ExprAst::Column { qualifier, name } => {
            let g = binder.resolve_column(qualifier.as_deref(), name)?;
            let pos = group_cols.iter().position(|&c| c == g).ok_or_else(|| {
                SqlError::bind(format!(
                    "column {name:?} must appear in GROUP BY or an aggregate"
                ))
            })?;
            Ok(Expr::col(pos))
        }
        ExprAst::Int(v) => Ok(Expr::int(*v)),
        ExprAst::Float(v) => Ok(Expr::float(*v)),
        ExprAst::Str(s) => Ok(Expr::str(s.clone())),
        ExprAst::Date(s) => Ok(Expr::date(parse_date(s)?)),
        ExprAst::Bool(b) => Ok(Expr::lit(Datum::Bool(*b))),
        ExprAst::Null => Ok(Expr::lit(Datum::Null)),
        ExprAst::Neg(x) => Ok(Expr::sub(
            Expr::int(0),
            lower_over_agg(binder, x, group_cols, aggs)?,
        )),
        ExprAst::Not(x) => Ok(Expr::not(lower_over_agg(binder, x, group_cols, aggs)?)),
        ExprAst::Binary { op, lhs, rhs } => {
            let l = lower_over_agg(binder, lhs, group_cols, aggs)?;
            let r = lower_over_agg(binder, rhs, group_cols, aggs)?;
            Ok(match op.as_str() {
                "AND" => Expr::and(l, r),
                "OR" => Expr::or(l, r),
                "=" => Expr::eq(l, r),
                "<>" => Expr::cmp(CmpOp::Ne, l, r),
                "<" => Expr::lt(l, r),
                "<=" => Expr::le(l, r),
                ">" => Expr::gt(l, r),
                ">=" => Expr::ge(l, r),
                "+" => Expr::add(l, r),
                "-" => Expr::sub(l, r),
                "*" => Expr::mul(l, r),
                "/" => Expr::arith(dbvirt_engine::BinOp::Div, l, r),
                other => return Err(SqlError::bind(format!("unknown operator {other}"))),
            })
        }
        other => Err(SqlError::bind(format!(
            "unsupported expression over aggregate output: {other:?}"
        ))),
    }
}

/// Binds a parsed statement against the catalog, producing a logical plan.
pub fn bind(stmt: &SelectStmt, db: &Database) -> Result<LogicalPlan, SqlError> {
    // --- 1. Resolve FROM tables and offsets. ---
    let mut binder = Binder {
        db,
        tables: Vec::new(),
    };
    let mut offset = 0usize;
    let mut add_table = |binder: &mut Binder<'_>,
                         name: &str,
                         alias: &str,
                         kind: JoinKind|
     -> Result<(), SqlError> {
        let table = db
            .table_id(name)
            .ok_or_else(|| SqlError::bind(format!("unknown table {name:?}")))?;
        if binder.tables.iter().any(|t| t.alias == alias) {
            return Err(SqlError::bind(format!("duplicate table alias {alias:?}")));
        }
        let arity = db.table(table).schema.len();
        binder.tables.push(BoundTable {
            alias: alias.to_string(),
            table,
            offset,
            arity,
            nullable_side: kind == JoinKind::Left,
            join_kind: kind,
            on_conditions: Vec::new(),
            pushdown: None,
        });
        offset += arity;
        Ok(())
    };
    add_table(
        &mut binder,
        &stmt.from.table,
        &stmt.from.alias,
        JoinKind::Inner,
    )?;
    for j in &stmt.joins {
        add_table(&mut binder, &j.table.table, &j.table.alias, j.kind)?;
    }

    // --- 2. Bind ON clauses (each may only reference its prefix). ---
    for (i, j) in stmt.joins.iter().enumerate() {
        let table_idx = i + 1;
        let Some(on) = &j.on else { continue };
        let mut conjuncts = Vec::new();
        split_conjuncts_ast(on, &mut conjuncts);
        for c in conjuncts {
            let lowered = binder.lower(&c)?;
            let Some((a, b)) = as_equi_edge(&binder, &lowered) else {
                return Err(SqlError::bind(
                    "ON clauses must be conjunctions of column equalities",
                ));
            };
            let (oa, ob) = (binder.owner_of(a), binder.owner_of(b));
            let (prefix_col, new_col) = if ob == table_idx && oa < table_idx {
                (a, b)
            } else if oa == table_idx && ob < table_idx {
                (b, a)
            } else {
                return Err(SqlError::bind(
                    "ON condition must relate the joined table to an earlier one",
                ));
            };
            binder.tables[table_idx]
                .on_conditions
                .push((prefix_col, new_col));
        }
        if binder.tables[table_idx].on_conditions.is_empty() {
            return Err(SqlError::bind("JOIN ... ON needs at least one equality"));
        }
    }

    // --- 3. Classify WHERE conjuncts. ---
    let mut residual: Vec<Expr> = Vec::new();
    let mut where_edges: Vec<(usize, usize)> = Vec::new();
    if let Some(w) = &stmt.where_clause {
        if w.contains_aggregate() {
            return Err(SqlError::bind("aggregates are not allowed in WHERE"));
        }
        let mut conjuncts = Vec::new();
        split_conjuncts_ast(w, &mut conjuncts);
        for c in conjuncts {
            let lowered = binder.lower(&c)?;
            if let Some(edge) = as_equi_edge(&binder, &lowered) {
                where_edges.push(edge);
                continue;
            }
            let owners = binder.tables_of(&lowered);
            match owners.as_slice() {
                [one] if !binder.tables[*one].nullable_side => {
                    let t = &mut binder.tables[*one];
                    let local = lowered.shift_columns(0); // clone
                                                          // Rebase global indexes to table-local ones.
                    let rebased = rebase(&local, t.offset);
                    t.pushdown = Some(match t.pushdown.take() {
                        Some(existing) => Expr::and(existing, rebased),
                        None => rebased,
                    });
                }
                _ => residual.push(lowered),
            }
        }
    }

    // --- 4. Build the left-deep join tree. ---
    let mut plan = LogicalPlan::Scan {
        table: binder.tables[0].table,
        filter: binder.tables[0].pushdown.clone(),
    };
    let mut prefix_width = binder.tables[0].arity;
    for i in 1..binder.tables.len() {
        let t = &binder.tables[i];
        let scan = LogicalPlan::Scan {
            table: t.table,
            filter: t.pushdown.clone(),
        };
        // Conditions: the table's ON edges plus any WHERE edge touching it
        // and the prefix.
        let mut conditions: Vec<JoinCondition> = t
            .on_conditions
            .iter()
            .map(|&(p, n)| JoinCondition {
                left_col: p,
                right_col: n - t.offset,
            })
            .collect();
        for &(a, b) in &where_edges {
            let (oa, ob) = (binder.owner_of(a), binder.owner_of(b));
            let (prefix_col, new_col) = if ob == i && oa < i {
                (a, b)
            } else if oa == i && ob < i {
                (b, a)
            } else {
                continue;
            };
            if t.join_kind == JoinKind::Left {
                return Err(SqlError::bind(
                    "LEFT JOIN conditions must be written in the ON clause",
                ));
            }
            conditions.push(JoinCondition {
                left_col: prefix_col,
                right_col: new_col - t.offset,
            });
        }
        if conditions.is_empty() {
            return Err(SqlError::bind(format!(
                "no join condition relates table {:?} to the preceding tables \
                 (cross joins are not supported)",
                t.alias
            )));
        }
        let join_type = match t.join_kind {
            JoinKind::Inner => JoinType::Inner,
            JoinKind::Left => JoinType::Left,
        };
        plan = plan.join_as(scan, conditions, join_type);
        prefix_width += t.arity;
    }
    let _ = prefix_width;

    if !residual.is_empty() {
        plan = plan.filter(Expr::and_all(residual));
    }

    // --- 5. Aggregation. ---
    let has_aggs = stmt.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        SelectItem::Wildcard => false,
    }) || stmt
        .having
        .as_ref()
        .is_some_and(ExprAst::contains_aggregate)
        || !stmt.group_by.is_empty();

    let mut output_names: Vec<String> = Vec::new();
    if has_aggs {
        if stmt.items.iter().any(|i| matches!(i, SelectItem::Wildcard)) {
            return Err(SqlError::bind("SELECT * cannot be combined with GROUP BY"));
        }
        // Group columns must be plain columns.
        let group_cols: Vec<usize> = stmt
            .group_by
            .iter()
            .map(|g| match g {
                ExprAst::Column { qualifier, name } => {
                    binder.resolve_column(qualifier.as_deref(), name)
                }
                other => Err(SqlError::bind(format!(
                    "GROUP BY supports plain columns only, got {other:?}"
                ))),
            })
            .collect::<Result<_, _>>()?;

        // Collect aggregates across SELECT, HAVING and ORDER BY.
        let mut agg_asts: Vec<ExprAst> = Vec::new();
        for item in &stmt.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggs(expr, &mut agg_asts);
            }
        }
        if let Some(h) = &stmt.having {
            collect_aggs(h, &mut agg_asts);
        }
        for k in &stmt.order_by {
            collect_aggs(&k.expr, &mut agg_asts);
        }
        let agg_exprs: Vec<AggExpr> = agg_asts
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let ExprAst::Agg { func, arg } = a else {
                    unreachable!("collect_aggs only yields Agg nodes")
                };
                let f = agg_func(func, arg.is_some())?;
                let lowered_arg = arg.as_ref().map(|e| binder.lower(e)).transpose()?;
                Ok(AggExpr {
                    func: f,
                    arg: lowered_arg,
                    name: format!("{}_{i}", func.to_ascii_lowercase()),
                })
            })
            .collect::<Result<_, SqlError>>()?;

        plan = plan.aggregate(group_cols.clone(), agg_exprs);

        if let Some(h) = &stmt.having {
            let pred = lower_over_agg(&binder, h, &group_cols, &agg_asts)?;
            plan = plan.filter(pred);
        }

        // Projection over the aggregate output.
        let mut proj: Vec<(Expr, String)> = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                unreachable!("wildcard rejected above")
            };
            let lowered = lower_over_agg(&binder, expr, &group_cols, &agg_asts)?;
            let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
            output_names.push(name.clone());
            proj.push((lowered, name));
        }
        plan = plan.project(proj);
    } else {
        // Plain projection.
        let wildcard_only = stmt.items.len() == 1 && matches!(stmt.items[0], SelectItem::Wildcard);
        if wildcard_only {
            for t in &binder.tables {
                let schema = &db.table(t.table).schema;
                for f in schema.fields() {
                    output_names.push(f.name.clone());
                }
            }
        } else {
            let mut proj: Vec<(Expr, String)> = Vec::new();
            for (i, item) in stmt.items.iter().enumerate() {
                match item {
                    SelectItem::Wildcard => {
                        return Err(SqlError::bind(
                            "`*` mixed with other select items is not supported",
                        ))
                    }
                    SelectItem::Expr { expr, alias } => {
                        let lowered = binder.lower(expr)?;
                        let name = alias.clone().unwrap_or_else(|| default_name(expr, i));
                        output_names.push(name.clone());
                        proj.push((lowered, name));
                    }
                }
            }
            plan = plan.project(proj);
        }
    }

    // --- 6. ORDER BY (over the output schema) and LIMIT. ---
    if !stmt.order_by.is_empty() {
        let keys = stmt
            .order_by
            .iter()
            .map(|k| resolve_order_key(k, &output_names, &stmt.items))
            .collect::<Result<Vec<SortKey>, _>>()?;
        plan = plan.sort(keys);
    }
    if let Some(n) = stmt.limit {
        plan = plan.limit(n);
    }
    Ok(plan)
}

/// Rebases global column indexes to table-local ones (subtract `offset`).
fn rebase(e: &Expr, offset: usize) -> Expr {
    if offset == 0 {
        return e.clone();
    }
    // shift_columns only adds; emulate subtraction by rebuilding through a
    // map over referenced columns. Since Expr has no generic visitor, we
    // reuse shift_columns' structure via a local recursion.
    fn go(e: &Expr, offset: usize) -> Expr {
        match e {
            Expr::Column(i) => Expr::Column(i - offset),
            other => {
                // Rebuild one level down using shift_columns(0) as a clone
                // then recurse manually for each variant.
                match other {
                    Expr::Literal(d) => Expr::Literal(d.clone()),
                    Expr::Cmp { op, lhs, rhs } => Expr::cmp(*op, go(lhs, offset), go(rhs, offset)),
                    Expr::And(l, r) => Expr::and(go(l, offset), go(r, offset)),
                    Expr::Or(l, r) => Expr::or(go(l, offset), go(r, offset)),
                    Expr::Not(x) => Expr::not(go(x, offset)),
                    Expr::Arith { op, lhs, rhs } => {
                        Expr::arith(*op, go(lhs, offset), go(rhs, offset))
                    }
                    Expr::Like {
                        expr,
                        pattern,
                        negated,
                    } => Expr::Like {
                        expr: Box::new(go(expr, offset)),
                        pattern: pattern.clone(),
                        negated: *negated,
                    },
                    Expr::InList { expr, list } => Expr::InList {
                        expr: Box::new(go(expr, offset)),
                        list: list.clone(),
                    },
                    Expr::IsNull { expr, negated } => Expr::IsNull {
                        expr: Box::new(go(expr, offset)),
                        negated: *negated,
                    },
                    Expr::Case {
                        branches,
                        else_expr,
                    } => Expr::Case {
                        branches: branches
                            .iter()
                            .map(|(c, v)| (go(c, offset), go(v, offset)))
                            .collect(),
                        else_expr: else_expr.as_ref().map(|x| Box::new(go(x, offset))),
                    },
                    Expr::Column(_) => unreachable!("handled above"),
                }
            }
        }
    }
    go(e, offset)
}

fn default_name(expr: &ExprAst, position: usize) -> String {
    match expr {
        ExprAst::Column { name, .. } => name.clone(),
        ExprAst::Agg { func, .. } => func.to_ascii_lowercase(),
        _ => format!("col{position}"),
    }
}

fn resolve_order_key(
    key: &OrderKey,
    output_names: &[String],
    items: &[SelectItem],
) -> Result<SortKey, SqlError> {
    let column = match &key.expr {
        // 1-based output position.
        ExprAst::Int(n) if *n >= 1 && (*n as usize) <= output_names.len() => *n as usize - 1,
        ExprAst::Int(n) => {
            return Err(SqlError::bind(format!(
                "ORDER BY position {n} out of range (1..={})",
                output_names.len()
            )))
        }
        // Output name / alias.
        ExprAst::Column {
            qualifier: None,
            name,
        } if output_names.contains(name) => output_names
            .iter()
            .position(|n| n == name)
            .expect("contains"),
        // An expression textually matching a select item.
        other => items
            .iter()
            .position(|i| matches!(i, SelectItem::Expr { expr, .. } if expr == other))
            .ok_or_else(|| {
                SqlError::bind(
                    "ORDER BY keys must be output columns, aliases, positions, \
                     or select-list expressions",
                )
            })?,
    };
    Ok(SortKey {
        column,
        descending: key.descending,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use dbvirt_engine::{run_plan, CpuCosts};
    use dbvirt_optimizer::{plan_query, OptimizerParams};
    use dbvirt_storage::{BufferPool, DataType, Field, Schema, Tuple};

    /// `users(id, name, city_id)` and `cities(id, city)`.
    fn db() -> Database {
        let mut db = Database::new();
        let users = db.create_table(
            "users",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("name", DataType::Str),
                Field::new("city_id", DataType::Int),
                Field::new("age", DataType::Int),
            ]),
        );
        db.insert_rows(
            users,
            (0..500).map(|i| {
                Tuple::new(vec![
                    Datum::Int(i),
                    Datum::str(format!("user{i}")),
                    Datum::Int(i % 10),
                    Datum::Int(18 + (i % 60)),
                ])
            }),
        )
        .unwrap();
        let cities = db.create_table(
            "cities",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("city", DataType::Str),
            ]),
        );
        db.insert_rows(
            cities,
            (0..10).map(|i| Tuple::new(vec![Datum::Int(i), Datum::str(format!("city{i}"))])),
        )
        .unwrap();
        db.analyze_all().unwrap();
        db
    }

    fn run(sql: &str) -> (Vec<Tuple>, Vec<String>) {
        let mut database = db();
        let logical = parse_query(sql, &database).unwrap();
        let planned = plan_query(&database, &logical, &OptimizerParams::default()).unwrap();
        let schema = planned.physical.output_schema(&database);
        let mut pool = BufferPool::new(256);
        let out = run_plan(
            &mut database,
            &mut pool,
            &planned.physical,
            1 << 20,
            CpuCosts::default(),
        )
        .unwrap();
        let names = schema.fields().iter().map(|f| f.name.clone()).collect();
        (out.rows, names)
    }

    #[test]
    fn select_star() {
        let (rows, _) = run("SELECT * FROM users");
        assert_eq!(rows.len(), 500);
        assert_eq!(rows[0].arity(), 4);
    }

    #[test]
    fn projection_filter_and_order() {
        let (rows, names) = run(
            "SELECT name, age + 1 AS next_age FROM users WHERE age >= 70 ORDER BY next_age DESC, name LIMIT 5",
        );
        assert_eq!(names, vec!["name", "next_age"]);
        assert_eq!(rows.len(), 5);
        let ages: Vec<i64> = rows.iter().map(|r| r.get(1).as_int().unwrap()).collect();
        assert!(ages.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(ages[0], 78);
    }

    #[test]
    fn join_with_on_and_where_pushdown() {
        let (rows, _) = run(
            "SELECT u.name, c.city FROM users u JOIN cities c ON u.city_id = c.id \
             WHERE c.city = 'city3' AND u.age < 30",
        );
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r.get(1).as_str(), Some("city3"));
        }
    }

    #[test]
    fn comma_join_with_where_condition() {
        let (rows, _) =
            run("SELECT u.id FROM users u, cities c WHERE u.city_id = c.id AND c.id = 0");
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn group_by_having_and_aggregates() {
        let (rows, names) = run(
            "SELECT city_id, COUNT(*) AS n, AVG(age) AS avg_age FROM users \
             GROUP BY city_id HAVING COUNT(*) >= 50 ORDER BY city_id",
        );
        assert_eq!(names, vec!["city_id", "n", "avg_age"]);
        assert_eq!(rows.len(), 10, "all groups have exactly 50 members");
        for r in &rows {
            assert_eq!(r.get(1).as_int(), Some(50));
        }
    }

    #[test]
    fn global_aggregate_with_arithmetic_over_aggs() {
        let (rows, _) = run(
            "SELECT 100 * SUM(age) / COUNT(*) AS centi_avg FROM users WHERE age BETWEEN 20 AND 40",
        );
        assert_eq!(rows.len(), 1);
        let v = rows[0].get(0).as_float().unwrap();
        assert!(v > 2000.0 && v < 4100.0, "centi-average {v}");
    }

    #[test]
    fn left_join_preserves_unmatched() {
        let mut database = db();
        // Add a user with an unknown city.
        let users = database.table_id("users").unwrap();
        database
            .insert_rows(
                users,
                [Tuple::new(vec![
                    Datum::Int(999),
                    Datum::str("orphan"),
                    Datum::Int(77),
                    Datum::Int(30),
                ])],
            )
            .unwrap();
        database.analyze_all().unwrap();
        let logical = parse_query(
            "SELECT u.name, c.city FROM users u LEFT JOIN cities c ON u.city_id = c.id",
            &database,
        )
        .unwrap();
        let planned = plan_query(&database, &logical, &OptimizerParams::default()).unwrap();
        let mut pool = BufferPool::new(256);
        let out = run_plan(
            &mut database,
            &mut pool,
            &planned.physical,
            1 << 20,
            CpuCosts::default(),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 501);
        let orphan = out
            .rows
            .iter()
            .find(|r| r.get(0).as_str() == Some("orphan"))
            .unwrap();
        assert!(orphan.get(1).is_null());
    }

    #[test]
    fn like_in_between_and_not() {
        let (rows, _) = run(
            "SELECT id FROM users WHERE name LIKE 'user1%' AND id IN (1, 10, 11, 200) \
             AND NOT id = 200",
        );
        let ids: Vec<i64> = rows.iter().map(|r| r.get(0).as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 10, 11]);
    }

    #[test]
    fn order_by_position() {
        let (rows, _) = run("SELECT id, age FROM users ORDER BY 2 DESC, 1 ASC LIMIT 3");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(1).as_int(), Some(77));
    }

    #[test]
    fn date_literals_bind() {
        let database = db();
        // No date column in this schema; just ensure the literal lowers.
        let err = parse_query(
            "SELECT id FROM users WHERE missing >= DATE '1994-01-01'",
            &database,
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Bind { .. }));
        assert_eq!(parse_date("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date("1992-01-01").unwrap(), 8035);
        assert!(parse_date("1992-13-01").is_err());
        assert!(parse_date("nope").is_err());
    }

    #[test]
    fn bind_errors() {
        let database = db();
        for (sql, needle) in [
            ("SELECT * FROM missing", "unknown table"),
            ("SELECT nope FROM users", "unknown column"),
            (
                "SELECT id FROM users u, cities u WHERE u.id = 0",
                "duplicate table alias",
            ),
            ("SELECT u.id FROM users u, cities c", "no join condition"),
            ("SELECT id FROM users GROUP BY id + 1", "plain columns"),
            (
                "SELECT name FROM users GROUP BY city_id",
                "must appear in GROUP BY",
            ),
            ("SELECT * FROM users GROUP BY city_id", "SELECT *"),
            ("SELECT id FROM users ORDER BY nope", "ORDER BY"),
            (
                "SELECT id FROM users WHERE COUNT(*) > 1",
                "aggregates are not allowed",
            ),
            (
                "SELECT u.id FROM users u LEFT JOIN cities c ON u.city_id = c.id WHERE u.id = c.id",
                "LEFT JOIN conditions",
            ),
        ] {
            let err = parse_query(sql, &database).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{sql:?} -> {err} (expected {needle:?})"
            );
        }
    }

    #[test]
    fn ambiguous_bare_column_is_rejected() {
        let database = db();
        let err = parse_query(
            "SELECT id FROM users u JOIN cities c ON u.city_id = c.id",
            &database,
        )
        .unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }
}
