//! Recursive-descent `SELECT` parser.

use crate::ast::{ExprAst, FromItem, JoinClause, JoinKind, OrderKey, SelectItem, SelectStmt, TableRef};
use crate::lexer::Token;
use crate::SqlError;

/// Keywords that can never be table/column aliases.
const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "LEFT",
    "OUTER", "ON", "AS", "AND", "OR", "NOT", "LIKE", "IN", "BETWEEN", "IS", "NULL", "ASC", "DESC",
    "TRUE", "FALSE", "DATE", "COUNT", "SUM", "AVG", "MIN", "MAX", "CASE", "WHEN", "THEN", "ELSE",
    "END", "EXISTS",
];

const AGG_FUNCS: &[&str] = &["COUNT", "SUM", "AVG", "MIN", "MAX"];

struct Cursor<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_sym(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), SqlError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(SqlError::parse(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    /// Consumes a non-reserved identifier, returning its original spelling.
    fn expect_name(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek() {
            Some(Token::Ident { upper, raw }) if !RESERVED.contains(&upper.as_str()) => {
                self.pos += 1;
                Ok(raw.clone())
            }
            other => Err(SqlError::parse(format!("expected {what}, found {other:?}"))),
        }
    }
}

/// Parses a token stream into a `SELECT` statement.
pub fn parse(tokens: &[Token]) -> Result<SelectStmt, SqlError> {
    let mut c = Cursor { tokens, pos: 0 };
    let stmt = parse_select(&mut c)?;
    if let Some(extra) = c.peek() {
        return Err(SqlError::parse(format!(
            "unexpected trailing token {extra:?}"
        )));
    }
    Ok(stmt)
}

fn parse_select(c: &mut Cursor<'_>) -> Result<SelectStmt, SqlError> {
    c.expect_kw("SELECT")?;

    let mut items = Vec::new();
    loop {
        if c.eat_sym("*") {
            items.push(SelectItem::Wildcard);
        } else if let Some(Token::Ident { upper, raw }) = c.peek() {
            // `alias.*`?
            if !RESERVED.contains(&upper.as_str())
                && c.tokens.get(c.pos + 1).is_some_and(|t| t.is_sym("."))
                && c.tokens.get(c.pos + 2).is_some_and(|t| t.is_sym("*"))
            {
                let q = raw.clone();
                c.pos += 3;
                items.push(SelectItem::QualifiedWildcard(q));
            } else {
                let expr = parse_expr(c)?;
                let alias = parse_item_alias(c)?;
                items.push(SelectItem::Expr { expr, alias });
            }
        } else {
            let expr = parse_expr(c)?;
            let alias = parse_item_alias(c)?;
            items.push(SelectItem::Expr { expr, alias });
        }
        if !c.eat_sym(",") {
            break;
        }
    }

    c.expect_kw("FROM")?;
    let from = if c.eat_sym("(") {
        let query = parse_select(c)?;
        c.expect_sym(")")?;
        c.eat_kw("AS");
        let alias = c.expect_name("derived-table alias")?;
        FromItem::Derived {
            query: Box::new(query),
            alias,
        }
    } else {
        FromItem::Table(parse_table_ref(c)?)
    };
    let mut joins = Vec::new();
    loop {
        if c.eat_sym(",") {
            joins.push(JoinClause {
                kind: JoinKind::Inner,
                table: parse_table_ref(c)?,
                on: None,
            });
        } else if c
            .peek()
            .is_some_and(|t| t.is_kw("JOIN") || t.is_kw("INNER") || t.is_kw("LEFT"))
        {
            let kind = if c.eat_kw("LEFT") {
                c.eat_kw("OUTER");
                JoinKind::Left
            } else {
                c.eat_kw("INNER");
                JoinKind::Inner
            };
            c.expect_kw("JOIN")?;
            let table = parse_table_ref(c)?;
            c.expect_kw("ON")?;
            let on = parse_expr(c)?;
            joins.push(JoinClause {
                kind,
                table,
                on: Some(on),
            });
        } else {
            break;
        }
    }

    let where_clause = if c.eat_kw("WHERE") {
        Some(parse_expr(c)?)
    } else {
        None
    };

    let mut group_by = Vec::new();
    if c.eat_kw("GROUP") {
        c.expect_kw("BY")?;
        loop {
            group_by.push(parse_expr(c)?);
            if !c.eat_sym(",") {
                break;
            }
        }
    }

    let having = if c.eat_kw("HAVING") {
        Some(parse_expr(c)?)
    } else {
        None
    };

    let mut order_by = Vec::new();
    if c.eat_kw("ORDER") {
        c.expect_kw("BY")?;
        loop {
            let expr = parse_expr(c)?;
            let descending = if c.eat_kw("DESC") {
                true
            } else {
                c.eat_kw("ASC");
                false
            };
            order_by.push(OrderKey { expr, descending });
            if !c.eat_sym(",") {
                break;
            }
        }
    }

    let limit = if c.eat_kw("LIMIT") {
        match c.advance() {
            Some(Token::Int(n)) if *n >= 0 => Some(*n as usize),
            other => {
                return Err(SqlError::parse(format!(
                    "LIMIT needs a count, found {other:?}"
                )))
            }
        }
    } else {
        None
    };

    Ok(SelectStmt {
        items,
        from,
        joins,
        where_clause,
        group_by,
        having,
        order_by,
        limit,
    })
}

/// `[AS] alias` after a select item, if present.
fn parse_item_alias(c: &mut Cursor<'_>) -> Result<Option<String>, SqlError> {
    if c.eat_kw("AS") {
        return Ok(Some(c.expect_name("alias")?));
    }
    match c.peek() {
        Some(Token::Ident { upper, raw }) if !RESERVED.contains(&upper.as_str()) => {
            let a = raw.clone();
            c.pos += 1;
            Ok(Some(a))
        }
        _ => Ok(None),
    }
}

fn parse_table_ref(c: &mut Cursor<'_>) -> Result<TableRef, SqlError> {
    let table = c.expect_name("table name")?;
    let alias = if c.eat_kw("AS") {
        c.expect_name("table alias")?
    } else {
        match c.peek() {
            Some(Token::Ident { upper, raw }) if !RESERVED.contains(&upper.as_str()) => {
                let a = raw.clone();
                c.pos += 1;
                a
            }
            _ => table.clone(),
        }
    };
    Ok(TableRef { table, alias })
}

/// Full expression: OR-level.
fn parse_expr(c: &mut Cursor<'_>) -> Result<ExprAst, SqlError> {
    let mut lhs = parse_and(c)?;
    while c.eat_kw("OR") {
        let rhs = parse_and(c)?;
        lhs = ExprAst::Binary {
            op: "OR".into(),
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        };
    }
    Ok(lhs)
}

fn parse_and(c: &mut Cursor<'_>) -> Result<ExprAst, SqlError> {
    let mut lhs = parse_not(c)?;
    while c.eat_kw("AND") {
        let rhs = parse_not(c)?;
        lhs = ExprAst::Binary {
            op: "AND".into(),
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        };
    }
    Ok(lhs)
}

fn parse_not(c: &mut Cursor<'_>) -> Result<ExprAst, SqlError> {
    if c.peek().is_some_and(|t| t.is_kw("NOT"))
        && c.tokens.get(c.pos + 1).is_some_and(|t| t.is_kw("EXISTS"))
    {
        c.pos += 1;
        return parse_exists(c, true);
    }
    if c.eat_kw("NOT") {
        Ok(ExprAst::Not(Box::new(parse_not(c)?)))
    } else {
        parse_predicate(c)
    }
}

/// `EXISTS (SELECT ...)` — the EXISTS keyword is at the cursor.
fn parse_exists(c: &mut Cursor<'_>, negated: bool) -> Result<ExprAst, SqlError> {
    c.expect_kw("EXISTS")?;
    c.expect_sym("(")?;
    let query = parse_select(c)?;
    c.expect_sym(")")?;
    Ok(ExprAst::Exists {
        query: Box::new(query),
        negated,
    })
}

/// Comparison / LIKE / IN / BETWEEN / IS NULL level.
fn parse_predicate(c: &mut Cursor<'_>) -> Result<ExprAst, SqlError> {
    let lhs = parse_additive(c)?;

    // `NOT LIKE` / `NOT IN` at the predicate position.
    let negated = if c.peek().is_some_and(|t| t.is_kw("NOT"))
        && c.tokens
            .get(c.pos + 1)
            .is_some_and(|t| t.is_kw("LIKE") || t.is_kw("IN"))
    {
        c.pos += 1;
        true
    } else {
        false
    };

    if c.eat_kw("LIKE") {
        match c.advance() {
            Some(Token::Str(p)) => {
                return Ok(ExprAst::Like {
                    expr: Box::new(lhs),
                    pattern: p.clone(),
                    negated,
                })
            }
            other => {
                return Err(SqlError::parse(format!(
                    "LIKE needs a string pattern, found {other:?}"
                )))
            }
        }
    }
    if c.eat_kw("IN") {
        c.expect_sym("(")?;
        if c.peek().is_some_and(|t| t.is_kw("SELECT")) {
            let query = parse_select(c)?;
            c.expect_sym(")")?;
            return Ok(ExprAst::InSelect {
                expr: Box::new(lhs),
                query: Box::new(query),
                negated,
            });
        }
        let mut list = Vec::new();
        loop {
            list.push(parse_additive(c)?);
            if !c.eat_sym(",") {
                break;
            }
        }
        c.expect_sym(")")?;
        return Ok(ExprAst::InList {
            expr: Box::new(lhs),
            list,
            negated,
        });
    }
    if negated {
        return Err(SqlError::parse("dangling NOT before a non-predicate"));
    }
    if c.eat_kw("BETWEEN") {
        let lo = parse_additive(c)?;
        c.expect_kw("AND")?;
        let hi = parse_additive(c)?;
        return Ok(ExprAst::Between {
            expr: Box::new(lhs),
            lo: Box::new(lo),
            hi: Box::new(hi),
        });
    }
    if c.eat_kw("IS") {
        let negated = c.eat_kw("NOT");
        c.expect_kw("NULL")?;
        return Ok(ExprAst::IsNull {
            expr: Box::new(lhs),
            negated,
        });
    }
    for op in ["=", "<>", "<=", ">=", "<", ">"] {
        if c.eat_sym(op) {
            let rhs = parse_additive(c)?;
            return Ok(ExprAst::Binary {
                op: op.to_string(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
    }
    Ok(lhs)
}

fn parse_additive(c: &mut Cursor<'_>) -> Result<ExprAst, SqlError> {
    let mut lhs = parse_multiplicative(c)?;
    loop {
        let op = if c.eat_sym("+") {
            "+"
        } else if c.eat_sym("-") {
            "-"
        } else {
            break;
        };
        let rhs = parse_multiplicative(c)?;
        lhs = ExprAst::Binary {
            op: op.to_string(),
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        };
    }
    Ok(lhs)
}

fn parse_multiplicative(c: &mut Cursor<'_>) -> Result<ExprAst, SqlError> {
    let mut lhs = parse_unary(c)?;
    loop {
        let op = if c.eat_sym("*") {
            "*"
        } else if c.eat_sym("/") {
            "/"
        } else {
            break;
        };
        let rhs = parse_unary(c)?;
        lhs = ExprAst::Binary {
            op: op.to_string(),
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        };
    }
    Ok(lhs)
}

fn parse_unary(c: &mut Cursor<'_>) -> Result<ExprAst, SqlError> {
    if c.eat_sym("-") {
        return Ok(ExprAst::Neg(Box::new(parse_unary(c)?)));
    }
    parse_primary(c)
}

fn parse_primary(c: &mut Cursor<'_>) -> Result<ExprAst, SqlError> {
    if c.eat_sym("(") {
        let inner = parse_expr(c)?;
        c.expect_sym(")")?;
        return Ok(inner);
    }
    match c.peek().cloned() {
        Some(Token::Int(v)) => {
            c.pos += 1;
            Ok(ExprAst::Int(v))
        }
        Some(Token::Float(v)) => {
            c.pos += 1;
            Ok(ExprAst::Float(v))
        }
        Some(Token::Str(s)) => {
            c.pos += 1;
            Ok(ExprAst::Str(s))
        }
        Some(Token::Ident { upper, raw }) => {
            if upper == "TRUE" {
                c.pos += 1;
                return Ok(ExprAst::Bool(true));
            }
            if upper == "FALSE" {
                c.pos += 1;
                return Ok(ExprAst::Bool(false));
            }
            if upper == "NULL" {
                c.pos += 1;
                return Ok(ExprAst::Null);
            }
            if upper == "CASE" {
                c.pos += 1;
                let mut branches = Vec::new();
                while c.eat_kw("WHEN") {
                    let cond = parse_expr(c)?;
                    c.expect_kw("THEN")?;
                    let val = parse_expr(c)?;
                    branches.push((cond, val));
                }
                if branches.is_empty() {
                    return Err(SqlError::parse("CASE needs at least one WHEN branch"));
                }
                let else_expr = if c.eat_kw("ELSE") {
                    Some(Box::new(parse_expr(c)?))
                } else {
                    None
                };
                c.expect_kw("END")?;
                return Ok(ExprAst::Case {
                    branches,
                    else_expr,
                });
            }
            if upper == "EXISTS" {
                return parse_exists(c, false);
            }
            if upper == "DATE" {
                c.pos += 1;
                match c.advance() {
                    Some(Token::Str(s)) => return Ok(ExprAst::Date(s.clone())),
                    other => {
                        return Err(SqlError::parse(format!(
                            "DATE needs a 'YYYY-MM-DD' string, found {other:?}"
                        )))
                    }
                }
            }
            if AGG_FUNCS.contains(&upper.as_str()) {
                c.pos += 1;
                c.expect_sym("(")?;
                let arg = if c.eat_sym("*") {
                    if upper != "COUNT" {
                        return Err(SqlError::parse(format!("{upper}(*) is not valid")));
                    }
                    None
                } else {
                    Some(Box::new(parse_expr(c)?))
                };
                c.expect_sym(")")?;
                return Ok(ExprAst::Agg { func: upper, arg });
            }
            if RESERVED.contains(&upper.as_str()) {
                return Err(SqlError::parse(format!(
                    "unexpected keyword {upper} in expression"
                )));
            }
            c.pos += 1;
            // Qualified column?
            if c.eat_sym(".") {
                let name = c.expect_name("column name")?;
                Ok(ExprAst::Column {
                    qualifier: Some(raw),
                    name,
                })
            } else {
                Ok(ExprAst::Column {
                    qualifier: None,
                    name: raw,
                })
            }
        }
        other => Err(SqlError::parse(format!(
            "expected an expression, found {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn p(sql: &str) -> SelectStmt {
        parse(&tokenize(sql).unwrap()).unwrap()
    }

    fn from_table(s: &SelectStmt) -> &TableRef {
        match &s.from {
            FromItem::Table(t) => t,
            other => panic!("expected a base table, got {other:?}"),
        }
    }

    #[test]
    fn minimal_select() {
        let s = p("SELECT * FROM t");
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert_eq!(from_table(&s).table, "t");
        assert_eq!(from_table(&s).alias, "t");
        assert!(s.where_clause.is_none());
    }

    #[test]
    fn aliases_and_projection() {
        let s = p("SELECT a, b + 1 AS b1, count(*) cnt FROM t x");
        assert_eq!(s.items.len(), 3);
        assert_eq!(from_table(&s).alias, "x");
        match &s.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("b1")),
            other => panic!("{other:?}"),
        }
        match &s.items[2] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(alias.as_deref(), Some("cnt"));
                assert!(matches!(expr, ExprAst::Agg { func, arg: None } if func == "COUNT"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn joins_comma_and_explicit() {
        let s = p("SELECT * FROM a, b JOIN c ON a.x = c.y LEFT JOIN d ON d.z = b.w");
        assert_eq!(s.joins.len(), 3);
        assert_eq!(s.joins[0].kind, JoinKind::Inner);
        assert!(s.joins[0].on.is_none());
        assert_eq!(s.joins[1].table.alias, "c");
        assert!(s.joins[1].on.is_some());
        assert_eq!(s.joins[2].kind, JoinKind::Left);
    }

    #[test]
    fn operator_precedence() {
        // a + b * 2 = 10 AND x OR y  parses as  ((a + (b*2)) = 10 AND x) OR y
        let s = p("SELECT 1 FROM t WHERE a + b * 2 = 10 AND x OR y");
        let w = s.where_clause.unwrap();
        match &w {
            ExprAst::Binary { op, lhs, .. } => {
                assert_eq!(op, "OR");
                match lhs.as_ref() {
                    ExprAst::Binary { op, lhs, .. } => {
                        assert_eq!(op, "AND");
                        match lhs.as_ref() {
                            ExprAst::Binary { op, lhs, .. } => {
                                assert_eq!(op, "=");
                                match lhs.as_ref() {
                                    ExprAst::Binary { op, rhs, .. } => {
                                        assert_eq!(op, "+");
                                        assert!(matches!(
                                            rhs.as_ref(),
                                            ExprAst::Binary { op, .. } if op == "*"
                                        ));
                                    }
                                    other => panic!("{other:?}"),
                                }
                            }
                            other => panic!("{other:?}"),
                        }
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn predicates() {
        let s = p(
            "SELECT 1 FROM t WHERE a LIKE '%x%' AND b NOT LIKE 'y%' AND c IN (1, 2) \
             AND d NOT IN (3) AND e BETWEEN 1 AND 5 AND f IS NOT NULL AND g IS NULL",
        );
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn group_having_order_limit() {
        let s = p(
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING COUNT(*) > 5 \
             ORDER BY n DESC, g LIMIT 10",
        );
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].descending);
        assert!(!s.order_by[1].descending);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn date_literal_and_negation() {
        let s = p("SELECT 1 FROM t WHERE d >= DATE '1994-01-01' AND v > -5");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn qualified_star_in_projection() {
        let s = p("SELECT u.*, c.city FROM u JOIN c ON u.x = c.y");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.items[0], SelectItem::QualifiedWildcard("u".into()));
    }

    #[test]
    fn case_when_parses() {
        let s = p("SELECT CASE WHEN a > 1 THEN b ELSE 0 END FROM t");
        match &s.items[0] {
            SelectItem::Expr {
                expr:
                    ExprAst::Case {
                        branches,
                        else_expr,
                    },
                ..
            } => {
                assert_eq!(branches.len(), 1);
                assert!(else_expr.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exists_and_in_subqueries_parse() {
        let s = p(
            "SELECT 1 FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.x) \
             AND NOT EXISTS (SELECT * FROM v WHERE v.y = t.y) \
             AND k IN (SELECT k FROM w)",
        );
        let mut conj = Vec::new();
        fn walk(e: &ExprAst, out: &mut Vec<ExprAst>) {
            if let ExprAst::Binary { op, lhs, rhs } = e {
                if op == "AND" {
                    walk(lhs, out);
                    walk(rhs, out);
                    return;
                }
            }
            out.push(e.clone());
        }
        walk(s.where_clause.as_ref().unwrap(), &mut conj);
        assert_eq!(conj.len(), 3);
        assert!(matches!(&conj[0], ExprAst::Exists { negated: false, .. }));
        assert!(matches!(&conj[1], ExprAst::Exists { negated: true, .. }));
        assert!(matches!(&conj[2], ExprAst::InSelect { negated: false, .. }));
    }

    #[test]
    fn derived_table_from_parses() {
        let s = p("SELECT n FROM (SELECT k AS n FROM t GROUP BY k) d GROUP BY n");
        match &s.from {
            FromItem::Derived { alias, query } => {
                assert_eq!(alias, "d");
                assert_eq!(query.group_by.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in [
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t LIMIT x",
            "SELECT SUM(*) FROM t",
            "SELECT * FROM t trailing garbage ,",
            "SELECT a FROM t ORDER",
        ] {
            let toks = tokenize(bad).unwrap();
            assert!(parse(&toks).is_err(), "{bad:?} should not parse");
        }
    }
}
