//! The SQL lexer.

use crate::SqlError;

/// A lexical token. Keywords are uppercased identifiers recognized by the
/// parser; the lexer keeps them as `Ident` with normalized case.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, upper-cased for case-insensitive matching,
    /// with the original spelling preserved.
    Ident {
        /// Upper-cased form used for keyword matching.
        upper: String,
        /// The original spelling (used for catalog lookups).
        raw: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single-quoted; `''` escapes a quote).
    Str(String),
    /// One of `= <> < <= > >= + - * / ( ) , . %`.
    Symbol(&'static str),
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident { upper, .. } if upper == kw)
    }

    /// True if this token is the given symbol.
    pub fn is_sym(&self, s: &str) -> bool {
        matches!(self, Token::Symbol(sym) if *sym == s)
    }
}

/// Tokenizes a SQL string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_ascii_whitespace() => i += 1,
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let raw = input[start..i].to_string();
                out.push(Token::Ident {
                    upper: raw.to_ascii_uppercase(),
                    raw,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad float literal {text:?}"),
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| SqlError::Lex {
                        position: start,
                        message: format!("bad integer literal {text:?}"),
                    })?));
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(SqlError::Lex {
                            position: start,
                            message: "unterminated string literal".to_string(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        // Doubled quote = escaped quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    // Multi-byte UTF-8 passes through untouched.
                    let ch_len = input[i..].chars().next().map_or(1, char::len_utf8);
                    s.push_str(&input[i..i + ch_len]);
                    i += ch_len;
                }
                out.push(Token::Str(s));
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Symbol("<="));
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    out.push(Token::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    out.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        position: i,
                        message: "unexpected '!'".to_string(),
                    });
                }
            }
            '=' => {
                out.push(Token::Symbol("="));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol("+"));
                i += 1;
            }
            '-' => {
                // `--` starts a comment to end of line.
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Symbol("-"));
                    i += 1;
                }
            }
            '*' => {
                out.push(Token::Symbol("*"));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol("/"));
                i += 1;
            }
            '(' => {
                out.push(Token::Symbol("("));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(")"));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(","));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol("."));
                i += 1;
            }
            ';' => {
                // Statement terminator: ignore.
                i += 1;
            }
            other => {
                return Err(SqlError::Lex {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT a, b FROM t WHERE x >= 1.5 AND y <> 'it''s'").unwrap();
        assert!(toks[0].is_kw("SELECT"));
        assert!(toks[2].is_sym(","));
        assert!(toks.iter().any(|t| t.is_sym(">=")));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::Float(f) if *f == 1.5)));
        assert!(toks
            .iter()
            .any(|t| matches!(t, Token::Str(s) if s == "it's")));
    }

    #[test]
    fn case_insensitive_keywords_preserve_raw() {
        let toks = tokenize("select MyTable").unwrap();
        assert!(toks[0].is_kw("SELECT"));
        match &toks[1] {
            Token::Ident { raw, upper } => {
                assert_eq!(raw, "MyTable");
                assert_eq!(upper, "MYTABLE");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_semicolons_are_skipped() {
        let toks = tokenize("SELECT 1 -- trailing comment\n, 2;").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident {
                    upper: "SELECT".into(),
                    raw: "SELECT".into()
                },
                Token::Int(1),
                Token::Symbol(","),
                Token::Int(2),
            ]
        );
    }

    #[test]
    fn bang_equals_is_not_equals() {
        let toks = tokenize("a != b").unwrap();
        assert!(toks[1].is_sym("<>"));
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("SELECT @").unwrap_err();
        assert!(matches!(err, SqlError::Lex { position: 7, .. }));
        let err = tokenize("SELECT 'open").unwrap_err();
        assert!(matches!(err, SqlError::Lex { .. }));
    }

    #[test]
    fn negative_handled_as_minus_symbol() {
        let toks = tokenize("-5").unwrap();
        assert_eq!(toks, vec![Token::Symbol("-"), Token::Int(5)]);
    }
}
