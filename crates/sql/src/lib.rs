//! # dbvirt-sql — the SQL front-end
//!
//! A small, dependency-free SQL layer so that workloads can be written the
//! way the paper writes them ("a sequence of SQL statements") instead of
//! as hand-built plan trees:
//!
//! * [`lexer`] — tokens, keywords, literals (including `DATE 'YYYY-MM-DD'`);
//! * [`ast`] — the parsed statement shape;
//! * [`parser`] — recursive-descent `SELECT` parser with standard operator
//!   precedence;
//! * [`binder`] — name resolution against a [`dbvirt_engine::Database`]
//!   catalog, predicate classification (pushdown vs join conditions vs
//!   residual), and lowering to a [`dbvirt_optimizer::LogicalPlan`].
//!
//! Supported surface: `SELECT` lists with expressions, aliases and
//! aggregates (`COUNT(*)`, `COUNT/SUM/AVG/MIN/MAX(expr)`); `FROM` with
//! comma joins and `[INNER|LEFT] JOIN … ON`; `WHERE` with `AND/OR/NOT`,
//! comparisons, arithmetic, `LIKE`, `IN (…)`, `BETWEEN`, `IS [NOT] NULL`;
//! `GROUP BY` / `HAVING`; `ORDER BY … [ASC|DESC]` (by output name or
//! 1-based position); `LIMIT`.
//!
//! ```
//! use dbvirt_engine::Database;
//! use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
//!
//! let mut db = Database::new();
//! let t = db.create_table(
//!     "items",
//!     Schema::new(vec![
//!         Field::new("id", DataType::Int),
//!         Field::new("price", DataType::Float),
//!     ]),
//! );
//! db.insert_rows(t, (0..100).map(|i| {
//!     Tuple::new(vec![Datum::Int(i), Datum::Float(i as f64 * 1.5)])
//! })).unwrap();
//! db.analyze_all().unwrap();
//!
//! let plan = dbvirt_sql::parse_query(
//!     "SELECT COUNT(*) AS n, SUM(price) AS total FROM items WHERE id < 10",
//!     &db,
//! ).unwrap();
//! # let _ = plan;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod binder;
mod error;
mod lexer;
mod parser;

pub use binder::bind;
pub use error::SqlError;
pub use lexer::{tokenize, Token};
pub use parser::parse;

use dbvirt_engine::Database;
use dbvirt_optimizer::LogicalPlan;

/// Parses one SQL `SELECT` statement and binds it against `db`'s catalog,
/// producing an optimizable logical plan.
pub fn parse_query(sql: &str, db: &Database) -> Result<LogicalPlan, SqlError> {
    let tokens = tokenize(sql)?;
    let stmt = parse(&tokens)?;
    bind(&stmt, db)
}
