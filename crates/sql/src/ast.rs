//! The parsed statement shape (names unresolved).

/// A parsed scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// `[qualifier.]column`
    Column {
        /// Table alias qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `DATE 'YYYY-MM-DD'`.
    Date(String),
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// `NULL`.
    Null,
    /// Binary operator (`= <> < <= > >= + - * / AND OR`).
    Binary {
        /// Operator spelling (normalized).
        op: String,
        /// Left operand.
        lhs: Box<ExprAst>,
        /// Right operand.
        rhs: Box<ExprAst>,
    },
    /// `NOT expr`.
    Not(Box<ExprAst>),
    /// Unary minus.
    Neg(Box<ExprAst>),
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// Operand.
        expr: Box<ExprAst>,
        /// The pattern.
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (literal, ...)`.
    InList {
        /// Operand.
        expr: Box<ExprAst>,
        /// Literal list items.
        list: Vec<ExprAst>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Operand.
        expr: Box<ExprAst>,
        /// Lower bound.
        lo: Box<ExprAst>,
        /// Upper bound.
        hi: Box<ExprAst>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<ExprAst>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// Aggregate call: `COUNT(*)` or `COUNT/SUM/AVG/MIN/MAX(expr)`.
    Agg {
        /// Upper-cased function name.
        func: String,
        /// Argument (`None` = `*`).
        arg: Option<Box<ExprAst>>,
    },
    /// `CASE WHEN c THEN v [WHEN ...]* [ELSE e] END`.
    Case {
        /// `(condition, value)` branches in order.
        branches: Vec<(ExprAst, ExprAst)>,
        /// The `ELSE` value (`NULL` if absent).
        else_expr: Option<Box<ExprAst>>,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// The subquery.
        query: Box<SelectStmt>,
        /// `NOT EXISTS` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSelect {
        /// Operand.
        expr: Box<ExprAst>,
        /// The subquery (its first output column is matched).
        query: Box<SelectStmt>,
        /// `NOT IN` when true.
        negated: bool,
    },
}

/// One `SELECT` list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: ExprAst,
        /// Output alias, if written.
        alias: Option<String>,
    },
}

/// Join kind in the `FROM` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN` and comma joins.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
}

/// One table reference with its optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Catalog table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// One joined table after the first.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Join kind.
    pub kind: JoinKind,
    /// The joined table.
    pub table: TableRef,
    /// The `ON` condition (`None` for comma joins — conditions live in
    /// `WHERE`).
    pub on: Option<ExprAst>,
}

/// `ORDER BY` key: an output name, a 1-based position, or an expression
/// matching a select item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The key expression (usually a bare column / alias, or an integer
    /// position literal).
    pub expr: ExprAst,
    /// Descending when true.
    pub descending: bool,
}

/// The first `FROM` entry: a base table or a parenthesised subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// `FROM table [alias]`
    Table(TableRef),
    /// `FROM (SELECT ...) alias` — a derived table.
    Derived {
        /// The subquery.
        query: Box<SelectStmt>,
        /// The mandatory alias.
        alias: String,
    },
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// First table (or derived subquery).
    pub from: FromItem,
    /// Remaining joined tables.
    pub joins: Vec<JoinClause>,
    /// `WHERE` predicate.
    pub where_clause: Option<ExprAst>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<ExprAst>,
    /// `HAVING` predicate.
    pub having: Option<ExprAst>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
}

impl ExprAst {
    /// True if the expression contains an aggregate call anywhere.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            ExprAst::Agg { .. } => true,
            ExprAst::Binary { lhs, rhs, .. } => {
                lhs.contains_aggregate() || rhs.contains_aggregate()
            }
            ExprAst::Not(e) | ExprAst::Neg(e) => e.contains_aggregate(),
            ExprAst::Like { expr, .. } | ExprAst::IsNull { expr, .. } => expr.contains_aggregate(),
            ExprAst::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(ExprAst::contains_aggregate)
            }
            ExprAst::Between { expr, lo, hi } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            ExprAst::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_expr
                        .as_ref()
                        .is_some_and(|e| e.contains_aggregate())
            }
            // Subqueries are separate aggregation scopes.
            ExprAst::Exists { .. } => false,
            ExprAst::InSelect { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection_recurses() {
        let agg = ExprAst::Agg {
            func: "SUM".into(),
            arg: Some(Box::new(ExprAst::Column {
                qualifier: None,
                name: "x".into(),
            })),
        };
        let wrapped = ExprAst::Binary {
            op: "+".into(),
            lhs: Box::new(ExprAst::Int(1)),
            rhs: Box::new(agg),
        };
        assert!(wrapped.contains_aggregate());
        assert!(!ExprAst::Int(1).contains_aggregate());
    }
}
