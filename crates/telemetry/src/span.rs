//! RAII span guards and the per-thread parent stack.

use crate::registry::{Registry, SpanRecord};
use std::cell::RefCell;

thread_local! {
    /// Stack of open spans on this thread as `(registry_id, span_id)`.
    /// Registry ids keep a test's private registry from adopting parents
    /// that belong to the global one (and vice versa).
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Finds this thread's innermost open span belonging to `registry_id`.
pub(crate) fn current_parent(registry_id: u64) -> Option<u64> {
    STACK.with(|s| {
        s.borrow()
            .iter()
            .rev()
            .find(|&&(rid, _)| rid == registry_id)
            .map(|&(_, sid)| sid)
    })
}

pub(crate) fn push(registry_id: u64, span_id: u64) {
    STACK.with(|s| s.borrow_mut().push((registry_id, span_id)));
}

/// Removes the topmost matching entry (searching from the top tolerates
/// out-of-order guard drops without corrupting unrelated entries).
pub(crate) fn pop(registry_id: u64, span_id: u64) {
    STACK.with(|s| {
        let mut st = s.borrow_mut();
        if let Some(pos) = st.iter().rposition(|&e| e == (registry_id, span_id)) {
            st.remove(pos);
        }
    });
}

/// An open span. Dropping the guard closes the span and records it; a
/// guard from a disabled registry is an inert no-op.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    pub(crate) inner: Option<Active<'a>>,
}

pub(crate) struct Active<'a> {
    pub(crate) reg: &'a Registry,
    pub(crate) rec: SpanRecord,
}

impl<'a> SpanGuard<'a> {
    /// An inert guard (what every disabled entry point returns).
    pub fn noop() -> SpanGuard<'static> {
        SpanGuard { inner: None }
    }

    /// The span's id, usable as an explicit parent for spans started on
    /// other threads (see [`Registry::span_with_parent`]). `None` for a
    /// no-op guard — workers then correctly start root spans.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|a| a.rec.id)
    }

    /// Attaches a key/value attribute to the span record.
    pub fn set_attr(&mut self, key: &'static str, value: impl Into<crate::AttrValue>) {
        if let Some(a) = self.inner.as_mut() {
            a.rec.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            pop(active.reg.id(), active.rec.id);
            active.reg.finish_span(active.rec);
        }
    }
}
