//! Persistent sink: bounded span retention plus periodic JSON flushes.
//!
//! Day-long `fleet_sim` runs finish millions of spans; the registry's
//! default unbounded `Vec` would eat the heap and the profile would only
//! exist if the process survived to call [`crate::snapshot`]. A sink
//! bounds both problems: completed spans land in a fixed-capacity ring
//! (oldest dropped first, every drop counted), and every
//! [`SinkConfig::flush_every`] finished spans the registry rewrites one
//! on-disk file with a full [`crate::Snapshot::to_json`] document — the
//! same version-1 format the exporters and CI smoke gate already read.
//! Counters, gauges, and histograms are fixed-size cells, so they are
//! never dropped; each flush carries their current values.
//!
//! Sinks are **off by default** and watch-only like the rest of the
//! crate: attaching one changes no computed result anywhere (the
//! workspace's determinism pins hold with a sink attached), and
//! [`crate::Registry::snapshot`] still returns every *retained* span, so
//! fingerprints over snapshots are identical with and without a sink
//! until the ring actually overflows — which [`SinkStats::spans_dropped`]
//! reports, never silently.
//!
//! Write failures (disk full, missing directory) are counted and
//! remembered, not propagated: telemetry must never take down the run it
//! is watching.

use crate::registry::SpanRecord;
use std::collections::VecDeque;
use std::path::PathBuf;

/// Configuration for a registry's persistent sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkConfig {
    /// File each flush overwrites with a version-1 snapshot JSON
    /// document (whole-file writes: readers never see a torn flush
    /// appended to an old one).
    pub path: PathBuf,
    /// Maximum completed spans retained in memory. When full, the oldest
    /// span is dropped per arrival and counted in
    /// [`SinkStats::spans_dropped`].
    pub ring_capacity: usize,
    /// Flush to disk every this many finished spans (a final flush also
    /// happens on [`crate::Registry::detach_sink`]).
    pub flush_every: u64,
}

impl SinkConfig {
    /// A sink writing to `path` with defaults sized for long runs:
    /// 65 536 retained spans, a flush every 4 096 completions.
    pub fn new(path: impl Into<PathBuf>) -> SinkConfig {
        SinkConfig {
            path: path.into(),
            ring_capacity: 65_536,
            flush_every: 4_096,
        }
    }

    /// Sets the retention ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> SinkConfig {
        self.ring_capacity = capacity;
        self
    }

    /// Sets the flush period in finished spans.
    pub fn with_flush_every(mut self, every: u64) -> SinkConfig {
        self.flush_every = every;
        self
    }
}

/// Observable state of an attached sink.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SinkStats {
    /// Spans currently held in the retention ring.
    pub spans_retained: usize,
    /// Spans evicted from the ring since attach (0 = profile complete).
    pub spans_dropped: u64,
    /// Completed flushes to disk.
    pub flushes: u64,
    /// Flush attempts that failed to write (see `last_error`).
    pub write_errors: u64,
    /// Message of the most recent write failure, if any.
    pub last_error: Option<String>,
}

/// Live sink state owned by the registry (behind its sink mutex).
#[derive(Debug)]
pub(crate) struct SinkState {
    pub(crate) cfg: SinkConfig,
    pub(crate) ring: VecDeque<SpanRecord>,
    pub(crate) spans_dropped: u64,
    pub(crate) since_flush: u64,
    pub(crate) flushes: u64,
    pub(crate) write_errors: u64,
    pub(crate) last_error: Option<String>,
}

impl SinkState {
    pub(crate) fn new(cfg: SinkConfig) -> SinkState {
        SinkState {
            ring: VecDeque::with_capacity(cfg.ring_capacity.min(4_096)),
            cfg,
            spans_dropped: 0,
            since_flush: 0,
            flushes: 0,
            write_errors: 0,
            last_error: None,
        }
    }

    /// Pushes one completed span, evicting the oldest when full.
    /// Returns `true` when a periodic flush is due.
    pub(crate) fn push(&mut self, rec: SpanRecord) -> bool {
        if self.cfg.ring_capacity == 0 {
            self.spans_dropped += 1;
        } else {
            if self.ring.len() >= self.cfg.ring_capacity {
                self.ring.pop_front();
                self.spans_dropped += 1;
            }
            self.ring.push_back(rec);
        }
        self.since_flush += 1;
        self.cfg.flush_every > 0 && self.since_flush >= self.cfg.flush_every
    }

    pub(crate) fn stats(&self) -> SinkStats {
        SinkStats {
            spans_retained: self.ring.len(),
            spans_dropped: self.spans_dropped,
            flushes: self.flushes,
            write_errors: self.write_errors,
            last_error: self.last_error.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique temp path per test invocation (no tempfile dependency).
    fn temp_path(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "dbvirt_sink_{}_{}_{}.json",
            tag,
            std::process::id(),
            seq
        ))
    }

    fn record_spans(reg: &Registry, names: &[&'static str]) {
        for &name in names {
            drop(reg.span(name));
        }
    }

    #[test]
    fn snapshot_is_identical_with_and_without_a_sink() {
        // Same span sequence through two registries — one sinked, one
        // not. Everything deterministic about the snapshots must match
        // (ids, names, parents, virtual intervals, counters); only wall
        // clocks may differ.
        let plain = Registry::new_enabled();
        let sinked = Registry::new_enabled();
        let path = temp_path("identity");
        sinked.attach_sink(SinkConfig::new(&path).with_ring_capacity(64).with_flush_every(2));
        for reg in [&plain, &sinked] {
            reg.add("work.items", 3);
            let outer = reg.span("outer");
            reg.advance_virtual_micros(500);
            drop(reg.span("inner"));
            drop(outer);
        }
        let (a, b) = (plain.snapshot(), sinked.snapshot());
        a.validate().unwrap();
        b.validate().unwrap();
        let key = |s: &crate::Snapshot| {
            s.spans
                .iter()
                .map(|r| (r.id, r.parent, r.name, r.vstart_us, r.vend_us))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.virtual_us, b.virtual_us);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ring_bound_evicts_oldest_and_counts_drops() {
        let reg = Registry::new_enabled();
        let path = temp_path("bound");
        reg.attach_sink(SinkConfig::new(&path).with_ring_capacity(4).with_flush_every(1_000));
        record_spans(&reg, &["s"; 10]);
        let stats = reg.sink_stats().unwrap();
        assert_eq!(stats.spans_retained, 4);
        assert_eq!(stats.spans_dropped, 6);
        // The survivors are the *newest* spans: ids 7..=10.
        let snap = reg.snapshot();
        assert_eq!(snap.spans.iter().map(|s| s.id).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn periodic_flush_writes_version1_json() {
        let reg = Registry::new_enabled();
        let path = temp_path("flush");
        reg.attach_sink(SinkConfig::new(&path).with_ring_capacity(64).with_flush_every(3));
        record_spans(&reg, &["tick"; 7]);
        let stats = reg.sink_stats().unwrap();
        assert_eq!(stats.flushes, 2, "7 spans at flush_every=3");
        assert_eq!(stats.write_errors, 0);
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.starts_with("{\"version\":1,"), "existing on-disk format: {doc:.40}");
        assert!(doc.contains("\"tick\""));
        // A forced flush rewrites the file with the latest state.
        record_spans(&reg, &["late"]);
        let stats = reg.flush_sink().unwrap();
        assert_eq!(stats.flushes, 3);
        assert!(std::fs::read_to_string(&path).unwrap().contains("\"late\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn detach_final_flushes_and_keeps_retained_spans() {
        let reg = Registry::new_enabled();
        let path = temp_path("detach");
        reg.attach_sink(SinkConfig::new(&path).with_ring_capacity(64).with_flush_every(1_000));
        record_spans(&reg, &["a", "b"]);
        let stats = reg.detach_sink().unwrap();
        assert_eq!(stats.flushes, 1, "detach performs the final flush");
        assert_eq!(stats.spans_retained, 2);
        assert!(reg.sink_stats().is_none(), "sink is gone");
        // Retained spans folded back: still visible after detach, and
        // new spans keep recording into the plain store.
        record_spans(&reg, &["c"]);
        let snap = reg.snapshot();
        snap.validate().unwrap();
        assert_eq!(
            snap.spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        assert!(std::fs::read_to_string(&path).unwrap().contains("\"b\""));
        let _ = std::fs::remove_file(&path);
        assert!(reg.detach_sink().is_none(), "second detach is a no-op");
    }

    #[test]
    fn write_failures_are_counted_not_propagated() {
        let reg = Registry::new_enabled();
        let path = std::env::temp_dir().join("dbvirt_sink_no_such_dir").join("x.json");
        reg.attach_sink(SinkConfig::new(&path).with_ring_capacity(8).with_flush_every(1));
        record_spans(&reg, &["doomed"]); // triggers a flush that must fail quietly
        let stats = reg.sink_stats().unwrap();
        assert_eq!(stats.flushes, 0);
        assert_eq!(stats.write_errors, 1);
        assert!(stats.last_error.unwrap().contains("x.json"));
        assert_eq!(stats.spans_retained, 1, "span survives the failed flush");
    }

    #[test]
    fn zero_capacity_ring_drops_everything_but_still_flushes() {
        let reg = Registry::new_enabled();
        let path = temp_path("zero");
        reg.attach_sink(SinkConfig::new(&path).with_ring_capacity(0).with_flush_every(2));
        record_spans(&reg, &["x", "y"]);
        let stats = reg.sink_stats().unwrap();
        assert_eq!(stats.spans_retained, 0);
        assert_eq!(stats.spans_dropped, 2);
        assert_eq!(stats.flushes, 1);
        let _ = std::fs::remove_file(&path);
    }
}
