//! Log-bucketed (HDR-style) histogram over `u64` values.
//!
//! Bucketing uses 8 sub-buckets per power of two, giving every bucket a
//! relative width of at most 12.5% — accurate enough for latency
//! percentiles while needing only [`NUM_BUCKETS`] fixed counters (no
//! allocation on the record path, one relaxed `fetch_add`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two.
const SUB: usize = 8;

/// Total bucket count: values `0..8` get exact unit buckets, then each of
/// the remaining 61 octaves (`2^3 ..= 2^63`) contributes [`SUB`] buckets.
pub const NUM_BUCKETS: usize = SUB + 61 * SUB;

/// Maps a value to its bucket index.
///
/// Values below 8 index directly (exact unit buckets). Above, the index
/// is `(exp - 2) * 8 + offset` where `exp = floor(log2 v)` and `offset`
/// is the top three bits below the leading bit.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // exp >= 3
    let offset = ((v >> (exp - 3)) as usize) - SUB;
    (exp - 2) * SUB + offset
}

/// The smallest value mapping to `index` (inverse of [`bucket_index`]).
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let octave = index / SUB; // >= 1
    let sub = index % SUB;
    ((SUB + sub) as u64) << (octave - 1)
}

/// Lock-free histogram: fixed bucket array plus exact count/sum/min/max.
#[derive(Debug)]
pub(crate) struct Hist {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Hist {
    pub(crate) fn new() -> Hist {
        Hist {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram: only non-empty buckets, as
/// `(bucket_index, count)` pairs, plus exact aggregate statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(usize, u64)>,
    /// Total number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Exact mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the lower bound of the
    /// bucket containing the `ceil(q * count)`-th value. Within a
    /// bucket's ≤ 12.5% width, this is exact at bucket boundaries.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_lower_bound(idx).max(self.min).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact_below_eight() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_continuous_and_monotone() {
        // Every value maps to a bucket whose bounds contain it, and the
        // index function is monotone non-decreasing.
        let mut prev_idx = 0usize;
        for v in [
            0u64,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            31,
            32,
            63,
            64,
            100,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 20) + 1,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(idx >= prev_idx, "index not monotone at v={v}");
            prev_idx = idx;
            let lo = bucket_lower_bound(idx);
            assert!(lo <= v, "v={v} below its bucket lower bound {lo}");
            if idx + 1 < NUM_BUCKETS {
                let next_lo = bucket_lower_bound(idx + 1);
                assert!(v < next_lo, "v={v} not below next bucket bound {next_lo}");
            }
        }
    }

    #[test]
    fn lower_bounds_invert_the_index_exactly() {
        for idx in 0..NUM_BUCKETS {
            let lo = bucket_lower_bound(idx);
            assert_eq!(bucket_index(lo), idx, "lower bound of {idx} maps back");
        }
    }

    #[test]
    fn relative_bucket_width_is_at_most_one_eighth() {
        for idx in 8..NUM_BUCKETS - 1 {
            let lo = bucket_lower_bound(idx) as f64;
            let hi = bucket_lower_bound(idx + 1) as f64;
            assert!(
                (hi - lo) / lo <= 0.125 + 1e-12,
                "bucket {idx}: [{lo}, {hi}) wider than 12.5%"
            );
        }
    }

    #[test]
    fn hist_records_and_snapshots() {
        let h = Hist::new();
        for v in [1u64, 1, 5, 100, 1000, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1 + 1 + 5 + 100 + 1000 + 1000 + 1_000_000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(
            s.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
            s.count,
            "bucket counts must sum to total"
        );
        // Quantiles bracket correctly: median falls in the 100-bucket.
        let q50 = s.quantile(0.5);
        assert!((5..=100).contains(&q50), "median {q50}");
        // The top quantile lands in the max value's bucket (reported as
        // that bucket's lower bound, within 12.5% of the true max).
        let q100 = s.quantile(1.0);
        assert_eq!(bucket_index(q100), bucket_index(s.max), "q100={q100}");
        assert!(q100 <= s.max);
        h.reset();
        let s2 = h.snapshot();
        assert_eq!(s2.count, 0);
        assert_eq!(s2.min, 0);
        assert!(s2.buckets.is_empty());
    }
}
