//! The thread-safe telemetry registry and its snapshot type.

use crate::hist::{Hist, HistogramSnapshot};
use crate::sink::{SinkConfig, SinkState, SinkStats};
use crate::span::{self, Active, SpanGuard};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Distinguishes registries on the per-thread parent stack.
static REGISTRY_IDS: AtomicU64 = AtomicU64::new(1);

/// Small dense thread ids for readable exports (`std::thread::ThreadId`
/// has no stable integer accessor).
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

/// A completed span as stored in the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the registry (monotone from 1).
    pub id: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Static span name (the taxonomy key, e.g. `"search.run"`).
    pub name: &'static str,
    /// Dense per-process thread id of the recording thread.
    pub tid: u64,
    /// Wall-clock start, nanoseconds since the registry's epoch.
    pub start_ns: u64,
    /// Wall-clock end, nanoseconds since the registry's epoch.
    pub end_ns: u64,
    /// Virtual-clock reading (micros) when the span opened.
    pub vstart_us: u64,
    /// Virtual-clock reading (micros) when the span closed.
    pub vend_us: u64,
    /// Attached attributes in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Wall-clock duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Virtual-clock duration in microseconds.
    pub fn virtual_us(&self) -> u64 {
        self.vend_us.saturating_sub(self.vstart_us)
    }
}

/// A shared atomic counter cell (cacheable via [`crate::Counter`]).
#[derive(Debug, Default)]
pub struct CounterCell {
    value: AtomicU64,
}

impl CounterCell {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A shared f64 gauge cell (bits stored in an `AtomicU64`).
#[derive(Debug)]
pub struct GaugeCell {
    bits: AtomicU64,
}

impl GaugeCell {
    fn new() -> GaugeCell {
        GaugeCell {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// A shared histogram cell (cacheable via [`crate::Histogram`]).
#[derive(Debug)]
pub struct HistCell {
    hist: Hist,
}

impl HistCell {
    fn new() -> HistCell {
        HistCell { hist: Hist::new() }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.hist.record(v);
    }

    /// Snapshots the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.hist.snapshot()
    }
}

/// A thread-safe telemetry registry.
///
/// The process-wide instance behind [`crate::global`] is gated by the
/// [`crate::enable`]/[`crate::disable`] switch; a directly constructed
/// `Registry` always records, which is what tests want.
#[derive(Debug)]
pub struct Registry {
    id: u64,
    epoch: Instant,
    next_span: AtomicU64,
    open_spans: AtomicU64,
    vclock_us: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    hists: Mutex<BTreeMap<String, Arc<HistCell>>>,
    /// Optional persistent sink (see [`crate::SinkConfig`]). While
    /// attached, finished spans route into its bounded ring instead of
    /// the unbounded `spans` vector. Lock discipline: the sink mutex is
    /// never held while taking any other registry lock (flushes clone
    /// the ring out first), so no ordering cycle exists.
    sink: Mutex<Option<SinkState>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry; its epoch (wall-clock zero) is now.
    pub fn new() -> Registry {
        Registry {
            id: REGISTRY_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            next_span: AtomicU64::new(0),
            open_spans: AtomicU64::new(0),
            vclock_us: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            sink: Mutex::new(None),
        }
    }

    /// Alias of [`Registry::new`] that reads better in tests: a directly
    /// constructed registry always records.
    pub fn new_enabled() -> Registry {
        Registry::new()
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Opens a span whose parent is this thread's innermost open span in
    /// this registry.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let parent = span::current_parent(self.id);
        self.open(name, parent)
    }

    /// Opens a span with an explicit parent (`None` = root). The new span
    /// still joins this thread's stack, so spans opened underneath it on
    /// the same thread nest inside it — this is how a `thread::scope`
    /// worker adopts the spawning thread's span as its subtree root.
    pub fn span_with_parent(&self, name: &'static str, parent: Option<u64>) -> SpanGuard<'_> {
        self.open(name, parent)
    }

    fn open(&self, name: &'static str, parent: Option<u64>) -> SpanGuard<'_> {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        self.open_spans.fetch_add(1, Ordering::Relaxed);
        span::push(self.id, id);
        let rec = SpanRecord {
            id,
            parent,
            name,
            tid: current_tid(),
            start_ns: self.now_ns(),
            end_ns: 0,
            vstart_us: self.vclock_us.load(Ordering::Relaxed),
            vend_us: 0,
            attrs: Vec::new(),
        };
        SpanGuard {
            inner: Some(Active { reg: self, rec }),
        }
    }

    pub(crate) fn finish_span(&self, mut rec: SpanRecord) {
        rec.end_ns = self.now_ns().max(rec.start_ns);
        rec.vend_us = self.vclock_us.load(Ordering::Relaxed).max(rec.vstart_us);
        let flush_due = {
            let mut sink = self.sink.lock().unwrap();
            match sink.as_mut() {
                Some(state) => {
                    let due = state.push(rec);
                    if due {
                        // Claim the flush under the lock so concurrent
                        // finishers don't all write the same period.
                        state.since_flush = 0;
                    }
                    due
                }
                None => {
                    drop(sink);
                    self.spans.lock().unwrap().push(rec);
                    false
                }
            }
        };
        self.open_spans.fetch_sub(1, Ordering::Relaxed);
        if flush_due {
            self.flush_sink();
        }
    }

    /// Attaches a persistent sink: from now on finished spans are
    /// retained in a bounded ring and flushed periodically to
    /// `cfg.path` as a version-1 snapshot JSON document. Spans already
    /// recorded stay where they are and appear in every flush and
    /// snapshot alongside the ring. Replaces any previously attached
    /// sink (without a final flush of the old one).
    pub fn attach_sink(&self, cfg: SinkConfig) {
        *self.sink.lock().unwrap() = Some(SinkState::new(cfg));
    }

    /// Detaches the sink after one final flush, folding the retained
    /// ring back into the registry's span store — snapshots keep every
    /// span that survived retention. Returns the sink's final stats, or
    /// `None` if no sink was attached.
    pub fn detach_sink(&self) -> Option<SinkStats> {
        self.flush_sink()?;
        let state = self.sink.lock().unwrap().take()?;
        let stats = state.stats();
        self.spans.lock().unwrap().extend(state.ring);
        Some(stats)
    }

    /// Forces a flush now (also used for the periodic flushes). The
    /// document is a full [`Snapshot::to_json`]: retained spans plus
    /// current counters, gauges, and histograms. Write failures are
    /// recorded in [`SinkStats`], never propagated. Returns the stats
    /// after the attempt, or `None` if no sink is attached.
    pub fn flush_sink(&self) -> Option<SinkStats> {
        let path = self.sink.lock().unwrap().as_ref()?.cfg.path.clone();
        let json = self.snapshot().to_json();
        let result = std::fs::write(&path, json);
        let mut sink = self.sink.lock().unwrap();
        let state = sink.as_mut()?;
        match result {
            Ok(()) => state.flushes += 1,
            Err(e) => {
                state.write_errors += 1;
                state.last_error = Some(format!("{}: {e}", path.display()));
            }
        }
        Some(state.stats())
    }

    /// The attached sink's current stats (`None` when no sink).
    pub fn sink_stats(&self) -> Option<SinkStats> {
        self.sink.lock().unwrap().as_ref().map(SinkState::stats)
    }

    /// Advances the registry's virtual (simulated) clock.
    pub fn advance_virtual_micros(&self, us: u64) {
        self.vclock_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Current virtual-clock reading in microseconds.
    pub fn virtual_us(&self) -> u64 {
        self.vclock_us.load(Ordering::Relaxed)
    }

    /// Number of spans currently open (guards not yet dropped).
    pub fn open_spans(&self) -> u64 {
        self.open_spans.load(Ordering::Relaxed)
    }

    /// The shared cell for counter `name`, creating it on first use.
    pub fn counter_cell(&self, name: &str) -> Arc<CounterCell> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The shared cell for gauge `name`, creating it on first use.
    pub fn gauge_cell(&self, name: &str) -> Arc<GaugeCell> {
        Arc::clone(
            self.gauges
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(GaugeCell::new())),
        )
    }

    /// The shared cell for histogram `name`, creating it on first use.
    pub fn hist_cell(&self, name: &str) -> Arc<HistCell> {
        Arc::clone(
            self.hists
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(HistCell::new())),
        )
    }

    /// Convenience: bumps counter `name` by `n`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter_cell(name).add(n);
    }

    /// Clears recorded spans, zeroes every metric cell in place (handles
    /// cached by callers stay valid), and rewinds the virtual clock.
    /// Open-span and id counters are preserved.
    pub fn reset(&self) {
        self.spans.lock().unwrap().clear();
        if let Some(state) = self.sink.lock().unwrap().as_mut() {
            state.ring.clear();
            state.since_flush = 0;
        }
        for c in self.counters.lock().unwrap().values() {
            c.reset();
        }
        for g in self.gauges.lock().unwrap().values() {
            g.reset();
        }
        for h in self.hists.lock().unwrap().values() {
            h.hist.reset();
        }
        self.vclock_us.store(0, Ordering::Relaxed);
    }

    /// Takes a consistent point-in-time snapshot (open spans are not
    /// included; [`Snapshot::open_spans`] reports how many are missing).
    pub fn snapshot(&self) -> Snapshot {
        let mut spans = self.spans.lock().unwrap().clone();
        if let Some(state) = self.sink.lock().unwrap().as_ref() {
            spans.extend(state.ring.iter().cloned());
        }
        spans.sort_by_key(|s| s.id);
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(n, c)| (n.clone(), c.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(n, g)| (n.clone(), g.value()))
            .collect();
        let histograms = self
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        Snapshot {
            spans,
            counters,
            gauges,
            histograms,
            open_spans: self.open_spans(),
            virtual_us: self.virtual_us(),
        }
    }
}

/// A point-in-time copy of a registry's state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Completed spans, ascending by id.
    pub spans: Vec<SpanRecord>,
    /// Counter values by name (sorted).
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name (sorted).
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots by name (sorted).
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Spans still open when the snapshot was taken (0 = quiescent).
    pub open_spans: u64,
    /// Virtual-clock reading at snapshot time (micros).
    pub virtual_us: u64,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// The last completed span with `name` (highest id), if any.
    pub fn last_span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().rev().find(|s| s.name == name)
    }

    /// Fraction of `parent`'s wall-clock duration covered by its direct
    /// children (each child clamped to the parent's interval). 1.0 for a
    /// fully accounted parent; 0.0 for a leaf or zero-length span.
    pub fn child_coverage(&self, parent_id: u64) -> f64 {
        let Some(parent) = self.spans.iter().find(|s| s.id == parent_id) else {
            return 0.0;
        };
        let dur = parent.duration_ns();
        if dur == 0 {
            return 0.0;
        }
        let covered: u64 = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(parent_id))
            .map(|s| {
                s.end_ns.min(parent.end_ns).saturating_sub(s.start_ns.max(parent.start_ns))
            })
            .sum();
        covered as f64 / dur as f64
    }

    /// Structural validation — the CI smoke gate's checks:
    ///
    /// * no spans left open,
    /// * span ids unique,
    /// * every parent id refers to a recorded span,
    /// * wall and virtual intervals well-formed (`end ≥ start`),
    /// * every child's wall interval nests inside its parent's.
    pub fn validate(&self) -> Result<(), String> {
        if self.open_spans != 0 {
            return Err(format!("{} span(s) still open (leaked guards)", self.open_spans));
        }
        let mut by_id = BTreeMap::new();
        for s in &self.spans {
            if by_id.insert(s.id, s).is_some() {
                return Err(format!("duplicate span id {}", s.id));
            }
        }
        for s in &self.spans {
            if s.end_ns < s.start_ns {
                return Err(format!("span {} ({}) ends before it starts", s.id, s.name));
            }
            if s.vend_us < s.vstart_us {
                return Err(format!(
                    "span {} ({}) virtual interval ends before it starts",
                    s.id, s.name
                ));
            }
            if let Some(pid) = s.parent {
                let Some(p) = by_id.get(&pid) else {
                    return Err(format!(
                        "span {} ({}) references unknown parent {}",
                        s.id, s.name, pid
                    ));
                };
                if s.start_ns < p.start_ns || s.end_ns > p.end_ns {
                    return Err(format!(
                        "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
                        s.id, s.name, s.start_ns, s.end_ns, p.id, p.name, p.start_ns, p.end_ns
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_registry_nests_spans_per_thread() {
        let reg = Registry::new_enabled();
        {
            let a = reg.span("a");
            let _b = reg.span("b");
            drop(reg.span("c")); // sibling of b? no — child of b
            let _ = a.id();
        }
        let snap = reg.snapshot();
        snap.validate().unwrap();
        let a = snap.last_span("a").unwrap();
        let b = snap.last_span("b").unwrap();
        let c = snap.last_span("c").unwrap();
        assert_eq!(a.parent, None);
        assert_eq!(b.parent, Some(a.id));
        assert_eq!(c.parent, Some(b.id));
    }

    #[test]
    fn cross_thread_parenting_via_explicit_parent() {
        let reg = Registry::new_enabled();
        let root = reg.span("root");
        let parent = root.id();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let w = reg.span_with_parent("worker", parent);
                    let _leaf = reg.span("leaf"); // nests under worker via stack
                    drop(_leaf);
                    drop(w);
                });
            }
        });
        drop(root);
        let snap = reg.snapshot();
        snap.validate().unwrap();
        let root = snap.last_span("root").unwrap();
        let workers: Vec<_> = snap.spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 3);
        for w in &workers {
            assert_eq!(w.parent, Some(root.id));
        }
        for leaf in snap.spans.iter().filter(|s| s.name == "leaf") {
            let p = leaf.parent.unwrap();
            assert!(workers.iter().any(|w| w.id == p), "leaf parented to a worker");
        }
    }

    #[test]
    fn two_registries_do_not_cross_parent() {
        let r1 = Registry::new_enabled();
        let r2 = Registry::new_enabled();
        let _a = r1.span("r1.outer");
        let b = r2.span("r2.span"); // must NOT adopt r1.outer as parent
        drop(b);
        let snap2 = r2.snapshot();
        assert_eq!(snap2.last_span("r2.span").unwrap().parent, None);
    }

    #[test]
    fn validator_flags_leaked_spans() {
        let reg = Registry::new_enabled();
        let leaked = reg.span("leak");
        let snap = reg.snapshot();
        assert!(snap.validate().is_err());
        drop(leaked);
        reg.snapshot().validate().unwrap();
    }

    #[test]
    fn virtual_clock_intervals_follow_advances() {
        let reg = Registry::new_enabled();
        {
            let _s = reg.span("sim");
            reg.advance_virtual_micros(1500);
        }
        let snap = reg.snapshot();
        let s = snap.last_span("sim").unwrap();
        assert_eq!(s.vstart_us, 0);
        assert_eq!(s.vend_us, 1500);
        assert_eq!(s.virtual_us(), 1500);
        assert_eq!(snap.virtual_us, 1500);
    }

    #[test]
    fn child_coverage_accounts_direct_children() {
        let reg = Registry::new_enabled();
        let root = reg.span("root");
        let rid = root.id().unwrap();
        {
            let _c1 = reg.span("c1");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _c2 = reg.span("c2");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        drop(root);
        let snap = reg.snapshot();
        let cov = snap.child_coverage(rid);
        assert!(cov > 0.5, "children should dominate the root: {cov}");
        assert!(cov <= 1.0 + 1e-9);
    }

    #[test]
    fn reset_preserves_cached_cells() {
        let reg = Registry::new();
        let c = reg.counter_cell("k");
        c.add(4);
        reg.advance_virtual_micros(9);
        reg.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(reg.virtual_us(), 0);
        c.add(2);
        assert_eq!(reg.snapshot().counter("k"), Some(2));
    }
}
