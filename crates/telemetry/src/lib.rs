//! # dbvirt-telemetry — zero-dependency tracing and metrics
//!
//! Observability substrate for the advisor pipeline. Nothing here changes
//! what the instrumented code computes — the subsystem only *watches*:
//!
//! * **spans** ([`span`], [`SpanGuard`]) — hierarchical timed regions with
//!   monotonic wall-clock timestamps *and* simulated virtual-clock
//!   timestamps (advanced by the code being measured via
//!   [`advance_virtual_micros`]); parentage follows a per-thread stack,
//!   and [`span_with_parent`] carries a parent across
//!   `std::thread::scope` workers;
//! * **counters / gauges** ([`Counter`], [`Gauge`]) — atomic, cacheable in
//!   `static`s so hot paths pay one relaxed load when disabled;
//! * **histograms** ([`Histogram`]) — log-bucketed (HDR-style: 8
//!   sub-buckets per power of two, ≤ 12.5% relative bucket width) latency
//!   distributions in integer microseconds;
//! * **exporters** ([`Snapshot::to_json`], [`Snapshot::to_chrome_trace`])
//!   — a self-contained JSON dump and the Chrome `chrome://tracing` /
//!   Perfetto trace-event format, plus [`Snapshot::validate`], the
//!   structural validator the CI smoke gate runs;
//! * **persistent sink** ([`SinkConfig`], [`Registry::attach_sink`]) —
//!   bounded ring-buffer span retention with periodic whole-file flushes
//!   in the same JSON format, so day-long simulation runs stay
//!   profilable after the fact without unbounded memory; off by default.
//!
//! ## The zero-cost disabled contract
//!
//! The global registry starts **disabled**. Every public operation begins
//! with one relaxed atomic load and returns immediately when disabled: no
//! allocation, no locking, no clock reads. Since instrumentation never
//! feeds back into computation, behavior with telemetry disabled is
//! bit-identical to a build without it; the workspace pins this with
//! recommendation-determinism regression tests. Building with the `off`
//! feature turns the enabled check into a compile-time `false`, making
//! the no-op path checkable by the optimizer itself.
//!
//! ## Threading model
//!
//! All state is thread-safe. Span parentage is tracked per thread; a
//! worker thread adopts a parent explicitly:
//!
//! ```
//! use dbvirt_telemetry as telemetry;
//! let reg = telemetry::Registry::new_enabled();
//! let root = reg.span("root");
//! let parent = root.id();
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         let _w = reg.span_with_parent("worker", parent);
//!     });
//! });
//! drop(root);
//! assert!(reg.snapshot().validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod hist;
mod registry;
mod sink;
mod span;

pub use hist::{bucket_index, bucket_lower_bound, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{AttrValue, CounterCell, GaugeCell, HistCell, Registry, Snapshot, SpanRecord};
pub use sink::{SinkConfig, SinkStats};
pub use span::SpanGuard;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Global on/off switch (one relaxed load on every hot path).
static ENABLED: AtomicBool = AtomicBool::new(false);

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry instrumentation sites record into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// True if global telemetry collection is on.
#[inline(always)]
pub fn is_enabled() -> bool {
    #[cfg(feature = "off")]
    {
        false
    }
    #[cfg(not(feature = "off"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Turns global telemetry collection on. No-op under the `off` feature.
pub fn enable() {
    #[cfg(not(feature = "off"))]
    {
        global(); // materialize the registry (and its epoch) first
        ENABLED.store(true, Ordering::SeqCst);
    }
}

/// Turns global telemetry collection off. Already-open spans still record
/// when their guards drop.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Clears the global registry: spans are dropped, counters, gauges,
/// histograms, and the virtual clock are zeroed (handles cached in
/// `static`s stay valid). Call only with no spans open.
pub fn reset() {
    if GLOBAL.get().is_some() {
        global().reset();
    }
}

/// Starts a span on the global registry (no-op guard when disabled).
#[inline]
pub fn span(name: &'static str) -> SpanGuard<'static> {
    if !is_enabled() {
        return SpanGuard::noop();
    }
    global().span(name)
}

/// Starts a span with an explicit parent (for handing parentage to
/// `std::thread::scope` workers). `parent = None` starts a root span.
#[inline]
pub fn span_with_parent(name: &'static str, parent: Option<u64>) -> SpanGuard<'static> {
    if !is_enabled() {
        return SpanGuard::noop();
    }
    global().span_with_parent(name, parent)
}

/// Advances the global simulated (virtual) clock by `us` microseconds.
/// Spans snapshot this clock at start and end, giving every span a
/// virtual-time interval alongside its wall-clock one.
#[inline]
pub fn advance_virtual_micros(us: u64) {
    if !is_enabled() {
        return;
    }
    global().advance_virtual_micros(us);
}

/// Advances the global virtual clock by (non-negative, finite) seconds.
#[inline]
pub fn advance_virtual_secs(secs: f64) {
    if !is_enabled() {
        return;
    }
    if secs.is_finite() && secs > 0.0 {
        global().advance_virtual_micros((secs * 1e6).round() as u64);
    }
}

/// Takes a consistent snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Attaches a persistent sink to the global registry (see
/// [`Registry::attach_sink`]). Independent of the enable switch: the
/// sink only sees spans that are recorded at all, so while disabled it
/// simply stays empty.
pub fn attach_sink(cfg: SinkConfig) {
    global().attach_sink(cfg);
}

/// Final-flushes and detaches the global registry's sink, returning its
/// stats (`None` if no sink was attached).
pub fn detach_sink() -> Option<SinkStats> {
    global().detach_sink()
}

/// Forces a flush of the global registry's sink now (`None` if no sink
/// is attached).
pub fn flush_sink() -> Option<SinkStats> {
    global().flush_sink()
}

/// A named counter bound to the global registry, cacheable in a `static`
/// so the enabled hot path is one `OnceLock` read plus one `fetch_add`.
///
/// ```
/// use dbvirt_telemetry as telemetry;
/// static HITS: telemetry::Counter = telemetry::Counter::new("cache.hits");
/// HITS.add(1); // no-op while disabled
/// ```
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<CounterCell>>,
}

impl Counter {
    /// Declares a counter (registered in the global registry on first use).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` to the counter (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if !is_enabled() {
            return;
        }
        self.cell
            .get_or_init(|| global().counter_cell(self.name))
            .add(n);
    }

    /// The counter's current value (0 if it has never been touched).
    pub fn value(&self) -> u64 {
        self.cell.get().map_or(0, |c| c.value())
    }
}

/// A named f64 gauge bound to the global registry.
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<Arc<GaugeCell>>,
}

impl Gauge {
    /// Declares a gauge (registered in the global registry on first use).
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Sets the gauge (no-op while disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if !is_enabled() {
            return;
        }
        self.cell
            .get_or_init(|| global().gauge_cell(self.name))
            .set(v);
    }
}

/// A named log-bucketed histogram bound to the global registry.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<Arc<HistCell>>,
}

impl Histogram {
    /// Declares a histogram (registered in the global registry on first
    /// use).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Records a value in integer microseconds (no-op while disabled).
    #[inline]
    pub fn record_micros(&self, us: u64) {
        if !is_enabled() {
            return;
        }
        self.cell
            .get_or_init(|| global().hist_cell(self.name))
            .record(us);
    }

    /// Records a wall-clock duration.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that flip the global enabled flag.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_global_records_nothing() {
        let _g = GLOBAL_LOCK.lock().unwrap();
        disable();
        reset();
        static C: Counter = Counter::new("test.disabled.counter");
        C.add(5);
        let s = span("test.disabled.span");
        drop(s);
        advance_virtual_micros(10);
        let snap = snapshot();
        assert!(snap.spans.iter().all(|s| s.name != "test.disabled.span"));
        assert_eq!(
            snap.counters
                .iter()
                .find(|(n, _)| n == "test.disabled.counter"),
            None
        );
    }

    #[test]
    fn enabled_global_roundtrip() {
        let _g = GLOBAL_LOCK.lock().unwrap();
        disable();
        reset();
        enable();
        static C: Counter = Counter::new("test.enabled.counter");
        static H: Histogram = Histogram::new("test.enabled.hist");
        static G: Gauge = Gauge::new("test.enabled.gauge");
        C.add(2);
        C.add(3);
        H.record_micros(100);
        G.set(0.5);
        advance_virtual_micros(7);
        {
            let mut outer = span("test.enabled.outer");
            outer.set_attr("k", 1u64);
            let _inner = span("test.enabled.inner");
        }
        disable();
        let snap = snapshot();
        let c = snap
            .counters
            .iter()
            .find(|(n, _)| n == "test.enabled.counter")
            .unwrap();
        assert_eq!(c.1, 5);
        let outer = snap
            .spans
            .iter()
            .find(|s| s.name == "test.enabled.outer")
            .unwrap();
        let inner = snap
            .spans
            .iter()
            .find(|s| s.name == "test.enabled.inner")
            .unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert!(outer.start_ns <= inner.start_ns && inner.end_ns <= outer.end_ns);
        assert_eq!(outer.vstart_us, 7);
        snap.validate().unwrap();
        reset();
    }
}
