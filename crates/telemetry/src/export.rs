//! Exporters: a self-contained JSON dump and the Chrome trace-event
//! format (`chrome://tracing` / Perfetto "JSON Array" flavor).
//!
//! The writer is hand-rolled (the crate depends on nothing); the output
//! is plain JSON that `dbvirt-calibrate::json::parse` — or any JSON
//! parser — round-trips. Numbers are emitted as integers where exact and
//! stay far below 2⁵³, so f64-based parsers read them back losslessly.

use crate::registry::{AttrValue, Snapshot};
use crate::SpanRecord;
use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (including the quotes).
fn esc(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an f64 as a JSON number (non-finite values become strings,
/// matching `dbvirt-calibrate::json`'s tagged-string convention).
fn num(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 9e15 {
            let _ = write!(out, "{}", v as i64);
        } else {
            let _ = write!(out, "{v}");
        }
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"Infinity\"");
    } else {
        out.push_str("\"-Infinity\"");
    }
}

fn attr(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::U64(u) => {
            let _ = write!(out, "{u}");
        }
        AttrValue::F64(f) => num(out, *f),
        AttrValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        AttrValue::Str(s) => esc(out, s),
    }
}

fn attrs_obj(out: &mut String, attrs: &[(&'static str, AttrValue)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        esc(out, k);
        out.push(':');
        attr(out, v);
    }
    out.push('}');
}

impl Snapshot {
    /// Serializes the full snapshot as a self-contained JSON document:
    ///
    /// ```json
    /// {"version": 1, "open_spans": 0, "virtual_us": N,
    ///  "spans": [{"id", "parent", "name", "tid", "start_ns", "end_ns",
    ///             "vstart_us", "vend_us", "attrs": {..}}, ...],
    ///  "counters": {"name": n, ...}, "gauges": {"name": x, ...},
    ///  "histograms": {"name": {"count","sum","min","max","mean",
    ///                          "p50","p95","p99",
    ///                          "buckets": [[lower_bound, count], ...]}}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        let _ = write!(
            o,
            "{{\"version\":1,\"open_spans\":{},\"virtual_us\":{},\"spans\":[",
            self.open_spans, self.virtual_us
        );
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "{{\"id\":{},\"parent\":", s.id);
            match s.parent {
                Some(p) => {
                    let _ = write!(o, "{p}");
                }
                None => o.push_str("null"),
            }
            o.push_str(",\"name\":");
            esc(&mut o, s.name);
            let _ = write!(
                o,
                ",\"tid\":{},\"start_ns\":{},\"end_ns\":{},\"vstart_us\":{},\"vend_us\":{},\"attrs\":",
                s.tid, s.start_ns, s.end_ns, s.vstart_us, s.vend_us
            );
            attrs_obj(&mut o, &s.attrs);
            o.push('}');
        }
        o.push_str("],\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            esc(&mut o, n);
            let _ = write!(o, ":{v}");
        }
        o.push_str("},\"gauges\":{");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            esc(&mut o, n);
            o.push(':');
            num(&mut o, *v);
        }
        o.push_str("},\"histograms\":{");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            esc(&mut o, n);
            let _ = write!(
                o,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
                h.count, h.sum, h.min, h.max
            );
            num(&mut o, h.mean());
            let _ = write!(
                o,
                ",\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99)
            );
            for (j, &(idx, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                let _ = write!(o, "[{},{}]", crate::bucket_lower_bound(idx), n);
            }
            o.push_str("]}");
        }
        o.push_str("}}");
        o
    }

    /// Serializes the spans as Chrome trace events (the format
    /// `chrome://tracing` and Perfetto load directly): one complete
    /// (`"ph":"X"`) event per span with microsecond timestamps, span
    /// attributes plus the virtual-clock interval under `args`, and one
    /// counter (`"ph":"C"`) event per metric so counter tracks render
    /// alongside the spans.
    pub fn to_chrome_trace(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for s in &self.spans {
            if !first {
                o.push(',');
            }
            first = false;
            o.push_str("{\"ph\":\"X\",\"cat\":\"span\",\"name\":");
            esc(&mut o, s.name);
            let _ = write!(
                o,
                ",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":",
                s.tid,
                // Chrome wants microsecond doubles; ns/1000 with 3 decimals
                // keeps full nanosecond precision.
                format_args!("{}.{:03}", s.start_ns / 1000, s.start_ns % 1000),
                format_args!("{}.{:03}", s.duration_ns() / 1000, s.duration_ns() % 1000),
            );
            let mut args = s.attrs.clone();
            args.push(("span_id", AttrValue::U64(s.id)));
            if let Some(p) = s.parent {
                args.push(("parent_id", AttrValue::U64(p)));
            }
            args.push(("vstart_us", AttrValue::U64(s.vstart_us)));
            args.push(("vdur_us", AttrValue::U64(s.virtual_us())));
            attrs_obj(&mut o, &args);
            o.push('}');
        }
        let end_ts = self
            .spans
            .iter()
            .map(|s: &SpanRecord| s.end_ns)
            .max()
            .unwrap_or(0)
            / 1000;
        for (n, v) in &self.counters {
            if !first {
                o.push(',');
            }
            first = false;
            o.push_str("{\"ph\":\"C\",\"cat\":\"metric\",\"name\":");
            esc(&mut o, n);
            let _ = write!(o, ",\"pid\":1,\"tid\":0,\"ts\":{end_ts},\"args\":{{\"value\":{v}}}}}");
        }
        for (n, v) in &self.gauges {
            if !first {
                o.push(',');
            }
            first = false;
            o.push_str("{\"ph\":\"C\",\"cat\":\"metric\",\"name\":");
            esc(&mut o, n);
            let _ = write!(o, ",\"pid\":1,\"tid\":0,\"ts\":{end_ts},\"args\":{{\"value\":");
            num(&mut o, *v);
            o.push_str("}}");
        }
        o.push_str("]}");
        o
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn json_dump_is_well_formed() {
        let reg = Registry::new_enabled();
        reg.add("c.one", 3);
        reg.gauge_cell("g\"quoted\"").set(0.25);
        reg.hist_cell("h.lat").record(42);
        {
            let mut s = reg.span("outer");
            s.set_attr("note", "line\nbreak");
            s.set_attr("k", 7u64);
            let _inner = reg.span("inner");
        }
        let json = reg.snapshot().to_json();
        // Structural spot checks (full parser round-trip lives in the
        // workspace integration tests, which may use dbvirt-calibrate).
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"open_spans\":0"));
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"note\":\"line\\nbreak\""));
        assert!(json.contains("\"g\\\"quoted\\\"\""));
        assert!(json.contains("\"c.one\":3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_has_one_complete_event_per_span() {
        let reg = Registry::new_enabled();
        {
            let _a = reg.span("a");
            let _b = reg.span("b");
        }
        reg.add("hits", 5);
        let trace = reg.snapshot().to_chrome_trace();
        assert!(trace.contains("\"traceEvents\":["));
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(trace.matches("\"ph\":\"C\"").count(), 1);
        assert!(trace.contains("\"displayTimeUnit\":\"ms\""));
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    }

    #[test]
    fn non_finite_gauges_export_as_tagged_strings() {
        let reg = Registry::new_enabled();
        reg.gauge_cell("bad").set(f64::NAN);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"bad\":\"NaN\""));
    }
}
