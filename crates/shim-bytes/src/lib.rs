//! In-tree shim for the `bytes` crate (offline build environment).
//!
//! Implements exactly the subset dbvirt uses: an immutable, cheaply
//! clonable byte buffer ([`Bytes`]), a growable builder ([`BytesMut`]),
//! and the [`Buf`]/[`BufMut`] cursor traits with big-endian integer
//! accessors, matching the semantics of the real crate for this subset.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Integer accessors are big-endian,
/// like the real `bytes` crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        i32::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        i64::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }
    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }

    /// Reads `N` bytes into an array (helper for the accessors above).
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor appending to a byte sink. Integer writers are big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(7);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_i32(-5);
        b.put_i64(-1_000_000_007);
        b.put_f64(3.5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32(), -5);
        assert_eq!(r.get_i64(), -1_000_000_007);
        assert_eq!(r.get_f64(), 3.5);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.chunk(), b"xyz");
        r.advance(3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_hash_and_eq_work_as_map_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<Bytes, i32> = HashMap::new();
        m.insert(Bytes::copy_from_slice(b"k1"), 1);
        let again = Bytes::from(b"k1".to_vec());
        assert_eq!(m.get(&again), Some(&1));
    }
}
