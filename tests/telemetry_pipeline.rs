//! End-to-end telemetry contract tests.
//!
//! Pins the two guarantees DESIGN.md §3.9 makes about `dbvirt-telemetry`:
//!
//! 1. **Zero-cost observation** — enabling telemetry must not change any
//!    computed result: calibration outputs and advisor recommendations are
//!    bit-identical with the global registry enabled and disabled, at
//!    serial and parallel evaluation settings alike.
//! 2. **Well-formed artifacts** — both exporters emit JSON the in-tree
//!    parser (`dbvirt_calibrate::json`, the strictest consumer we ship)
//!    accepts, with span/counter content surviving the round trip.
//!
//! The global registry is process-wide, so tests that flip the enabled
//! flag serialize on a lock (cargo runs tests in threads of one process).

use dbvirt_calibrate::json::Json;
use dbvirt_core::{
    DesignProblem, Recommendation, SearchAlgorithm, TelemetrySummary, VirtualizationAdvisor,
    WorkloadSpec,
};
use dbvirt_engine::{Database, Expr};
use dbvirt_optimizer::LogicalPlan;
use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
use dbvirt_telemetry as telemetry;
use dbvirt_vmm::MachineSpec;
use std::sync::Mutex;

/// Serializes tests that flip the global telemetry flag.
static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

fn fixture() -> Database {
    let mut db = Database::new();
    let t = db.create_table(
        "t",
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("pad", DataType::Str),
        ]),
    );
    db.insert_rows(
        t,
        (0..20_000).map(|i| Tuple::new(vec![Datum::Int(i), Datum::str("xxxxxxxxxxxxxxxx")])),
    )
    .unwrap();
    db.analyze_all().unwrap();
    db
}

fn make_problem(db: &Database) -> DesignProblem<'_> {
    let t = db.table_id("t").unwrap();
    let heavy_pred = Expr::and_all(
        (0..10)
            .map(|i| Expr::ge(Expr::add(Expr::col(0), Expr::int(i)), Expr::int(-1)))
            .collect(),
    );
    DesignProblem::new(
        MachineSpec::paper_testbed(),
        vec![
            WorkloadSpec::new("io", db, vec![LogicalPlan::scan(t)]),
            WorkloadSpec::new(
                "cpu",
                db,
                vec![LogicalPlan::scan_filtered(t, heavy_pred); 2],
            ),
        ],
    )
    .unwrap()
}

fn assert_bit_identical(a: &Recommendation, b: &Recommendation, what: &str) {
    assert_eq!(a.allocation, b.allocation, "{what}: allocation");
    assert_eq!(a.evaluations, b.evaluations, "{what}: evaluations");
    assert_eq!(
        a.objective.to_bits(),
        b.objective.to_bits(),
        "{what}: objective"
    );
    assert_eq!(
        a.total_cost.to_bits(),
        b.total_cost.to_bits(),
        "{what}: total cost"
    );
    assert_eq!(a.per_workload_costs.len(), b.per_workload_costs.len());
    for (i, (x, y)) in a
        .per_workload_costs
        .iter()
        .zip(&b.per_workload_costs)
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: per-workload cost {i}");
    }
}

#[test]
fn recommendations_are_bit_identical_with_telemetry_enabled() {
    let _g = TELEMETRY_LOCK.lock().unwrap();
    telemetry::disable();
    telemetry::reset();

    let db = fixture();
    let problem = make_problem(&db);
    let machine = MachineSpec::paper_testbed();

    // Baselines with telemetry disabled: calibration + serial and
    // parallel recommendations.
    let advisor_off = VirtualizationAdvisor::calibrate(machine, 2, 4).unwrap();
    let base_serial = advisor_off
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .unwrap();
    let base_greedy = advisor_off
        .recommend(&problem, SearchAlgorithm::Greedy)
        .unwrap();
    let advisor_off = advisor_off.with_parallelism(3);
    let base_parallel = advisor_off
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .unwrap();
    assert_bit_identical(&base_serial, &base_parallel, "serial vs parallel (off)");

    // The disabled runs must leave the registry untouched. (Counter
    // *names* registered by other tests persist across `reset()` — cells
    // cached in statics stay valid — so check values, not presence.)
    let snap = telemetry::snapshot();
    assert!(snap.spans.is_empty(), "disabled run recorded spans");
    assert!(
        snap.counters.iter().all(|(_, v)| *v == 0),
        "disabled run bumped counters: {:?}",
        snap.counters
    );

    // Same pipeline with telemetry on, including calibration itself.
    telemetry::enable();
    let advisor_on = VirtualizationAdvisor::calibrate(machine, 2, 4).unwrap();
    let on_serial = advisor_on
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .unwrap();
    let on_greedy = advisor_on
        .recommend(&problem, SearchAlgorithm::Greedy)
        .unwrap();
    let advisor_on = advisor_on.with_parallelism(3);
    let on_parallel = advisor_on
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .unwrap();
    let summary = advisor_on.telemetry_summary();
    telemetry::disable();

    assert_bit_identical(&base_serial, &on_serial, "dp serial on vs off");
    assert_bit_identical(&base_greedy, &on_greedy, "greedy on vs off");
    assert_bit_identical(&base_parallel, &on_parallel, "dp parallel on vs off");

    // And the enabled run must have actually observed the pipeline.
    let snap = telemetry::snapshot();
    snap.validate().unwrap();
    assert_eq!(snap.open_spans, 0);
    assert!(snap.last_span("advisor.recommend").is_some());
    assert!(snap.last_span("search.run").is_some());
    assert!(snap.last_span("search.worker").is_some(), "parallel workers traced");
    assert!(snap.last_span("calibrate.cell").is_some());
    assert!(snap.counter("search.cache.misses").unwrap_or(0) > 0);
    assert!(summary.enabled);
    assert!(summary.cache_misses > 0);
    assert!(summary.recommend_wall_ms.is_some());
    assert_eq!(summary.open_spans, 0);

    telemetry::reset();
}

#[test]
fn exporters_round_trip_through_the_calibrate_json_parser() {
    let _g = TELEMETRY_LOCK.lock().unwrap();
    telemetry::disable();
    telemetry::reset();
    telemetry::enable();

    static HITS: telemetry::Counter = telemetry::Counter::new("rt.hits");
    static RATIO: telemetry::Gauge = telemetry::Gauge::new("rt.ratio");
    static BAD: telemetry::Gauge = telemetry::Gauge::new("rt.nonfinite");
    static LAT: telemetry::Histogram = telemetry::Histogram::new("rt.latency_us");
    {
        let mut outer = telemetry::span("rt.outer");
        outer.set_attr("label", "needs \"escaping\"\n");
        let parent = outer.id();
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = telemetry::span_with_parent("rt.worker", parent);
                HITS.add(7);
                LAT.record_micros(123);
                LAT.record_micros(4_567);
            });
        });
        telemetry::advance_virtual_micros(42);
        RATIO.set(0.75);
        BAD.set(f64::NAN);
    }
    telemetry::disable();
    let snap = telemetry::snapshot();
    snap.validate().unwrap();

    // --- JSON dump round trip -------------------------------------------
    let dump = Json::parse(&snap.to_json()).expect("dump parses");
    let spans = dump.get("spans").and_then(Json::as_arr).unwrap();
    assert_eq!(spans.len(), snap.spans.len());
    let outer = spans
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("rt.outer"))
        .unwrap();
    assert_eq!(
        outer
            .get("attrs")
            .and_then(|a| a.get("label"))
            .and_then(Json::as_str),
        Some("needs \"escaping\"\n"),
        "attribute strings survive escaping"
    );
    let worker = spans
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("rt.worker"))
        .unwrap();
    assert_eq!(
        worker.get("parent").and_then(Json::as_f64),
        outer.get("id").and_then(Json::as_f64),
        "cross-thread parenting survives"
    );
    assert_eq!(
        dump.get("counters")
            .and_then(|c| c.get("rt.hits"))
            .and_then(Json::as_f64),
        Some(7.0)
    );
    assert_eq!(
        dump.get("gauges")
            .and_then(|g| g.get("rt.ratio"))
            .and_then(Json::as_f64),
        Some(0.75)
    );
    // Non-finite floats are exported as tagged strings, exactly the
    // convention dbvirt-calibrate's own serializer uses.
    assert_eq!(
        dump.get("gauges")
            .and_then(|g| g.get("rt.nonfinite"))
            .and_then(Json::as_str),
        Some("NaN")
    );
    let hist = dump.get("histograms").and_then(|h| h.get("rt.latency_us")).unwrap();
    assert_eq!(hist.get("count").and_then(Json::as_f64), Some(2.0));
    assert_eq!(hist.get("sum").and_then(Json::as_f64), Some(4_690.0));
    assert_eq!(dump.get("virtual_us").and_then(Json::as_f64), Some(42.0));

    // --- Chrome trace round trip ----------------------------------------
    let chrome = Json::parse(&snap.to_chrome_trace()).expect("chrome trace parses");
    let events = chrome.get("traceEvents").and_then(Json::as_arr).unwrap();
    let complete: Vec<&Json> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), snap.spans.len(), "one X event per span");
    for e in &complete {
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("ts").and_then(Json::as_f64).is_some());
        assert!(e.get("dur").and_then(Json::as_f64).is_some());
    }
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("C")),
        "counter events present"
    );

    telemetry::reset();
    let _ = TelemetrySummary::capture(); // smoke: capture works post-reset
}
