//! End-to-end contract tests for the online control loop: determinism of
//! the decision trace across search parallelism, stationary stability,
//! drift recovery against the clairvoyant oracle, and crash-freedom under
//! injected observation noise.

use dbvirt_controller::{
    account_regret, run_controller, ControllerConfig, ProblemTemplate, Scenario, VmTemplate,
    WorkloadProfile,
};
use dbvirt_core::SearchConfig;
use dbvirt_engine::Database;
use dbvirt_optimizer::LogicalPlan;
use dbvirt_storage::{DataType, Datum, Field, Schema, Tuple};
use dbvirt_vmm::fault::{FaultInjector, NoiseModel};
use dbvirt_vmm::MachineSpec;

fn tiny_db() -> Database {
    let mut db = Database::new();
    let t = db.create_table("t", Schema::new(vec![Field::new("a", DataType::Int)]));
    db.insert_rows(t, (0..10).map(|i| Tuple::new(vec![Datum::Int(i)])))
        .unwrap();
    db.analyze_all().unwrap();
    db
}

fn template(db: &Database, n: usize, machine: MachineSpec) -> ProblemTemplate<'_> {
    let t = db.table_id("t").unwrap();
    ProblemTemplate {
        machine,
        vms: (0..n)
            .map(|i| VmTemplate {
                name: format!("vm{i}"),
                db,
                base_query: LogicalPlan::scan(t),
            })
            .collect(),
    }
}

fn cpu_heavy() -> WorkloadProfile {
    WorkloadProfile {
        cpu_cycles: 2.0e8,
        cold_seq_reads: 20.0,
        cold_random_reads: 5.0,
        page_writes: 0.0,
        reread_seq: 40.0,
        reread_random: 10.0,
        working_set_pages: 800.0,
        queries_per_epoch: 4.0,
    }
}

fn io_heavy() -> WorkloadProfile {
    WorkloadProfile {
        cpu_cycles: 2.0e7,
        cold_seq_reads: 400.0,
        cold_random_reads: 60.0,
        page_writes: 20.0,
        reread_seq: 2000.0,
        reread_random: 300.0,
        working_set_pages: 6000.0,
        queries_per_epoch: 2.0,
    }
}

fn config() -> ControllerConfig {
    ControllerConfig::new(SearchConfig::for_workloads(8, 2))
}

fn drifting() -> Scenario {
    Scenario::drifting(
        "drifting",
        MachineSpec::tiny(),
        vec![cpu_heavy(), io_heavy()],
        12,
        vec![io_heavy(), cpu_heavy()],
        12,
        11,
    )
}

#[test]
fn decision_trace_is_bit_identical_across_parallelism_and_reruns() {
    let db = tiny_db();
    let template = template(&db, 2, MachineSpec::tiny());
    let scenario = drifting();
    let base = config();
    let reference = run_controller(&scenario, &template, &base)
        .unwrap()
        .trace_fingerprint();
    // Re-run with the identical config: the trace must replay exactly.
    let rerun = run_controller(&scenario, &template, &base)
        .unwrap()
        .trace_fingerprint();
    assert_eq!(reference, rerun, "identical inputs must replay identically");
    // Parallel what-if evaluation must not perturb a single decision.
    for parallelism in [2usize, 4, 0] {
        let cfg = ControllerConfig {
            search: base.search.with_parallelism(parallelism),
            ..base
        };
        let fp = run_controller(&scenario, &template, &cfg)
            .unwrap()
            .trace_fingerprint();
        assert_eq!(
            fp, reference,
            "decision trace diverged at parallelism {parallelism}"
        );
    }
}

#[test]
fn stationary_stream_places_once_and_holds() {
    let db = tiny_db();
    let template = template(&db, 2, MachineSpec::tiny());
    let scenario = Scenario::stationary(
        "stationary",
        MachineSpec::tiny(),
        vec![cpu_heavy(), io_heavy()],
        16,
        11,
    );
    let out = run_controller(&scenario, &template, &config()).unwrap();
    assert!(out.placement.is_some(), "warmup must end in a placement");
    assert!(
        out.switches.is_empty(),
        "a stationary stream must never be reconfigured"
    );
    assert_eq!(out.drift_detections, 0);
}

#[test]
fn drift_recovery_beats_holding_and_stays_near_the_oracle() {
    let db = tiny_db();
    let template = template(&db, 2, MachineSpec::tiny());
    let scenario = drifting();
    let cfg = config();
    let out = run_controller(&scenario, &template, &cfg).unwrap();
    assert!(!out.switches.is_empty(), "the flip must trigger a switch");
    let report = account_regret(&scenario, &template, &cfg, &out).unwrap();
    assert!(
        report.controller_cost < report.never_cost,
        "reconfiguring must beat holding the placement: {:.3}s vs {:.3}s",
        report.controller_cost,
        report.never_cost
    );
    assert!(
        report.oracle_cost <= report.controller_cost,
        "clairvoyance is a lower bound"
    );
    assert!(
        report.relative_regret <= 0.15,
        "regret must stay within 15% of clairvoyant, got {:.1}%",
        report.relative_regret * 100.0
    );
}

#[test]
fn noisy_observations_never_panic_the_loop() {
    let db = tiny_db();
    let template = template(&db, 2, MachineSpec::tiny());
    for seed in 0..6u64 {
        let scenario = drifting()
            .with_variability(0.1)
            .with_noise(FaultInjector::new(NoiseModel::realistic(0.05), seed));
        let out = run_controller(&scenario, &template, &config())
            .expect("noise perturbs observations, never the loop itself");
        assert_eq!(out.allocations.len(), scenario.total_epochs());
        assert!(out.total_cost.is_finite());
    }
}
