//! Cross-crate correctness: optimizer-planned executions must produce the
//! same results as a naive reference evaluator, for any plan choice and
//! any buffer-pool size.

use dbvirt::engine::{run_plan, AggExpr, AggFunc, CpuCosts, Database, Expr, JoinType};
use dbvirt::optimizer::{plan_query, JoinCondition, LogicalPlan, OptimizerParams};
use dbvirt::storage::{BufferPool, DataType, Datum, Field, Schema, Tuple};
use proptest::prelude::*;

/// Builds `t1(a, b, s)` with `n` rows and an index on `b`.
fn build_db(rows: &[(i64, i64, &str)]) -> Database {
    let mut db = Database::new();
    let t = db.create_table(
        "t1",
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("s", DataType::Str),
        ]),
    );
    db.insert_rows(
        t,
        rows.iter()
            .map(|(a, b, s)| Tuple::new(vec![Datum::Int(*a), Datum::Int(*b), Datum::str(*s)])),
    )
    .unwrap();
    db.create_index("t1_b", t, 1).unwrap();
    db.analyze_all().unwrap();
    db
}

/// Reference filter: plain iteration with `Expr::eval_bool`.
fn reference_filter(rows: &[(i64, i64, String)], pred: &Expr) -> Vec<(i64, i64, String)> {
    rows.iter()
        .filter(|(a, b, s)| {
            let t = Tuple::new(vec![Datum::Int(*a), Datum::Int(*b), Datum::Str(s.clone())]);
            pred.eval_bool(&t) == Some(true)
        })
        .cloned()
        .collect()
}

fn run(db: &mut Database, plan: &LogicalPlan, pool_pages: usize) -> Vec<Tuple> {
    let planned = plan_query(db, plan, &OptimizerParams::default()).unwrap();
    let mut pool = BufferPool::new(pool_pages);
    run_plan(
        db,
        &mut pool,
        &planned.physical,
        1 << 20,
        CpuCosts::default(),
    )
    .unwrap()
    .rows
}

#[test]
fn filtered_scan_matches_reference_for_every_pool_size() {
    let rows: Vec<(i64, i64, String)> = (0..3000)
        .map(|i| (i, (i * 7) % 100, format!("s{}", i % 13)))
        .collect();
    let borrowed: Vec<(i64, i64, &str)> =
        rows.iter().map(|(a, b, s)| (*a, *b, s.as_str())).collect();
    let mut db = build_db(&borrowed);
    let t = db.table_id("t1").unwrap();

    let pred = Expr::and(
        Expr::lt(Expr::col(1), Expr::int(40)),
        Expr::not_like(Expr::col(2), "s7"),
    );
    let expect = reference_filter(&rows, &pred);

    for pool_pages in [1, 4, 64, 4096] {
        let got = run(
            &mut db,
            &LogicalPlan::scan_filtered(t, pred.clone()),
            pool_pages,
        );
        assert_eq!(got.len(), expect.len(), "pool = {pool_pages} pages");
        for (tuple, (a, b, s)) in got.iter().zip(&expect) {
            assert_eq!(tuple.get(0).as_int(), Some(*a));
            assert_eq!(tuple.get(1).as_int(), Some(*b));
            assert_eq!(tuple.get(2).as_str(), Some(s.as_str()));
        }
    }
}

#[test]
fn join_matches_nested_loop_reference() {
    let mut db = Database::new();
    let left = db.create_table(
        "l",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]),
    );
    let right = db.create_table(
        "r",
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("w", DataType::Int),
        ]),
    );
    let left_rows: Vec<(i64, i64)> = (0..500).map(|i| (i % 50, i)).collect();
    let right_rows: Vec<(i64, i64)> = (0..200).map(|i| (i % 80, i * 10)).collect();
    db.insert_rows(
        left,
        left_rows
            .iter()
            .map(|(k, v)| Tuple::new(vec![Datum::Int(*k), Datum::Int(*v)])),
    )
    .unwrap();
    db.insert_rows(
        right,
        right_rows
            .iter()
            .map(|(k, w)| Tuple::new(vec![Datum::Int(*k), Datum::Int(*w)])),
    )
    .unwrap();
    db.analyze_all().unwrap();

    // Reference inner join.
    let mut expect: Vec<(i64, i64, i64, i64)> = Vec::new();
    for (lk, lv) in &left_rows {
        for (rk, rw) in &right_rows {
            if lk == rk {
                expect.push((*lk, *lv, *rk, *rw));
            }
        }
    }
    expect.sort_unstable();

    let plan = LogicalPlan::scan(left).join(
        LogicalPlan::scan(right),
        vec![JoinCondition {
            left_col: 0,
            right_col: 0,
        }],
    );
    let mut got: Vec<(i64, i64, i64, i64)> = run(&mut db, &plan, 64)
        .into_iter()
        .map(|t| {
            (
                t.get(0).as_int().unwrap(),
                t.get(1).as_int().unwrap(),
                t.get(2).as_int().unwrap(),
                t.get(3).as_int().unwrap(),
            )
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got, expect);
}

#[test]
fn semi_join_counts_match_reference() {
    let mut db = Database::new();
    let l = db.create_table("l", Schema::new(vec![Field::new("k", DataType::Int)]));
    let r = db.create_table("r", Schema::new(vec![Field::new("k", DataType::Int)]));
    db.insert_rows(l, (0..100).map(|i| Tuple::new(vec![Datum::Int(i)])))
        .unwrap();
    db.insert_rows(r, (0..300).map(|i| Tuple::new(vec![Datum::Int(i % 30)])))
        .unwrap();
    db.analyze_all().unwrap();

    let plan = LogicalPlan::scan(l).join_as(
        LogicalPlan::scan(r),
        vec![JoinCondition {
            left_col: 0,
            right_col: 0,
        }],
        JoinType::Semi,
    );
    let got = run(&mut db, &plan, 64);
    // Left keys 0..100; right keys 0..30 -> 30 matches, each emitted once.
    assert_eq!(got.len(), 30);
}

#[test]
fn aggregate_matches_hand_computation() {
    let rows: Vec<(i64, i64, String)> = (0..1000)
        .map(|i| (i, i % 10, format!("g{}", i % 4)))
        .collect();
    let borrowed: Vec<(i64, i64, &str)> =
        rows.iter().map(|(a, b, s)| (*a, *b, s.as_str())).collect();
    let mut db = build_db(&borrowed);
    let t = db.table_id("t1").unwrap();

    let plan = LogicalPlan::scan(t).aggregate(
        vec![2],
        vec![
            AggExpr::count_star("n"),
            AggExpr::new(AggFunc::Sum, Expr::col(0), "sum_a"),
            AggExpr::new(AggFunc::Min, Expr::col(0), "min_a"),
            AggExpr::new(AggFunc::Max, Expr::col(0), "max_a"),
        ],
    );
    let mut got = run(&mut db, &plan, 64);
    got.sort_by(|x, y| x.get(0).total_cmp(y.get(0)));
    assert_eq!(got.len(), 4);
    for (g, tuple) in got.iter().enumerate() {
        let members: Vec<i64> = (0..1000).filter(|i| (i % 4) as usize == g).collect();
        assert_eq!(tuple.get(0).as_str(), Some(format!("g{g}").as_str()));
        assert_eq!(tuple.get(1).as_int(), Some(members.len() as i64));
        assert_eq!(tuple.get(2).as_int(), Some(members.iter().sum::<i64>()));
        assert_eq!(tuple.get(3).as_int(), Some(members[0]));
        assert_eq!(tuple.get(4).as_int(), Some(*members.last().unwrap()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// For random data and a random range predicate, the planner may pick
    /// a sequential or an index scan — either way the result set matches
    /// the reference, and it does not depend on the buffer-pool size.
    #[test]
    fn prop_planned_scan_equals_reference(
        values in prop::collection::vec((0i64..200, 0i64..200), 50..400),
        lo in 0i64..200,
        span in 1i64..60,
    ) {
        let rows: Vec<(i64, i64, String)> = values
            .iter()
            .enumerate()
            .map(|(i, (a, b))| (*a, *b, format!("s{}", i % 5)))
            .collect();
        let borrowed: Vec<(i64, i64, &str)> =
            rows.iter().map(|(a, b, s)| (*a, *b, s.as_str())).collect();
        let mut db = build_db(&borrowed);
        let t = db.table_id("t1").unwrap();
        let pred = Expr::and(
            Expr::ge(Expr::col(1), Expr::int(lo)),
            Expr::lt(Expr::col(1), Expr::int(lo + span)),
        );
        let expect = reference_filter(&rows, &pred);
        let got_small = run(&mut db, &LogicalPlan::scan_filtered(t, pred.clone()), 2);
        let got_large = run(&mut db, &LogicalPlan::scan_filtered(t, pred), 1024);
        // Sort both sides (index scans return in key order, seq in heap order).
        let key = |t: &Tuple| {
            (
                t.get(0).as_int().unwrap(),
                t.get(1).as_int().unwrap(),
                t.get(2).as_str().unwrap().to_string(),
            )
        };
        let mut got_small: Vec<_> = got_small.iter().map(key).collect();
        let mut got_large: Vec<_> = got_large.iter().map(key).collect();
        let mut expect: Vec<_> = expect
            .into_iter()
            .collect();
        got_small.sort();
        got_large.sort();
        expect.sort();
        prop_assert_eq!(&got_small, &expect);
        prop_assert_eq!(&got_large, &expect);
    }
}
