//! Cross-crate invariants of the design subsystem: storage budgets hold
//! under any input, the joint loop's objective never rises, the LP bound
//! really is a lower bound on every feasible selection, and index access
//! paths return exactly what full scans return.

use dbvirt::calibrate::CalibrationGrid;
use dbvirt::core::{DesignProblem, WorkloadSpec};
use dbvirt::design::{
    enumerate_candidates, lower_bound, select_greedy, DesignAdvisor, DesignConfig, DesignPricer,
    VmPricer,
};
use dbvirt::engine::{run_plan, CpuCosts, Database, Expr};
use dbvirt::optimizer::{plan_query, LogicalPlan, OptimizerParams};
use dbvirt::storage::{BufferPool, DataType, Datum, Field, Schema, Tuple};
use dbvirt::vmm::MachineSpec;
use proptest::prelude::*;
use std::sync::OnceLock;

/// The design crate's test machine: memory-constrained so the calibrated
/// cost regime lets indexes beat cached scans at scarce cells.
fn small_machine() -> MachineSpec {
    MachineSpec {
        cores: 1,
        cycles_per_sec: 1.0e9,
        memory_bytes: 8 * 1024 * 1024,
        disk_seq_bytes_per_sec: 20.0 * 1024.0 * 1024.0,
        disk_random_iops: 100.0,
        page_size: 8192,
    }
}

/// Calibrating is expensive; every proptest case shares one grid.
fn grid() -> &'static CalibrationGrid {
    static GRID: OnceLock<CalibrationGrid> = OnceLock::new();
    GRID.get_or_init(|| {
        CalibrationGrid::calibrate(
            small_machine(),
            vec![0.25, 0.5, 0.75, 1.0],
            vec![0.25, 0.5, 0.75, 1.0],
            0.5,
        )
        .unwrap()
    })
}

fn two_col_db(n_rows: i64, modulus: i64) -> (Database, dbvirt::engine::TableId) {
    let mut db = Database::new();
    let t = db.create_table(
        "t",
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]),
    );
    db.insert_rows(
        t,
        (0..n_rows).map(|i| Tuple::new(vec![Datum::Int(i), Datum::Int(i % modulus)])),
    )
    .unwrap();
    db.analyze_all().unwrap();
    (db, t)
}

/// Config-priced objective of one index set, straight from the
/// definition: per query, the cheapest menu config contained in the set.
fn priced_objective(costs: &[Vec<f64>], members: &[Vec<Vec<usize>>], mask: u64) -> f64 {
    costs
        .iter()
        .zip(members)
        .map(|(qcosts, qk)| {
            qcosts
                .iter()
                .zip(qk)
                .filter(|(_, m)| m.iter().all(|&c| mask & (1 << c) != 0))
                .map(|(&c, _)| c)
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Greedy selection never exceeds the page budget, for any predicate
    /// mix, budget, and allocation cell — and its bookkeeping agrees with
    /// the candidate table.
    #[test]
    fn prop_budget_never_exceeded(
        keys in prop::collection::vec(0i64..5_000, 1..4),
        budget_indexes in 0u64..4,
        cpu in 1u32..4,
        mem in 1u32..4,
    ) {
        let (db, t) = two_col_db(5_000, 97);
        let queries: Vec<LogicalPlan> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let col = i % 2;
                LogicalPlan::scan_filtered(t, Expr::eq(Expr::col(col), Expr::int(k)))
            })
            .collect();
        let cands = enumerate_candidates(&db, &queries, 16);
        prop_assume!(!cands.is_empty());
        let per_index = cands.candidates[0].pages;
        let budget = per_index * budget_indexes;
        let vm = VmPricer::new(&db, &queries, cands, 0);
        let pricer = DesignPricer::new(grid(), 4, 0.5);
        let trace = select_greedy(&pricer, &vm, budget, cpu, mem).unwrap();
        prop_assert!(trace.pages_used <= budget, "{} > {budget}", trace.pages_used);
        let recomputed: u64 = vm
            .cands
            .candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| trace.mask & (1 << i) != 0)
            .map(|(_, c)| c.pages)
            .sum();
        prop_assert_eq!(trace.pages_used, recomputed);
        prop_assert!(trace.decisions.iter().all(|d| d.gain > 0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The joint loop's objective is monotone non-increasing across
    /// alternations, and joint never loses to either marginal.
    #[test]
    fn prop_alternation_monotone_and_joint_dominates(
        point_keys in prop::collection::vec(0i64..20_000, 1..4),
        scan_cut in 100i64..19_000,
    ) {
        let (db1, t1) = two_col_db(20_000, 100);
        let (db2, t2) = two_col_db(20_000, 100);
        let q1: Vec<LogicalPlan> = point_keys
            .iter()
            .map(|&k| LogicalPlan::scan_filtered(t1, Expr::eq(Expr::col(0), Expr::int(k))))
            .collect();
        let q2 = vec![LogicalPlan::scan_filtered(
            t2,
            Expr::lt(Expr::col(0), Expr::int(scan_cut)),
        )];
        let problem = DesignProblem::new(
            small_machine(),
            vec![
                WorkloadSpec::new("points".to_string(), &db1, q1),
                WorkloadSpec::new("scans".to_string(), &db2, q2),
            ],
        )
        .unwrap();
        let advisor = DesignAdvisor::new(grid(), DesignConfig::new(4, 2).with_budget(1024));
        let joint = advisor.advise(&problem).unwrap();
        for w in joint.alternation_objectives.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12, "objective rose: {} -> {}", w[0], w[1]);
        }
        let index_only = advisor.advise_index_only(&problem).unwrap();
        let alloc_only = advisor.advise_allocation_only(&problem).unwrap();
        prop_assert!(joint.objective <= index_only.objective + 1e-12);
        prop_assert!(joint.objective <= alloc_only.objective + 1e-12);
        prop_assert!(joint.lp_bound <= joint.objective + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Lagrangian bound is below the config-priced objective of EVERY
    /// feasible selection, not just the optimum.
    #[test]
    fn prop_lp_bound_below_every_feasible_selection(
        raw_costs in prop::collection::vec(0.1f64..10.0, 21..22),
        sizes in prop::collection::vec(1u64..10, 3..4),
        budget in 0u64..20,
        n_queries in 1usize..4,
    ) {
        // Full menu over 3 candidates: ∅, singletons, pairs.
        let menu: Vec<Vec<usize>> =
            vec![vec![], vec![0], vec![1], vec![2], vec![0, 1], vec![0, 2], vec![1, 2]];
        let mut costs = Vec::new();
        let mut members = Vec::new();
        for q in 0..n_queries {
            costs.push(raw_costs[q * 7..(q + 1) * 7].to_vec());
            members.push(menu.clone());
        }
        // Best feasible selection = the incumbent the ascent steps toward.
        let mut incumbent = f64::INFINITY;
        for mask in 0u64..8 {
            let pages: u64 = (0..3).filter(|&c| mask & (1 << c) != 0).map(|c| sizes[c]).sum();
            if pages <= budget {
                incumbent = incumbent.min(priced_objective(&costs, &members, mask));
            }
        }
        let lb = lower_bound(&costs, &members, &sizes, budget, incumbent, 300);
        for mask in 0u64..8 {
            let pages: u64 = (0..3).filter(|&c| mask & (1 << c) != 0).map(|c| sizes[c]).sum();
            if pages > budget {
                continue;
            }
            let obj = priced_objective(&costs, &members, mask);
            prop_assert!(
                lb.bound <= obj + 1e-9,
                "bound {} exceeds feasible selection {mask:b} at {obj}",
                lb.bound
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A database with a secondary index returns exactly the rows the
    /// scan-only database returns, whatever access path the planner picks.
    #[test]
    fn prop_index_path_equals_full_scan(
        rows in prop::collection::vec((0i64..300, 0i64..300), 50..300),
        lo in 0i64..300,
        span in 1i64..80,
        eq_key in 0i64..300,
    ) {
        let build = |with_index: bool| {
            let mut db = Database::new();
            let t = db.create_table(
                "t",
                Schema::new(vec![
                    Field::new("a", DataType::Int),
                    Field::new("b", DataType::Int),
                ]),
            );
            db.insert_rows(
                t,
                rows.iter().map(|&(a, b)| Tuple::new(vec![Datum::Int(a), Datum::Int(b)])),
            )
            .unwrap();
            if with_index {
                db.create_index("t_b", t, 1).unwrap();
            }
            db.analyze_all().unwrap();
            (db, t)
        };
        // Index-friendly parameters so the indexed database actually takes
        // the index path when one exists.
        let index_params = OptimizerParams {
            effective_cache_size_pages: 1e6,
            random_page_cost: 1.0,
            ..OptimizerParams::default()
        };
        for pred in [
            Expr::and(
                Expr::ge(Expr::col(1), Expr::int(lo)),
                Expr::lt(Expr::col(1), Expr::int(lo + span)),
            ),
            Expr::eq(Expr::col(1), Expr::int(eq_key)),
        ] {
            let plan = |db: &mut Database, t, params: &OptimizerParams| {
                let planned =
                    plan_query(db, &LogicalPlan::scan_filtered(t, pred.clone()), params).unwrap();
                let mut pool = BufferPool::new(256);
                let mut rows = run_plan(db, &mut pool, &planned.physical, 1 << 20, CpuCosts::default())
                    .unwrap()
                    .rows;
                rows.sort_by(|x, y| {
                    x.get(0)
                        .total_cmp(y.get(0))
                        .then(x.get(1).total_cmp(y.get(1)))
                });
                rows
            };
            let (mut db_scan, t_scan) = build(false);
            let (mut db_idx, t_idx) = build(true);
            let scan_rows = plan(&mut db_scan, t_scan, &OptimizerParams::default());
            let idx_rows = plan(&mut db_idx, t_idx, &index_params);
            prop_assert_eq!(&scan_rows, &idx_rows);
        }
    }
}
