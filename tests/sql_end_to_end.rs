//! Integration: SQL text and hand-built logical plans produce identical
//! results through the full optimize-and-execute pipeline, on the TPC-H
//! database.

use dbvirt::engine::{run_plan, CpuCosts, Database};
use dbvirt::optimizer::{plan_query, LogicalPlan, OptimizerParams};
use dbvirt::sql::parse_query;
use dbvirt::storage::{BufferPool, Tuple};
use dbvirt::tpch::{TpchConfig, TpchDb, TpchQuery};

fn execute(db: &mut Database, plan: &LogicalPlan) -> Vec<Tuple> {
    let planned = plan_query(db, plan, &OptimizerParams::default()).unwrap();
    let mut pool = BufferPool::new(4096);
    run_plan(
        db,
        &mut pool,
        &planned.physical,
        4 << 20,
        CpuCosts::default(),
    )
    .unwrap()
    .rows
}

/// TPC-H Q6 written as SQL must agree with the hand-built plan.
#[test]
fn sql_q6_matches_handbuilt_plan() {
    let mut t = TpchDb::generate(TpchConfig::tiny()).unwrap();
    let hand = TpchQuery::Q6.plan(&t);
    let hand_result = execute(&mut t.db, &hand);

    let sql = "SELECT SUM(l_extendedprice * l_discount) AS revenue \
               FROM lineitem \
               WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
                 AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";
    let parsed = parse_query(sql, &t.db).unwrap();
    let sql_result = execute(&mut t.db, &parsed);

    assert_eq!(hand_result.len(), 1);
    assert_eq!(sql_result.len(), 1);
    let (a, b) = (
        hand_result[0].get(0).as_float().unwrap(),
        sql_result[0].get(0).as_float().unwrap(),
    );
    assert!(
        (a - b).abs() < 1e-6 * a.abs().max(1.0),
        "hand-built {a} vs SQL {b}"
    );
}

/// TPC-H Q1's grouping written as SQL: same groups, same sums.
#[test]
fn sql_q1_style_aggregation_matches() {
    let mut t = TpchDb::generate(TpchConfig::tiny()).unwrap();
    let sql = "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, COUNT(*) AS n \
               FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
               GROUP BY l_returnflag, l_linestatus \
               ORDER BY l_returnflag, l_linestatus";
    let parsed = parse_query(sql, &t.db).unwrap();
    let via_sql = execute(&mut t.db, &parsed);

    let hand = TpchQuery::Q1.plan(&t);
    let via_hand = execute(&mut t.db, &hand);
    assert_eq!(via_sql.len(), via_hand.len(), "same group count");
    for (s, h) in via_sql.iter().zip(&via_hand) {
        assert_eq!(s.get(0), h.get(0), "returnflag");
        assert_eq!(s.get(1), h.get(1), "linestatus");
        // Q1's sum_qty is the hand plan's column 2.
        assert_eq!(s.get(2), h.get(2), "sum_qty");
        // count(*) is the hand plan's last column.
        assert_eq!(s.get(3), h.get(9), "count");
    }
}

/// A Q13-flavoured LEFT JOIN distribution via SQL executes and respects
/// the left-join semantics (every customer is counted somewhere).
#[test]
fn sql_left_join_distribution() {
    let mut t = TpchDb::generate(TpchConfig::tiny()).unwrap();
    let sql = "SELECT c.c_custkey, COUNT(o.o_orderkey) AS c_count \
               FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey \
               GROUP BY c.c_custkey";
    let parsed = parse_query(sql, &t.db).unwrap();
    let rows = execute(&mut t.db, &parsed);
    let n_customers = t.db.table(t.customer).stats.as_ref().unwrap().n_rows;
    assert_eq!(rows.len() as u64, n_customers);
    let total_orders: i64 = rows.iter().map(|r| r.get(1).as_int().unwrap()).sum();
    let n_orders = t.db.table(t.orders).stats.as_ref().unwrap().n_rows;
    assert_eq!(total_orders as u64, n_orders, "every order counted once");
}

/// Semi-join-free SQL subset still covers a four-table join.
#[test]
fn sql_multi_join_executes() {
    let mut t = TpchDb::generate(TpchConfig::tiny()).unwrap();
    let sql = "SELECT n.n_name, COUNT(*) AS orders \
               FROM customer c \
               JOIN orders o ON c.c_custkey = o.o_custkey \
               JOIN nation n ON c.c_nationkey = n.n_nationkey \
               JOIN region r ON n.n_regionkey = r.r_regionkey \
               WHERE r.r_name = 'ASIA' \
               GROUP BY n.n_name ORDER BY orders DESC";
    let parsed = parse_query(sql, &t.db).unwrap();
    let rows = execute(&mut t.db, &parsed);
    assert!(!rows.is_empty());
    assert!(rows.len() <= 5, "at most the five ASIA nations");
    let counts: Vec<i64> = rows.iter().map(|r| r.get(1).as_int().unwrap()).collect();
    assert!(counts.windows(2).all(|w| w[0] >= w[1]));
}

/// The SQL path and the what-if mode compose: a SQL query can be priced
/// under a calibrated parameter vector.
#[test]
fn sql_plans_are_whatif_priceable() {
    let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
    let sql = "SELECT COUNT(*) AS n FROM orders WHERE o_orderdate >= DATE '1995-06-01'";
    let parsed = parse_query(sql, &t.db).unwrap();
    let mut cheap_cpu = OptimizerParams::postgres_defaults();
    let mut dear_cpu = OptimizerParams::postgres_defaults();
    dear_cpu.cpu_tuple_cost *= 4.0;
    dear_cpu.cpu_operator_cost *= 4.0;
    cheap_cpu.effective_cache_size_pages = 1.0;
    dear_cpu.effective_cache_size_pages = 1.0;
    let a = dbvirt::optimizer::whatif::estimate_query_seconds(&t.db, &parsed, &cheap_cpu).unwrap();
    let b = dbvirt::optimizer::whatif::estimate_query_seconds(&t.db, &parsed, &dear_cpu).unwrap();
    assert!(b > a, "dearer CPU must raise the estimate: {a} vs {b}");
}
