//! Integration: the calibration pipeline recovers the physical laws the
//! VMM substrate implements — without ever reading the engine's hidden
//! cycle constants.

use dbvirt::calibrate::runner::calibrate_with;
use dbvirt::calibrate::ProbeDb;
use dbvirt::vmm::{MachineSpec, ResourceVector};

fn shares(cpu: f64, mem: f64, disk: f64) -> ResourceVector {
    ResourceVector::from_fractions(cpu, mem, disk).unwrap()
}

#[test]
fn cpu_parameters_scale_inversely_with_cpu_share() {
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let mut at = |cpu: f64| {
        calibrate_with(&mut pdb, spec, shares(cpu, 0.5, 0.5))
            .unwrap()
            .params
    };
    let p25 = at(0.25);
    let p50 = at(0.5);
    let p75 = at(0.75);
    // The CPU parameters are ratios to the (CPU-share-independent) seq
    // page fetch, so they should scale almost exactly as 1/share.
    for (name, f) in [
        (
            "cpu_tuple_cost",
            &(|p: &dbvirt::optimizer::OptimizerParams| p.cpu_tuple_cost) as &dyn Fn(_) -> f64,
        ),
        (
            "cpu_operator_cost",
            &|p: &dbvirt::optimizer::OptimizerParams| p.cpu_operator_cost,
        ),
        (
            "cpu_index_tuple_cost",
            &|p: &dbvirt::optimizer::OptimizerParams| p.cpu_index_tuple_cost,
        ),
    ] {
        let r1 = f(&p25) / f(&p50);
        let r2 = f(&p50) / f(&p75);
        assert!((r1 - 2.0).abs() < 0.25, "{name}: 25->50 ratio {r1}");
        assert!((r2 - 1.5).abs() < 0.2, "{name}: 50->75 ratio {r2}");
    }
}

#[test]
fn unit_seconds_scales_inversely_with_disk_share() {
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let mut at = |disk: f64| {
        calibrate_with(&mut pdb, spec, shares(0.5, 0.5, disk))
            .unwrap()
            .params
            .unit_seconds
    };
    let u25 = at(0.25);
    let u50 = at(0.5);
    let u75 = at(0.75);
    assert!((u25 / u50 - 2.0).abs() < 0.15, "{u25} vs {u50}");
    assert!((u50 / u75 - 1.5).abs() < 0.15, "{u50} vs {u75}");
}

#[test]
fn random_to_sequential_ratio_reflects_the_simulated_disk() {
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let p = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5))
        .unwrap()
        .params;
    // Physical truth: one random I/O takes 1/130 s, one sequential page
    // ~98 us (plus a little CPU); ratio ~60-90 for this disk. The
    // calibrated ratio should land in that physical ballpark — far from
    // PostgreSQL's cache-optimistic default of 4.
    let physical = spec.random_page_seconds() / spec.seq_page_seconds();
    assert!(
        p.random_page_cost > physical * 0.5 && p.random_page_cost < physical * 1.5,
        "calibrated {} vs physical {}",
        p.random_page_cost,
        physical
    );
}

#[test]
fn fit_quality_is_tight_across_the_share_space() {
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    for cpu in [0.25, 0.5, 0.75] {
        for disk in [0.25, 0.75] {
            let cal = calibrate_with(&mut pdb, spec, shares(cpu, 0.5, disk)).unwrap();
            let scale = cal.measured_seconds.iter().fold(0.0f64, |a, &b| a.max(b));
            assert!(
                cal.rms_residual_seconds < 0.05 * scale,
                "cpu {cpu} disk {disk}: rms {} vs scale {scale}",
                cal.rms_residual_seconds
            );
        }
    }
}

#[test]
fn calibration_is_deterministic() {
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let a = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5)).unwrap();
    let b = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5)).unwrap();
    assert_eq!(a.params, b.params);
    assert_eq!(a.measured_seconds, b.measured_seconds);
}
