//! Integration: the calibration pipeline recovers the physical laws the
//! VMM substrate implements — without ever reading the engine's hidden
//! cycle constants — and keeps recovering them when the measurement path
//! is noisy, flaky, or outright hostile.

use dbvirt::calibrate::runner::{calibrate_with, calibrate_with_config};
use dbvirt::calibrate::{CalibrationConfig, CalibrationGrid, ProbeDb};
use dbvirt::vmm::{FaultInjector, MachineSpec, NoiseModel, ResourceVector};

fn shares(cpu: f64, mem: f64, disk: f64) -> ResourceVector {
    ResourceVector::from_fractions(cpu, mem, disk).unwrap()
}

#[test]
fn cpu_parameters_scale_inversely_with_cpu_share() {
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let mut at = |cpu: f64| {
        calibrate_with(&mut pdb, spec, shares(cpu, 0.5, 0.5))
            .unwrap()
            .params
    };
    let p25 = at(0.25);
    let p50 = at(0.5);
    let p75 = at(0.75);
    // The CPU parameters are ratios to the (CPU-share-independent) seq
    // page fetch, so they should scale almost exactly as 1/share.
    for (name, f) in [
        (
            "cpu_tuple_cost",
            &(|p: &dbvirt::optimizer::OptimizerParams| p.cpu_tuple_cost) as &dyn Fn(_) -> f64,
        ),
        (
            "cpu_operator_cost",
            &|p: &dbvirt::optimizer::OptimizerParams| p.cpu_operator_cost,
        ),
        (
            "cpu_index_tuple_cost",
            &|p: &dbvirt::optimizer::OptimizerParams| p.cpu_index_tuple_cost,
        ),
    ] {
        let r1 = f(&p25) / f(&p50);
        let r2 = f(&p50) / f(&p75);
        assert!((r1 - 2.0).abs() < 0.25, "{name}: 25->50 ratio {r1}");
        assert!((r2 - 1.5).abs() < 0.2, "{name}: 50->75 ratio {r2}");
    }
}

#[test]
fn unit_seconds_scales_inversely_with_disk_share() {
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let mut at = |disk: f64| {
        calibrate_with(&mut pdb, spec, shares(0.5, 0.5, disk))
            .unwrap()
            .params
            .unit_seconds
    };
    let u25 = at(0.25);
    let u50 = at(0.5);
    let u75 = at(0.75);
    assert!((u25 / u50 - 2.0).abs() < 0.15, "{u25} vs {u50}");
    assert!((u50 / u75 - 1.5).abs() < 0.15, "{u50} vs {u75}");
}

#[test]
fn random_to_sequential_ratio_reflects_the_simulated_disk() {
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let p = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5))
        .unwrap()
        .params;
    // Physical truth: one random I/O takes 1/130 s, one sequential page
    // ~98 us (plus a little CPU); ratio ~60-90 for this disk. The
    // calibrated ratio should land in that physical ballpark — far from
    // PostgreSQL's cache-optimistic default of 4.
    let physical = spec.random_page_seconds() / spec.seq_page_seconds();
    assert!(
        p.random_page_cost > physical * 0.5 && p.random_page_cost < physical * 1.5,
        "calibrated {} vs physical {}",
        p.random_page_cost,
        physical
    );
}

#[test]
fn fit_quality_is_tight_across_the_share_space() {
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    for cpu in [0.25, 0.5, 0.75] {
        for disk in [0.25, 0.75] {
            let cal = calibrate_with(&mut pdb, spec, shares(cpu, 0.5, disk)).unwrap();
            let scale = cal.measured_seconds.iter().fold(0.0f64, |a, &b| a.max(b));
            assert!(
                cal.rms_residual_seconds < 0.05 * scale,
                "cpu {cpu} disk {disk}: rms {} vs scale {scale}",
                cal.rms_residual_seconds
            );
        }
    }
}

#[test]
fn calibration_is_deterministic() {
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let a = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5)).unwrap();
    let b = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5)).unwrap();
    assert_eq!(a.params, b.params);
    assert_eq!(a.measured_seconds, b.measured_seconds);
}

/// True if `a` and `b` agree within a relative factor of `tol`.
fn within(a: f64, b: f64, tol: f64) -> bool {
    a > 0.0 && b > 0.0 && a / b < 1.0 + tol && b / a < 1.0 + tol
}

#[test]
fn parameters_survive_ten_percent_jitter_across_seeds() {
    // Seeded property sweep: under ≤10% multiplicative jitter, the robust
    // loop (5-trial median + outlier screening) must land within the
    // documented tolerances of the noise-free fit for every seed — no
    // cherry-picking.
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let clean = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5))
        .unwrap()
        .params;
    for seed in 0..10u64 {
        let injector = FaultInjector::new(NoiseModel::uniform_jitter(0.10), seed);
        let cfg = CalibrationConfig::robust().with_injector(injector);
        let noisy = calibrate_with_config(&mut pdb, spec, shares(0.5, 0.5, 0.5), &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let p = noisy.params;
        assert!(
            within(p.unit_seconds, clean.unit_seconds, 0.15),
            "seed {seed}: unit_seconds {} vs {}",
            p.unit_seconds,
            clean.unit_seconds
        );
        assert!(
            within(p.random_page_cost, clean.random_page_cost, 0.30),
            "seed {seed}: random_page_cost {} vs {}",
            p.random_page_cost,
            clean.random_page_cost
        );
        assert!(
            within(p.cpu_tuple_cost, clean.cpu_tuple_cost, 0.50),
            "seed {seed}: cpu_tuple_cost {} vs {}",
            p.cpu_tuple_cost,
            clean.cpu_tuple_cost
        );
    }
}

#[test]
fn transient_failures_recover_by_retry_across_seeds() {
    // Failures only (no measurement noise): whatever survives retry is
    // exact, so every seed must reproduce the clean parameters bit for
    // bit while the report shows the retries that made it possible.
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let clean = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5))
        .unwrap()
        .params;
    for seed in 0..10u64 {
        let injector = FaultInjector::new(NoiseModel::none().with_failures(0.3), seed);
        let cfg = CalibrationConfig::robust().with_injector(injector);
        let cal = calibrate_with_config(&mut pdb, spec, shares(0.5, 0.5, 0.5), &cfg)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(cal.report.dropped_probes, 0, "seed {seed}: {}", cal.report);
        assert!(cal.report.total_retries() > 0, "seed {seed}: {}", cal.report);
        assert_eq!(
            cal.params.unit_seconds.to_bits(),
            clean.unit_seconds.to_bits(),
            "seed {seed}"
        );
    }
}

#[test]
fn grid_sweep_under_realistic_noise_completes_with_health_accounting() {
    // The acceptance scenario: a full grid sweep under the composite
    // fault model (jitter + heavy-tailed spikes + transient failures +
    // timeouts) must finish without a panic, stay within tolerance of
    // the noise-free sweep on every non-degraded cell, and account for
    // the recovery work in the health summary.
    let machine = MachineSpec::paper_testbed();
    let cpu_axis = vec![0.25, 0.5, 0.75];
    let mem_axis = vec![0.25, 0.75];
    let clean = CalibrationGrid::calibrate(machine, cpu_axis.clone(), mem_axis.clone(), 0.5)
        .unwrap();
    for seed in 1..=3u64 {
        let injector = FaultInjector::new(NoiseModel::realistic(0.05), seed);
        let rcfg = CalibrationConfig::robust().with_injector(injector);
        let noisy = CalibrationGrid::calibrate_with_config(
            machine,
            cpu_axis.clone(),
            mem_axis.clone(),
            0.5,
            &rcfg,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let health = noisy.health();
        assert!(
            health.total_retries > 0,
            "seed {seed}: 5% failure rate must cause retries: {health}"
        );
        for (c, _) in cpu_axis.iter().enumerate() {
            for (m, _) in mem_axis.iter().enumerate() {
                let report = noisy.report_at(c, m);
                if report.degraded {
                    continue; // interpolated cells carry their own flag
                }
                let p = noisy.at_point(c, m);
                let q = clean.at_point(c, m);
                assert!(
                    within(p.unit_seconds, q.unit_seconds, 0.15),
                    "seed {seed} cell ({c},{m}): unit_seconds {} vs {} ({report})",
                    p.unit_seconds,
                    q.unit_seconds
                );
                assert!(
                    within(p.random_page_cost, q.random_page_cost, 0.40),
                    "seed {seed} cell ({c},{m}): random_page_cost {} vs {}",
                    p.random_page_cost,
                    q.random_page_cost
                );
            }
        }
    }
}

#[test]
fn forced_singular_fit_takes_the_ridge_path_not_a_panic() {
    // condition_limit = 0 declares every system "too ill-conditioned":
    // the sweep must route through the Tikhonov ridge, flag it, and still
    // land on the plain solution (λ is tiny).
    let spec = MachineSpec::paper_testbed();
    let mut pdb = ProbeDb::build().unwrap();
    let clean = calibrate_with(&mut pdb, spec, shares(0.5, 0.5, 0.5)).unwrap();
    let cfg = CalibrationConfig {
        condition_limit: 0.0,
        ..CalibrationConfig::robust()
    };
    let ridged = calibrate_with_config(&mut pdb, spec, shares(0.5, 0.5, 0.5), &cfg).unwrap();
    assert!(ridged.report.used_ridge);
    assert!(!ridged.report.is_clean());
    assert!(within(
        ridged.params.unit_seconds,
        clean.params.unit_seconds,
        1e-3
    ));
}
