//! Integration: the calibrated what-if model ranks allocations the same
//! way actual (simulated) execution does — the property the paper's
//! Section 6 experiment establishes and the design search depends on.

use dbvirt::calibrate::CalibrationGrid;
use dbvirt::core::measure::measure_workload_seconds;
use dbvirt::optimizer::whatif::estimate_workload_seconds;
use dbvirt::tpch::{TpchConfig, TpchDb, TpchQuery};
use dbvirt::vmm::{MachineSpec, ResourceVector};

/// The memory-scarce experiment machine (same shape as the bench harness).
fn machine() -> MachineSpec {
    MachineSpec {
        memory_bytes: 32 * 1024 * 1024,
        disk_seq_bytes_per_sec: 25.0 * 1024.0 * 1024.0,
        disk_random_iops: 100.0,
        ..MachineSpec::paper_testbed()
    }
}

fn ranking(values: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    idx
}

#[test]
fn estimated_and_measured_rankings_agree_for_q4_and_q13() {
    let machine = machine();
    let mut t = TpchDb::generate(TpchConfig::experiment()).unwrap();
    let cpu_points = vec![0.25, 0.5, 0.75];
    let grid = CalibrationGrid::calibrate(machine, cpu_points.clone(), vec![0.5], 0.5).unwrap();

    for q in [TpchQuery::Q4, TpchQuery::Q13] {
        let logical = vec![q.plan(&t), q.plan(&t)]; // two copies: steady state
        let mut est = Vec::new();
        let mut act = Vec::new();
        for &cpu in &cpu_points {
            let shares = ResourceVector::from_fractions(cpu, 0.5, 0.5).unwrap();
            let params = grid.params_for(shares).unwrap();
            est.push(estimate_workload_seconds(&t.db, &logical, &params).unwrap());
            act.push(measure_workload_seconds(&mut t.db, &logical, machine, shares).unwrap());
        }
        assert_eq!(
            ranking(&est),
            ranking(&act),
            "{q}: estimated {est:?} vs measured {act:?}"
        );
        // More CPU never makes anything slower.
        assert!(est.windows(2).all(|w| w[0] >= w[1]), "{q} est {est:?}");
        assert!(act.windows(2).all(|w| w[0] >= w[1]), "{q} act {act:?}");
    }
}

#[test]
fn q13_is_more_cpu_sensitive_than_q4_in_both_views() {
    let machine = machine();
    let mut t = TpchDb::generate(TpchConfig::experiment()).unwrap();
    let grid = CalibrationGrid::calibrate(machine, vec![0.25, 0.75], vec![0.5], 0.5).unwrap();

    let sensitivity = |vals: &[f64]| vals[0] / vals[1]; // t(25%) / t(75%)
    let mut est_sens = Vec::new();
    let mut act_sens = Vec::new();
    for q in [TpchQuery::Q4, TpchQuery::Q13] {
        let logical = vec![q.plan(&t), q.plan(&t)];
        let mut est = Vec::new();
        let mut act = Vec::new();
        for cpu in [0.25, 0.75] {
            let shares = ResourceVector::from_fractions(cpu, 0.5, 0.5).unwrap();
            let params = grid.params_for(shares).unwrap();
            est.push(estimate_workload_seconds(&t.db, &logical, &params).unwrap());
            act.push(measure_workload_seconds(&mut t.db, &logical, machine, shares).unwrap());
        }
        est_sens.push(sensitivity(&est));
        act_sens.push(sensitivity(&act));
    }
    // The paper's Figure 4 contrast: Q13 (index 1) much more sensitive
    // than Q4 (index 0), in estimates and in measurements.
    assert!(
        est_sens[1] > est_sens[0] + 0.3,
        "estimated sensitivities: Q4 {} vs Q13 {}",
        est_sens[0],
        est_sens[1]
    );
    assert!(
        act_sens[1] > act_sens[0] + 0.3,
        "measured sensitivities: Q4 {} vs Q13 {}",
        act_sens[0],
        act_sens[1]
    );
}

#[test]
fn memory_share_matters_to_both_views_for_cacheable_workloads() {
    let machine = machine();
    let mut t = TpchDb::generate(TpchConfig::experiment()).unwrap();
    let grid = CalibrationGrid::calibrate(machine, vec![0.5], vec![0.125, 0.75], 0.5).unwrap();
    // Q13's working set (orders + customer) fits a 75% cache but not a
    // 12.5% one on this machine at tiny scale.
    let logical = vec![TpchQuery::Q13.plan(&t), TpchQuery::Q13.plan(&t)];
    let mut est = Vec::new();
    let mut act = Vec::new();
    for mem in [0.125, 0.75] {
        let shares = ResourceVector::from_fractions(0.5, mem, 0.5).unwrap();
        let params = grid.params_for(shares).unwrap();
        est.push(estimate_workload_seconds(&t.db, &logical, &params).unwrap());
        act.push(measure_workload_seconds(&mut t.db, &logical, machine, shares).unwrap());
    }
    assert!(
        est[0] > est[1] * 1.1,
        "estimates should favor more memory: {est:?}"
    );
    assert!(
        act[0] > act[1] * 1.1,
        "measurements should favor more memory: {act:?}"
    );
}
