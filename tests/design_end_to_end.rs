//! Integration: the paper's Figure 5 scenario and the full advisor
//! pipeline, end to end.

use dbvirt::core::measure::measure_concurrent_seconds;
use dbvirt::core::{
    metrics, CalibratedCostModel, DesignProblem, SearchAlgorithm, VirtualizationAdvisor,
    WorkloadSpec,
};
use dbvirt::tpch::{TpchConfig, TpchDb, TpchQuery, Workload};
use dbvirt::vmm::sched::SchedMode;
use dbvirt::vmm::{AllocationMatrix, MachineSpec, ResourceVector};

fn machine() -> MachineSpec {
    MachineSpec {
        memory_bytes: 32 * 1024 * 1024,
        disk_seq_bytes_per_sec: 25.0 * 1024.0 * 1024.0,
        disk_random_iops: 100.0,
        ..MachineSpec::paper_testbed()
    }
}

#[test]
fn figure5_scenario_shape_holds() {
    let machine = machine();
    let mut t1 = TpchDb::generate(TpchConfig::tiny()).unwrap();
    let mut t2 = TpchDb::generate(TpchConfig::tiny()).unwrap();
    let w1 = Workload::compose(&t1, &[(TpchQuery::Q4, 1)]);
    let w2 = Workload::compose(&t2, &[(TpchQuery::Q13, 8)]);

    let default_alloc = AllocationMatrix::equal_split(2).unwrap();
    let skewed = AllocationMatrix::new(vec![
        ResourceVector::from_fractions(0.25, 0.5, 0.5).unwrap(),
        ResourceVector::from_fractions(0.75, 0.5, 0.5).unwrap(),
    ])
    .unwrap();

    let run = |t1: &mut TpchDb, t2: &mut TpchDb, alloc: &AllocationMatrix| {
        measure_concurrent_seconds(
            &mut [&mut t1.db, &mut t2.db],
            &[&w1.queries, &w2.queries],
            machine,
            alloc,
            SchedMode::Capped,
        )
        .unwrap()
    };
    let base = run(&mut t1, &mut t2, &default_alloc);
    let skew = run(&mut t1, &mut t2, &skewed);

    // The CPU-bound workload improves noticeably...
    let q13_improvement = 1.0 - skew[1] / base[1];
    assert!(
        q13_improvement > 0.15,
        "Q13 workload improvement only {:.1}%",
        q13_improvement * 100.0
    );
    // ...without (much) hurting the I/O-bound one.
    let q4_penalty = skew[0] / base[0] - 1.0;
    assert!(
        q4_penalty < 0.15,
        "Q4 workload hurt by {:.1}%",
        q4_penalty * 100.0
    );
}

#[test]
fn advisor_end_to_end_beats_or_ties_equal_split() {
    let machine = machine();
    let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
    let w_io = Workload::compose(&t, &[(TpchQuery::Q4, 1)]);
    let w_cpu = Workload::compose(&t, &[(TpchQuery::Q13, 6)]);
    let problem = DesignProblem::new(
        machine,
        vec![
            WorkloadSpec::new(w_io.name.clone(), &t.db, w_io.queries.clone()),
            WorkloadSpec::new(w_cpu.name.clone(), &t.db, w_cpu.queries.clone()),
        ],
    )
    .unwrap();

    let advisor = VirtualizationAdvisor::calibrate(machine, 2, 4).unwrap();
    let model = CalibratedCostModel::new(advisor.grid());
    let equal: f64 = metrics::equal_split_costs(&problem, &model)
        .unwrap()
        .iter()
        .sum();

    let dp = advisor
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .unwrap();
    let ex = advisor
        .recommend(&problem, SearchAlgorithm::Exhaustive)
        .unwrap();
    let greedy = advisor
        .recommend(&problem, SearchAlgorithm::Greedy)
        .unwrap();

    assert!(dp.total_cost <= equal + 1e-9);
    assert!(greedy.total_cost <= equal + 1e-9);
    assert!(
        (dp.total_cost - ex.total_cost).abs() < 1e-9,
        "DP {} vs exhaustive {}",
        dp.total_cost,
        ex.total_cost
    );
    // The CPU-bound workload never ends up with less CPU than the
    // I/O-bound one.
    assert!(dp.allocation.row(1).cpu() >= dp.allocation.row(0).cpu());
    // All recommendations are feasible allocations.
    assert!(
        dp.allocation.is_fully_utilized()
            || dp.allocation.column_sum(dbvirt::vmm::ResourceKind::Cpu) <= 1.0 + 1e-9
    );
}

#[test]
fn homogeneous_workloads_get_the_equal_split() {
    let machine = machine();
    let t = TpchDb::generate(TpchConfig::tiny()).unwrap();
    let w = Workload::compose(&t, &[(TpchQuery::Q6, 2)]);
    let problem = DesignProblem::new(
        machine,
        vec![
            WorkloadSpec::new("a", &t.db, w.queries.clone()),
            WorkloadSpec::new("b", &t.db, w.queries.clone()),
        ],
    )
    .unwrap();
    let advisor = VirtualizationAdvisor::calibrate(machine, 2, 4).unwrap();
    let rec = advisor
        .recommend(&problem, SearchAlgorithm::DynamicProgramming)
        .unwrap();
    // The paper, Section 3: "If there are multiple virtual machines but
    // they are all running similar database workloads, then the available
    // resources should be divided equally."
    let model = CalibratedCostModel::new(advisor.grid());
    let equal: f64 = metrics::equal_split_costs(&problem, &model)
        .unwrap()
        .iter()
        .sum();
    assert!(
        (rec.total_cost - equal).abs() / equal < 1e-6,
        "identical workloads: recommended {} vs equal {}",
        rec.total_cost,
        equal
    );
}
