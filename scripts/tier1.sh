#!/usr/bin/env bash
# Tier-1 gate: the workspace must build in release mode and every test
# must pass. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Telemetry smoke gate: the instrumented consolidation scenario must
# produce a structurally valid snapshot (zero leaked spans, >= 95% root
# coverage) and both exporter artifacts (see scripts/trace.sh).
scripts/trace.sh

# Opt-in chaos gate: CHAOS=1 additionally replays the calibration pipeline
# under a sweep of fault-injection seeds/intensities (see scripts/chaos.sh).
if [[ "${CHAOS:-0}" == "1" ]]; then
  scripts/chaos.sh
fi
