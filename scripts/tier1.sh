#!/usr/bin/env bash
# Tier-1 gate: the workspace must build in release mode and every test
# must pass. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
