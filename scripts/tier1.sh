#!/usr/bin/env bash
# Tier-1 gate: the workspace must build in release mode and every test
# must pass. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Telemetry smoke gate: the instrumented consolidation scenario must
# produce a structurally valid snapshot (zero leaked spans, >= 95% root
# coverage) and both exporter artifacts (see scripts/trace.sh).
scripts/trace.sh

# Controller smoke gate: the online control loop must hold still on a
# stationary stream, keep drifting/bursty regret within ±1pp of its
# pins, keep the adversarial alternation under the switch governor's
# 15% ceiling, complete the five-scenario fault-injected zoo under its
# pinned regret ceilings, and replay its decision trace bit-identically
# across processes and parallelism (see scripts/controller.sh).
scripts/controller.sh

# Scheduler smoke gate: the incremental event-driven co-scheduler must be
# bit-identical to the reference rescan loop on the pinned 48-config sweep,
# clear its 3x capped-mode speedup floor at 16 VMs, and replay its
# completion fingerprints bit-identically across processes (see
# scripts/sched.sh).
scripts/sched.sh

# Fleet placement gate: the placement ladder (greedy -> local search ->
# LP bound) must hold its pins — strict local-search improvement on the
# 64-VM / 8-machine fleet, LP-certified gaps <= 25% everywhere, M=1
# bit-identical to the single-machine DP, and placements replayed
# bit-identically across processes and pre-warm parallelism (see
# scripts/fleet.sh).
scripts/fleet.sh

# Fleet simulation gate: the thousand-VM end-to-end benchmark must place
# and *execute* >= 1024 VMs across >= 32 machines, keep simulation
# reports bit-identical between serial and per-core parallel machine
# execution in both modes, and replay placement + simulation
# fingerprints bit-identically across processes (see scripts/fleetsim.sh).
scripts/fleetsim.sh

# Physical-design gate: the joint index-selection + allocation advisor
# must hold its pins — joint strictly beats both marginals on the pinned
# `duo` scenario, LP-certified gaps <= 25% on every answer, zero budget
# degenerates to allocation-only bit-for-bit, and recommendations replay
# bit-identically across processes and pre-warm parallelism (see
# scripts/design.sh).
scripts/design.sh

# Opt-in chaos gate: CHAOS=1 additionally replays the calibration pipeline
# under a sweep of fault-injection seeds/intensities (see scripts/chaos.sh).
if [[ "${CHAOS:-0}" == "1" ]]; then
  scripts/chaos.sh
fi
