#!/usr/bin/env bash
# Scheduler smoke gate: run the pinned 48-configuration co-scheduler sweep
# (`ext_sched`) twice and hold it to its contract — the binary's own
# assertions must pass (incremental completions bit-identical to the
# reference loop on every configuration, both implementations
# deterministic across repeats, >= 3x capped-mode speedup at 16 VMs), the
# per-configuration SCHED_FINGERPRINT lines must be identical across the
# two processes, and the BENCH_sched.json artifact must be written.
#
# Runs as part of `scripts/tier1.sh`, or directly. Artifacts land in
# SCHED_DIR (default: a throwaway temp directory; set SCHED_DIR=. to keep
# BENCH_sched.json in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."
repo_root="$PWD"

out_dir="${SCHED_DIR:-$(mktemp -d)}"
cleanup() {
  if [[ -z "${SCHED_DIR:-}" ]]; then rm -rf "$out_dir"; fi
}
trap cleanup EXIT

cargo build --release -p dbvirt-bench --bin ext_sched

(cd "$out_dir" && "$repo_root/target/release/ext_sched" | tee run_a.log)
(cd "$out_dir" && "$repo_root/target/release/ext_sched" > run_b.log)

# Cross-process determinism: the completion fingerprints of two
# independent runs must match line for line.
grep '^SCHED_FINGERPRINT' "$out_dir/run_a.log" > "$out_dir/fp_a.txt"
grep '^SCHED_FINGERPRINT' "$out_dir/run_b.log" > "$out_dir/fp_b.txt"
if [[ ! -s "$out_dir/fp_a.txt" ]]; then
  echo "FAIL: ext_sched printed no fingerprint lines" >&2
  exit 1
fi
if ! diff -u "$out_dir/fp_a.txt" "$out_dir/fp_b.txt"; then
  echo "FAIL: scheduler completions diverged between two identical runs" >&2
  exit 1
fi

if [[ ! -s "$out_dir/BENCH_sched.json" ]]; then
  echo "FAIL: ext_sched did not write BENCH_sched.json" >&2
  exit 1
fi
echo "sched gate OK: identity held on all configurations, fingerprints replayed bit-identically"
