#!/usr/bin/env bash
# Chaos gate: replay the calibration pipeline under a sweep of
# fault-injection seeds and intensities (jitter, heavy-tailed spikes,
# transient failures, timeouts). Fails on any panic, unexpected error, or
# out-of-tolerance fit. The injector is seeded and stateless, so every
# failure this finds is replayable by seed.
#
# Opt-in alongside the tier-1 gate: `CHAOS=1 scripts/tier1.sh`, or run this
# script directly. Knobs: CHAOS_SEEDS (seeds per intensity, default 6),
# CHAOS_BASE_SEED (first seed, default 1).
set -euo pipefail
cd "$(dirname "$0")/.."

# The seeded-fault sweep itself (panics exit non-zero and fail the gate).
cargo run --release -p dbvirt-bench --bin ext_chaos

# The calibration-layer suites double as chaos regressions: seeded noise,
# retry, ridge, and degradation tests live there.
cargo test -q -p dbvirt-calibrate
cargo test -q --test calibration_recovery

# The online control loop under the same injector: noisy observations may
# cost accuracy (dropped observations, extra switches) but must never
# panic or wedge the loop. CONTROLLER_CHAOS=1 adds a seeded sweep of
# three sensor-fault shapes — jittery probes, 30% dropouts, and 40%
# stale reads up to 4 epochs old — each across 8 seeds, on top of the
# always-on fault-injected scenario zoo.
CONTROLLER_CHAOS=1 cargo run --release -p dbvirt-bench --bin ext_controller
cargo test -q --test controller_loop
