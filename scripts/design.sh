#!/usr/bin/env bash
# Physical-design gate: run the joint index-selection + allocation
# experiment (`ext_design`) twice and hold it to its contract — the
# binary's own assertions must pass (joint strictly beats index-only and
# allocation-only on the pinned `duo` scenario, the Lagrangian bound
# certifies every answer within a 25% optimality gap, a zero storage
# budget degenerates to the allocation-only answer bit-for-bit,
# recommendations identical at pre-warm parallelism 1 and 0), the
# per-scenario DESIGN_FINGERPRINT lines must be identical across the two
# processes, and the BENCH_design.json artifact must be written.
#
# Runs as part of `scripts/tier1.sh`, or directly. Artifacts land in
# DESIGN_DIR (default: a throwaway temp directory; set DESIGN_DIR=. to
# keep BENCH_design.json in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."
repo_root="$PWD"

out_dir="${DESIGN_DIR:-$(mktemp -d)}"
cleanup() {
  if [[ -z "${DESIGN_DIR:-}" ]]; then rm -rf "$out_dir"; fi
}
trap cleanup EXIT

cargo build --release -p dbvirt-bench --bin ext_design

(cd "$out_dir" && "$repo_root/target/release/ext_design" | tee run_a.log)
(cd "$out_dir" && "$repo_root/target/release/ext_design" > run_b.log)

# Cross-process determinism: the recommendation fingerprints of two
# independent runs must match line for line.
grep '^DESIGN_FINGERPRINT' "$out_dir/run_a.log" > "$out_dir/fp_a.txt"
grep '^DESIGN_FINGERPRINT' "$out_dir/run_b.log" > "$out_dir/fp_b.txt"
if [[ ! -s "$out_dir/fp_a.txt" ]]; then
  echo "FAIL: ext_design printed no fingerprint lines" >&2
  exit 1
fi
if ! diff -u "$out_dir/fp_a.txt" "$out_dir/fp_b.txt"; then
  echo "FAIL: design recommendations diverged between two identical runs" >&2
  exit 1
fi

if [[ ! -s "$out_dir/BENCH_design.json" ]]; then
  echo "FAIL: ext_design did not write BENCH_design.json" >&2
  exit 1
fi
echo "design gate OK: every pin held, recommendations replayed bit-identically"
