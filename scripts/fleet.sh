#!/usr/bin/env bash
# Fleet placement gate: run the pinned placement ladder (`ext_fleet`)
# twice and hold it to its contract — the binary's own assertions must
# pass (local search strictly improves greedy on the pinned 64-VM /
# 8-machine fleet, LP optimality gap <= 25% on every configuration, the
# M=1 placement bit-identical to the single-machine DP recommendation,
# placements identical at pre-warm parallelism 1 and 0), the per-shape
# FLEET_FINGERPRINT lines must be identical across the two processes, and
# the BENCH_fleet.json artifact must be written.
#
# Runs as part of `scripts/tier1.sh`, or directly. Artifacts land in
# FLEET_DIR (default: a throwaway temp directory; set FLEET_DIR=. to keep
# BENCH_fleet.json in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."
repo_root="$PWD"

out_dir="${FLEET_DIR:-$(mktemp -d)}"
cleanup() {
  if [[ -z "${FLEET_DIR:-}" ]]; then rm -rf "$out_dir"; fi
}
trap cleanup EXIT

cargo build --release -p dbvirt-bench --bin ext_fleet

(cd "$out_dir" && "$repo_root/target/release/ext_fleet" | tee run_a.log)
(cd "$out_dir" && "$repo_root/target/release/ext_fleet" > run_b.log)

# Cross-process determinism: the placement fingerprints of two
# independent runs must match line for line.
grep '^FLEET_FINGERPRINT' "$out_dir/run_a.log" > "$out_dir/fp_a.txt"
grep '^FLEET_FINGERPRINT' "$out_dir/run_b.log" > "$out_dir/fp_b.txt"
if [[ ! -s "$out_dir/fp_a.txt" ]]; then
  echo "FAIL: ext_fleet printed no fingerprint lines" >&2
  exit 1
fi
if ! diff -u "$out_dir/fp_a.txt" "$out_dir/fp_b.txt"; then
  echo "FAIL: fleet placements diverged between two identical runs" >&2
  exit 1
fi

if [[ ! -s "$out_dir/BENCH_fleet.json" ]]; then
  echo "FAIL: ext_fleet did not write BENCH_fleet.json" >&2
  exit 1
fi
echo "fleet gate OK: every pin held, placements replayed bit-identically"
