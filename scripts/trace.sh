#!/usr/bin/env bash
# Telemetry smoke gate: run the instrumented consolidation scenario
# (`ext_trace`) with the global registry enabled and hold it to the
# subsystem's own contract — the snapshot must pass the structural
# validator (zero leaked spans, parented intervals nest), the root
# `advisor.recommend` span's direct children must account for >= 95% of
# its wall clock, and both exporter artifacts must be written.
#
# Runs as part of `scripts/tier1.sh`, or directly. Artifacts land in
# TRACE_DIR (default: a throwaway temp directory; set TRACE_DIR=. to keep
# TRACE_dump.json / TRACE_chrome.json in the repo root for inspection).
set -euo pipefail
cd "$(dirname "$0")/.."
repo_root="$PWD"

out_dir="${TRACE_DIR:-$(mktemp -d)}"
cleanup() {
  if [[ -z "${TRACE_DIR:-}" ]]; then rm -rf "$out_dir"; fi
}
trap cleanup EXIT

cargo build --release -p dbvirt-bench --bin ext_trace
(cd "$out_dir" && "$repo_root/target/release/ext_trace")

# The binary already validates the snapshot and exits non-zero on any
# structural failure; double-check the artifacts actually materialized.
for f in TRACE_dump.json TRACE_chrome.json; do
  if [[ ! -s "$out_dir/$f" ]]; then
    echo "FAIL: ext_trace did not write $f" >&2
    exit 1
  fi
done
echo "trace gate OK: snapshot valid, artifacts written to $out_dir"
