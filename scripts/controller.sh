#!/usr/bin/env bash
# Controller smoke gate: run the online control loop over the pinned
# scenario suite (`ext_controller`) twice and hold it to its contract —
# the binary's own assertions must pass (stationary stream never
# reconfigures, drifting regret stays within 15% of the clairvoyant
# oracle and beats never-reconfiguring, the decision trace is
# bit-identical at every search parallelism), the per-scenario
# CONTROLLER_FINGERPRINT lines must be identical across the two
# processes, and the BENCH_controller.json artifact must be written.
#
# Runs as part of `scripts/tier1.sh`, or directly. Artifacts land in
# CONTROLLER_DIR (default: a throwaway temp directory; set
# CONTROLLER_DIR=. to keep BENCH_controller.json in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."
repo_root="$PWD"

out_dir="${CONTROLLER_DIR:-$(mktemp -d)}"
cleanup() {
  if [[ -z "${CONTROLLER_DIR:-}" ]]; then rm -rf "$out_dir"; fi
}
trap cleanup EXIT

cargo build --release -p dbvirt-bench --bin ext_controller

(cd "$out_dir" && "$repo_root/target/release/ext_controller" | tee run_a.log)
(cd "$out_dir" && "$repo_root/target/release/ext_controller" > run_b.log)

# Cross-process determinism: the decision-trace fingerprints of two
# independent runs must match line for line.
grep '^CONTROLLER_FINGERPRINT' "$out_dir/run_a.log" > "$out_dir/fp_a.txt"
grep '^CONTROLLER_FINGERPRINT' "$out_dir/run_b.log" > "$out_dir/fp_b.txt"
if [[ ! -s "$out_dir/fp_a.txt" ]]; then
  echo "FAIL: ext_controller printed no fingerprint lines" >&2
  exit 1
fi
if ! diff -u "$out_dir/fp_a.txt" "$out_dir/fp_b.txt"; then
  echo "FAIL: decision traces diverged between two identical runs" >&2
  exit 1
fi

if [[ ! -s "$out_dir/BENCH_controller.json" ]]; then
  echo "FAIL: ext_controller did not write BENCH_controller.json" >&2
  exit 1
fi
echo "controller gate OK: assertions held, traces replayed bit-identically"
