#!/usr/bin/env bash
# Controller smoke gate: run the online control loop over the pinned
# scenario suite plus the fault-injected production zoo
# (`ext_controller`) twice and hold it to its contract — the binary's
# own assertions must pass (stationary stream never reconfigures,
# drifting/bursty regret stays within ±1pp of its pin, the adversarial
# alternation stays under the governor's 15% ceiling, every zoo
# scenario completes under seeded sensor faults below its pinned regret
# ceiling, and the decision trace is bit-identical at every search
# parallelism), all nine expected CONTROLLER_FINGERPRINT and
# CONTROLLER_REGRET lines must be present and identical across the two
# processes, and the BENCH_controller.json artifact must be written.
#
# Runs as part of `scripts/tier1.sh`, or directly. Artifacts land in
# CONTROLLER_DIR (default: a throwaway temp directory; set
# CONTROLLER_DIR=. to keep BENCH_controller.json in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."
repo_root="$PWD"

out_dir="${CONTROLLER_DIR:-$(mktemp -d)}"
cleanup() {
  if [[ -z "${CONTROLLER_DIR:-}" ]]; then rm -rf "$out_dir"; fi
}
trap cleanup EXIT

cargo build --release -p dbvirt-bench --bin ext_controller

(cd "$out_dir" && "$repo_root/target/release/ext_controller" | tee run_a.log)
(cd "$out_dir" && "$repo_root/target/release/ext_controller" > run_b.log)

# Cross-process determinism: the decision-trace fingerprints of two
# independent runs must match line for line.
grep '^CONTROLLER_FINGERPRINT' "$out_dir/run_a.log" > "$out_dir/fp_a.txt"
grep '^CONTROLLER_FINGERPRINT' "$out_dir/run_b.log" > "$out_dir/fp_b.txt"
if [[ ! -s "$out_dir/fp_a.txt" ]]; then
  echo "FAIL: ext_controller printed no fingerprint lines" >&2
  exit 1
fi
if ! diff -u "$out_dir/fp_a.txt" "$out_dir/fp_b.txt"; then
  echo "FAIL: decision traces diverged between two identical runs" >&2
  exit 1
fi

# Every scenario in the suite — the four pinned streams and the five
# fault-injected zoo streams — must have fingerprinted its trace.
for scenario in stationary drifting bursty adversarial \
                diurnal flash-crowd noisy-neighbor correlated-drift slow-ramp; do
  if ! grep -q "^CONTROLLER_FINGERPRINT $scenario=" "$out_dir/fp_a.txt"; then
    echo "FAIL: scenario '$scenario' missing from the fingerprinted suite" >&2
    exit 1
  fi
done

# Regret lines must replay identically too, and the adversarial
# alternation must stay under the governor's ceiling at the shell level
# as well (belt and braces over the in-binary assert).
grep '^CONTROLLER_REGRET' "$out_dir/run_a.log" > "$out_dir/regret_a.txt"
grep '^CONTROLLER_REGRET' "$out_dir/run_b.log" > "$out_dir/regret_b.txt"
if ! diff -u "$out_dir/regret_a.txt" "$out_dir/regret_b.txt"; then
  echo "FAIL: regret accounting diverged between two identical runs" >&2
  exit 1
fi
adversarial_regret="$(sed -n 's/^CONTROLLER_REGRET adversarial=//p' "$out_dir/regret_a.txt")"
if [[ -z "$adversarial_regret" ]]; then
  echo "FAIL: no adversarial regret line" >&2
  exit 1
fi
if ! awk -v r="$adversarial_regret" 'BEGIN { exit !(r <= 0.15) }'; then
  echo "FAIL: adversarial regret $adversarial_regret exceeds the 0.15 ceiling" >&2
  exit 1
fi

if [[ ! -s "$out_dir/BENCH_controller.json" ]]; then
  echo "FAIL: ext_controller did not write BENCH_controller.json" >&2
  exit 1
fi
echo "controller gate OK: assertions held, 9 scenarios fingerprinted, adversarial regret $adversarial_regret <= 0.15, traces replayed bit-identically"
