#!/usr/bin/env bash
# Fleet simulation gate: run the thousand-VM end-to-end benchmark
# (`ext_fleetsim`) twice and hold it to its contract — the binary's own
# assertions must pass (>= 1024 VMs across >= 32 machines placed and
# executed, simulation reports bit-identical between serial and per-core
# parallel machine execution in both modes, work conservation never
# slower than capped, simulated per-run total within an order of
# magnitude of the predicted objective), the FLEETSIM_FINGERPRINT lines
# (placement + both simulation modes) must be identical across the two
# processes, and the BENCH_fleetsim.json artifact must be written.
#
# Runs as part of `scripts/tier1.sh`, or directly. Artifacts land in
# FLEETSIM_DIR (default: a throwaway temp directory; set FLEETSIM_DIR=.
# to keep BENCH_fleetsim.json in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."
repo_root="$PWD"

out_dir="${FLEETSIM_DIR:-$(mktemp -d)}"
cleanup() {
  if [[ -z "${FLEETSIM_DIR:-}" ]]; then rm -rf "$out_dir"; fi
}
trap cleanup EXIT

cargo build --release -p dbvirt-bench --bin ext_fleetsim

(cd "$out_dir" && "$repo_root/target/release/ext_fleetsim" | tee run_a.log)
(cd "$out_dir" && "$repo_root/target/release/ext_fleetsim" > run_b.log)

# Cross-process determinism: placement and simulation fingerprints of two
# independent runs must match line for line.
grep '^FLEETSIM_FINGERPRINT' "$out_dir/run_a.log" > "$out_dir/fp_a.txt"
grep '^FLEETSIM_FINGERPRINT' "$out_dir/run_b.log" > "$out_dir/fp_b.txt"
if [[ "$(wc -l < "$out_dir/fp_a.txt")" -lt 3 ]]; then
  echo "FAIL: ext_fleetsim printed fewer than 3 fingerprint lines (placement + 2 modes)" >&2
  exit 1
fi
if ! diff -u "$out_dir/fp_a.txt" "$out_dir/fp_b.txt"; then
  echo "FAIL: fleet simulation diverged between two identical runs" >&2
  exit 1
fi

if [[ ! -s "$out_dir/BENCH_fleetsim.json" ]]; then
  echo "FAIL: ext_fleetsim did not write BENCH_fleetsim.json" >&2
  exit 1
fi
# The telemetry sink must have flushed the version-1 trace document.
if [[ ! -s "$out_dir/fleetsim_trace.json" ]]; then
  echo "FAIL: the telemetry sink wrote no fleetsim_trace.json" >&2
  exit 1
fi
echo "fleetsim gate OK: 1024 VMs placed and executed, replayed bit-identically"
